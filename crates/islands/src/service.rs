//! The island-evolution run manager: a service boundary over the
//! archipelago scheduler.
//!
//! A [`RunManager`] owns background runs. The lifecycle is:
//!
//! 1. [`RunManager::submit`] a config — the archipelago is built (or
//!    resumed from its checkpoint directory) and starts evolving on a
//!    background thread; you get a [`RunId`] back.
//! 2. Stream telemetry: [`RunManager::subscribe`] hands out an
//!    `mpsc::Receiver<TelemetryEvent>` fed live, primed with a replay
//!    of the run's *flight recorder* (a bounded ring of the most
//!    recent records), so a late subscriber still sees recent history;
//!    with [`SubmitOptions::ndjson`] the same stream is also appended
//!    to an NDJSON file, flushed per record, so `tail -f` works while
//!    the daemon runs.
//! 3. Poll [`RunManager::status`] / [`RunManager::best`] /
//!    [`RunManager::snapshot`] for live progress without blocking.
//!    Every event also updates the manager's shared
//!    [`SharedRegistry`] under a `run="run-NNNN"` label, and a
//!    per-run sampler thread mirrors live executor-pool gauges into
//!    it — a Prometheus endpoint can scrape one registry for all
//!    runs.
//! 4. [`RunManager::stop`] for a graceful shutdown (islands finish the
//!    generation in hand; checkpoints and migration sidecars make the
//!    next submit resume bit-identically), or [`RunManager::join`] to
//!    wait for completion. Both return the [`ArchipelagoOutcome`], and
//!    both are idempotent: repeated calls replay the cached outcome
//!    (a failure replays as [`RunError::Service`] with the original
//!    message).
//!
//! The manager is deliberately transport-free: it *is* the daemon's
//! core, and a network front-end (HTTP, gRPC, a Unix socket) is a thin
//! codec over these calls — `e3-serve` is exactly that.

use crate::config::IslandsConfig;
use crate::scheduler::{
    Archipelago, ArchipelagoOutcome, IslandProgress, Pickup, Progress, RunOptions, SharedCollector,
};
use e3_exec::{PoolSnapshot, SharedExecutor};
use e3_neat::population::EvaluatedGenome;
use e3_platform::RunError;
use e3_telemetry::{
    labeled, Collector, NdjsonWriter, SharedRegistry, TelemetryError, TelemetryEvent,
};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::fs::File;
use std::io::BufWriter;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Default capacity of the per-run flight recorder (events replayed
/// to late subscribers).
pub const DEFAULT_FLIGHT_RECORDER: usize = 256;

/// Default interval between live pool-gauge samples.
pub const DEFAULT_SAMPLE_INTERVAL: Duration = Duration::from_millis(200);

/// Handle to a submitted run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RunId(u64);

impl std::fmt::Display for RunId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "run-{:04}", self.0)
    }
}

impl std::str::FromStr for RunId {
    type Err = std::num::ParseIntError;

    /// Parses both the canonical `run-0003` form and a bare index
    /// (`3`) — the inverse of [`RunId`]'s `Display`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        s.strip_prefix("run-").unwrap_or(s).parse().map(RunId)
    }
}

/// Where a run currently stands.
#[derive(Debug, Clone, PartialEq)]
pub enum RunStatus {
    /// Islands are evolving.
    Running,
    /// Every island retired; the outcome is available via
    /// [`RunManager::join`].
    Finished,
    /// A graceful stop ended the run before every island retired.
    Stopped,
    /// An island failed; the message is the [`RunError`] display.
    Failed(String),
}

impl RunStatus {
    /// A stable lower-case name for wire formats: `running`,
    /// `finished`, `stopped`, or `failed`.
    pub fn name(&self) -> &'static str {
        match self {
            RunStatus::Running => "running",
            RunStatus::Finished => "finished",
            RunStatus::Stopped => "stopped",
            RunStatus::Failed(_) => "failed",
        }
    }

    /// The failure message, for [`RunStatus::Failed`].
    pub fn error(&self) -> Option<&str> {
        match self {
            RunStatus::Failed(message) => Some(message),
            _ => None,
        }
    }
}

/// Per-submit execution knobs.
#[derive(Debug, Clone, Default)]
pub struct SubmitOptions {
    /// Driver threads (see [`RunOptions::drivers`]).
    pub drivers: usize,
    /// Queue discipline (wall-clock only, never results).
    pub pickup: Pickup,
    /// Append every telemetry record to this NDJSON file, flushed per
    /// record for live tailing.
    pub ndjson: Option<String>,
    /// Flight-recorder capacity (events kept for replay to late
    /// subscribers); [`DEFAULT_FLIGHT_RECORDER`] when `None`, 0
    /// disables replay.
    pub flight_recorder: Option<usize>,
    /// Interval between live pool-gauge samples;
    /// [`DEFAULT_SAMPLE_INTERVAL`] when `None`.
    pub sample_interval: Option<Duration>,
}

/// Cumulative tiered-execution (JIT) counters for one run, read back
/// from the run-labeled `e3_jit_*` series in the shared metrics
/// registry. Present on a [`RunSnapshot`] only when the tier actually
/// engaged (at least one counter nonzero).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct JitSnapshot {
    /// Plans promoted to native code so far.
    pub compiled: u64,
    /// Machine-code bytes emitted so far.
    pub bytes: u64,
    /// Compilations that failed and fell back to the interpreter.
    pub fallbacks: u64,
    /// Activations served by the native tier so far.
    pub activations: u64,
    /// Natively compiled plans resident at the last evaluation.
    pub resident: u64,
    /// Total wall-clock seconds spent compiling so far.
    pub compile_seconds: f64,
}

/// A point-in-time JSON-friendly view of one run — what a status
/// endpoint serves for `/runs/{id}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSnapshot {
    /// The run id in its canonical `run-NNNN` form.
    pub id: String,
    /// [`RunStatus::name`]: `running`, `finished`, `stopped`, or
    /// `failed`.
    pub status: String,
    /// The failure message when `status == "failed"`.
    pub error: Option<String>,
    /// Total generations completed across all islands.
    pub generations: usize,
    /// Migration merges performed so far.
    pub migrations: usize,
    /// Home island of the best individual so far.
    pub best_island: Option<usize>,
    /// Fitness of the best individual so far (`None` before the first
    /// evaluation, or when it is not a finite number).
    pub best_fitness: Option<f64>,
    /// Per-island live positions, island-indexed.
    pub islands: Vec<IslandProgress>,
    /// Live gauges of the executor pool the run evaluates on.
    pub pool: PoolSnapshot,
    /// Cumulative JIT-tier counters; `None` when the tier never
    /// engaged (disabled, unsupported target, or nothing hot yet).
    pub jit: Option<JitSnapshot>,
}

/// The per-run event hub: a bounded "flight recorder" ring of recent
/// events plus the live subscriber channels, under one lock so a
/// subscriber's replay-then-register is atomic with respect to
/// recording (no event can fall between its replay and its first live
/// delivery).
struct StreamHub {
    capacity: usize,
    state: Mutex<HubState>,
}

struct HubState {
    ring: VecDeque<TelemetryEvent>,
    subscribers: Vec<mpsc::Sender<TelemetryEvent>>,
    closed: bool,
}

impl StreamHub {
    fn new(capacity: usize) -> Self {
        StreamHub {
            capacity,
            state: Mutex::new(HubState {
                ring: VecDeque::with_capacity(capacity.min(DEFAULT_FLIGHT_RECORDER)),
                subscribers: Vec::new(),
                closed: false,
            }),
        }
    }

    /// Appends to the ring (evicting the oldest record at capacity)
    /// and fans out to every live subscriber. `send` never blocks —
    /// the channels are unbounded — so a stalled consumer can never
    /// back-pressure the scheduler.
    fn record(&self, event: &TelemetryEvent) {
        let mut state = self.state.lock().expect("hub lock");
        if self.capacity > 0 {
            if state.ring.len() == self.capacity {
                state.ring.pop_front();
            }
            state.ring.push_back(event.clone());
        }
        state
            .subscribers
            .retain(|tx| tx.send(event.clone()).is_ok());
    }

    /// A fresh receiver, primed with the flight-recorder replay. On a
    /// closed hub the sender is dropped immediately, so the receiver
    /// yields the replay and then disconnects.
    fn subscribe(&self) -> mpsc::Receiver<TelemetryEvent> {
        let (tx, rx) = mpsc::channel();
        let mut state = self.state.lock().expect("hub lock");
        for event in &state.ring {
            let _ = tx.send(event.clone());
        }
        if !state.closed {
            state.subscribers.push(tx);
        }
        rx
    }

    /// Ends the stream: live subscribers see their channel close, and
    /// future subscribers get replay-then-disconnect.
    fn close(&self) {
        let mut state = self.state.lock().expect("hub lock");
        state.closed = true;
        state.subscribers.clear();
    }
}

/// A collector that fans each event out to an optional NDJSON file,
/// the run-labeled shared metrics registry, and the stream hub.
/// Subscriber and registry updates never block or fail; a file write
/// error fails the run.
struct FanOut {
    ndjson: Option<NdjsonWriter<BufWriter<File>>>,
    registry: SharedRegistry,
    label: String,
    hub: Arc<StreamHub>,
}

impl Collector for FanOut {
    fn record(&mut self, event: &TelemetryEvent) -> Result<(), TelemetryError> {
        if let Some(file) = &mut self.ndjson {
            file.record(event)?;
        }
        self.registry.observe_scoped(&[("run", &self.label)], event);
        self.hub.record(event);
        Ok(())
    }

    fn flush(&mut self) -> Result<(), TelemetryError> {
        if let Some(file) = &mut self.ndjson {
            file.flush()?;
        }
        Ok(())
    }
}

/// One background run.
struct RunHandle {
    stop: Arc<AtomicBool>,
    progress: Arc<Progress>,
    hub: Arc<StreamHub>,
    status: Arc<Mutex<RunStatus>>,
    pool: SharedExecutor,
    worker: Option<JoinHandle<Result<ArchipelagoOutcome, RunError>>>,
    sampler: Option<JoinHandle<()>>,
    /// The joined worker's result, kept so `stop`/`join` are
    /// idempotent (errors cached by display string — `RunError` holds
    /// non-clonable sources).
    outcome: Option<Result<ArchipelagoOutcome, String>>,
}

/// Owns and supervises island-evolution runs. See the module docs for
/// the lifecycle.
#[derive(Default)]
pub struct RunManager {
    runs: HashMap<RunId, RunHandle>,
    next_id: u64,
    registry: SharedRegistry,
}

impl std::fmt::Debug for RunManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunManager")
            .field("runs", &self.runs.len())
            .finish_non_exhaustive()
    }
}

impl RunManager {
    /// A manager with no runs and a fresh metrics registry.
    pub fn new() -> Self {
        RunManager::default()
    }

    /// A manager recording into an existing shared registry — how a
    /// daemon points its scrape endpoint and its run manager at the
    /// same metrics.
    pub fn with_registry(registry: SharedRegistry) -> Self {
        let mut manager = RunManager::default();
        manager.registry = registry;
        manager
    }

    /// The live metrics registry every run records into (run-labeled).
    pub fn registry(&self) -> &SharedRegistry {
        &self.registry
    }

    /// Builds the archipelago (resuming any checkpoints under the
    /// configured directory) and starts it on a background thread.
    ///
    /// # Errors
    ///
    /// [`RunError`] if the archipelago cannot be built — a corrupt
    /// store, a namespace bound to a different island, or an NDJSON
    /// path that cannot be opened. Failures *after* submit surface
    /// through [`RunManager::status`] and [`RunManager::join`].
    pub fn submit(
        &mut self,
        config: IslandsConfig,
        opts: SubmitOptions,
    ) -> Result<RunId, RunError> {
        let archipelago = Archipelago::new(config)?;
        let ndjson = match &opts.ndjson {
            Some(path) => Some(NdjsonWriter::create(path).map_err(RunError::Telemetry)?),
            None => None,
        };
        let id = RunId(self.next_id);
        self.next_id += 1;
        let label = id.to_string();
        let stop = Arc::new(AtomicBool::new(false));
        let progress = archipelago.progress();
        let pool = archipelago.pool();
        let hub = Arc::new(StreamHub::new(
            opts.flight_recorder.unwrap_or(DEFAULT_FLIGHT_RECORDER),
        ));
        let status = Arc::new(Mutex::new(RunStatus::Running));
        let run_opts = RunOptions {
            drivers: opts.drivers,
            pickup: opts.pickup,
            stop: Some(Arc::clone(&stop)),
        };
        let collector = SharedCollector::new(FanOut {
            ndjson,
            registry: self.registry.clone(),
            label: label.clone(),
            hub: Arc::clone(&hub),
        });
        let worker_status = Arc::clone(&status);
        let worker_hub = Arc::clone(&hub);
        let worker = std::thread::spawn(move || {
            let result = archipelago.run(&run_opts, &collector);
            {
                let mut status = worker_status.lock().expect("status lock");
                *status = match &result {
                    Ok(outcome) if outcome.completed => RunStatus::Finished,
                    Ok(_) => RunStatus::Stopped,
                    Err(err) => RunStatus::Failed(err.to_string()),
                };
            }
            // Close the stream as soon as the run ends — subscribers
            // see end-of-stream without waiting for a join.
            worker_hub.close();
            result
        });
        let sampler = Self::spawn_sampler(
            self.registry.clone(),
            label,
            pool.clone(),
            Arc::clone(&progress),
            Arc::clone(&status),
            opts.sample_interval.unwrap_or(DEFAULT_SAMPLE_INTERVAL),
        );
        self.runs.insert(
            id,
            RunHandle {
                stop,
                progress,
                hub,
                status,
                pool,
                worker: Some(worker),
                sampler: Some(sampler),
                outcome: None,
            },
        );
        Ok(id)
    }

    /// The run's current status, or `None` for an unknown id.
    pub fn status(&self, id: RunId) -> Option<RunStatus> {
        self.runs
            .get(&id)
            .map(|run| run.status.lock().expect("status lock").clone())
    }

    /// Subscribes to the run's live telemetry stream. The receiver is
    /// primed with the flight-recorder replay (the most recent
    /// records), then fed live; the channel closes when the run ends.
    /// Subscribing to a completed run yields the replay and then
    /// end-of-stream.
    pub fn subscribe(&self, id: RunId) -> Option<mpsc::Receiver<TelemetryEvent>> {
        Some(self.runs.get(&id)?.hub.subscribe())
    }

    /// The best individual seen so far and its home island — safe to
    /// poll while the run is in flight.
    pub fn best(&self, id: RunId) -> Option<(usize, EvaluatedGenome)> {
        self.runs.get(&id)?.progress.best()
    }

    /// Total generations completed across all islands so far.
    pub fn generations(&self, id: RunId) -> Option<usize> {
        self.runs.get(&id).map(|run| run.progress.generations())
    }

    /// A point-in-time JSON-friendly view of the run: status,
    /// per-island positions, migration count, and live pool gauges.
    pub fn snapshot(&self, id: RunId) -> Option<RunSnapshot> {
        let run = self.runs.get(&id)?;
        let status = run.status.lock().expect("status lock").clone();
        let best = run.progress.best();
        let best_fitness = best
            .as_ref()
            .map(|(_, genome)| genome.fitness)
            .filter(|fitness| fitness.is_finite());
        let jit = self.jit_snapshot(&id.to_string());
        Some(RunSnapshot {
            id: id.to_string(),
            status: status.name().to_string(),
            error: status.error().map(str::to_string),
            generations: run.progress.generations(),
            migrations: run.progress.migrations(),
            best_island: best.as_ref().map(|(island, _)| *island),
            best_fitness,
            islands: run.progress.islands(),
            pool: run.pool.snapshot(),
            jit,
        })
    }

    /// Reads the run-labeled `e3_jit_*` series back out of the shared
    /// registry; `None` when the tier never engaged for this run.
    fn jit_snapshot(&self, label: &str) -> Option<JitSnapshot> {
        let scope = [("run", label)];
        self.registry.with(|registry| {
            let snapshot = JitSnapshot {
                compiled: registry.counter(&labeled("e3_jit_plans_compiled_total", &scope)),
                bytes: registry.counter(&labeled("e3_jit_bytes_emitted_total", &scope)),
                fallbacks: registry.counter(&labeled("e3_jit_fallbacks_total", &scope)),
                activations: registry.counter(&labeled("e3_jit_hot_activations_total", &scope)),
                resident: registry
                    .gauge(&labeled("e3_jit_resident_plans", &scope))
                    .unwrap_or(0.0) as u64,
                compile_seconds: registry
                    .histogram(&labeled("e3_jit_compile_seconds", &scope))
                    .map_or(0.0, |h| h.sum()),
            };
            (snapshot != JitSnapshot::default()).then_some(snapshot)
        })
    }

    /// Snapshots of every run, submission-ordered — what `/runs`
    /// serves.
    pub fn snapshots(&self) -> Vec<RunSnapshot> {
        self.runs()
            .into_iter()
            .filter_map(|id| self.snapshot(id))
            .collect()
    }

    /// Requests a graceful stop and waits for the drivers to drain:
    /// islands finish the generation in hand, checkpoints and
    /// migration sidecars stay consistent, and resubmitting the same
    /// config resumes bit-identically. Idempotent: repeated calls
    /// replay the cached outcome.
    ///
    /// # Errors
    ///
    /// The run's [`RunError`] if it failed ([`RunError::Service`] on
    /// replays).
    pub fn stop(&mut self, id: RunId) -> Option<Result<ArchipelagoOutcome, RunError>> {
        let run = self.runs.get_mut(&id)?;
        run.stop.store(true, Ordering::Relaxed);
        Some(Self::finish(run))
    }

    /// Waits for the run to finish on its own. Idempotent: repeated
    /// calls replay the cached outcome.
    ///
    /// # Errors
    ///
    /// The run's [`RunError`] if any island failed
    /// ([`RunError::Service`] on replays).
    pub fn join(&mut self, id: RunId) -> Option<Result<ArchipelagoOutcome, RunError>> {
        Some(Self::finish(self.runs.get_mut(&id)?))
    }

    /// Ids of all runs the manager knows, submission-ordered.
    pub fn runs(&self) -> Vec<RunId> {
        let mut ids: Vec<RunId> = self.runs.keys().copied().collect();
        ids.sort_by_key(|id| id.0);
        ids
    }

    fn finish(run: &mut RunHandle) -> Result<ArchipelagoOutcome, RunError> {
        if let Some(worker) = run.worker.take() {
            let result = worker.join().expect("archipelago thread panicked");
            run.hub.close();
            if let Some(sampler) = run.sampler.take() {
                let _ = sampler.join();
            }
            // Cache for idempotent repeats, return the typed original.
            return match result {
                Ok(outcome) => {
                    run.outcome = Some(Ok(outcome.clone()));
                    Ok(outcome)
                }
                Err(err) => {
                    run.outcome = Some(Err(err.to_string()));
                    Err(err)
                }
            };
        }
        match run
            .outcome
            .as_ref()
            .expect("a joined run caches its outcome")
        {
            Ok(outcome) => Ok(outcome.clone()),
            Err(message) => Err(RunError::Service(message.clone())),
        }
    }

    /// A per-run ticker mirroring live pool and progress gauges into
    /// the shared registry. Pure observation: it reads atomics and
    /// never touches the scheduler, so sampling cannot perturb
    /// results. Exits one sample after the run leaves `Running`
    /// (final gauge values stay scrapeable).
    fn spawn_sampler(
        registry: SharedRegistry,
        label: String,
        pool: SharedExecutor,
        progress: Arc<Progress>,
        status: Arc<Mutex<RunStatus>>,
        interval: Duration,
    ) -> JoinHandle<()> {
        std::thread::spawn(move || loop {
            let running = matches!(*status.lock().expect("status lock"), RunStatus::Running);
            let scope = [("run", label.as_str())];
            let pool_snapshot = pool.snapshot();
            registry.with(|metrics| {
                metrics.gauge_set(
                    &labeled("e3_run_up", &scope),
                    if running { 1.0 } else { 0.0 },
                );
                metrics.gauge_set(
                    &labeled("e3_run_generations", &scope),
                    progress.generations() as f64,
                );
                metrics.gauge_set(
                    &labeled("e3_run_migrations", &scope),
                    progress.migrations() as f64,
                );
                metrics.gauge_set(
                    &labeled("e3_pool_workers", &scope),
                    pool_snapshot.workers as f64,
                );
                metrics.gauge_set(
                    &labeled("e3_pool_evals_in_flight", &scope),
                    pool_snapshot.evals_in_flight as f64,
                );
                metrics.gauge_set(
                    &labeled("e3_pool_evals_total", &scope),
                    pool_snapshot.evals_total as f64,
                );
                for (worker, depth) in pool_snapshot.last_queue_depths.iter().enumerate() {
                    let worker = worker.to_string();
                    metrics.gauge_set(
                        &labeled(
                            "e3_exec_queue_depth",
                            &[("run", label.as_str()), ("worker", worker.as_str())],
                        ),
                        *depth as f64,
                    );
                }
            });
            if !running {
                return;
            }
            // Sleep in short slices so the sampler notices the run
            // ending within ~25 ms instead of a full interval.
            let mut remaining = interval;
            while !remaining.is_zero() {
                let slice = remaining.min(Duration::from_millis(25));
                std::thread::sleep(slice);
                remaining = remaining.saturating_sub(slice);
                if !matches!(*status.lock().expect("status lock"), RunStatus::Running) {
                    break;
                }
            }
        })
    }
}

impl Drop for RunManager {
    /// Stops every still-running archipelago gracefully.
    fn drop(&mut self) {
        for run in self.runs.values_mut() {
            run.stop.store(true, Ordering::Relaxed);
            if let Some(worker) = run.worker.take() {
                let _ = worker.join();
            }
            run.hub.close();
            if let Some(sampler) = run.sampler.take() {
                let _ = sampler.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use e3_envs::EnvId;
    use e3_platform::E3Config;

    fn config(max_generations: usize) -> IslandsConfig {
        let base = E3Config::builder(EnvId::CartPole)
            .population_size(16)
            .max_generations(max_generations)
            .target_fitness(f64::INFINITY)
            .build();
        IslandsConfig::builder(base)
            .islands(2)
            .migration_interval(2)
            .build()
    }

    fn fast_opts() -> SubmitOptions {
        SubmitOptions {
            sample_interval: Some(Duration::from_millis(10)),
            ..SubmitOptions::default()
        }
    }

    #[test]
    fn submit_stream_join_lifecycle() {
        let mut manager = RunManager::new();
        let id = manager.submit(config(4), fast_opts()).unwrap();
        let stream = manager.subscribe(id).expect("known run");
        let outcome = manager.join(id).expect("known run").expect("clean run");
        assert!(outcome.completed);
        assert_eq!(manager.status(id), Some(RunStatus::Finished));
        let events: Vec<TelemetryEvent> = stream.try_iter().collect();
        assert!(
            events
                .iter()
                .any(|e| matches!(e, TelemetryEvent::Island(_))),
            "stream must carry island records"
        );
        assert!(manager.best(id).is_some());
        // The channel is closed after join.
        assert!(stream.recv().is_err());
    }

    #[test]
    fn stop_is_graceful_and_reports_partial_progress() {
        let mut manager = RunManager::new();
        let id = manager.submit(config(500), fast_opts()).unwrap();
        let stream = manager.subscribe(id).expect("known run");
        // Wait for evidence of live progress before stopping.
        let first = stream
            .recv_timeout(std::time::Duration::from_secs(60))
            .expect("some record arrives");
        drop(first);
        let outcome = manager.stop(id).expect("known run").expect("clean stop");
        assert!(!outcome.completed);
        assert_eq!(manager.status(id), Some(RunStatus::Stopped));
    }

    #[test]
    fn unknown_runs_are_none() {
        let mut manager = RunManager::new();
        let ghost = RunId(99);
        assert!(manager.status(ghost).is_none());
        assert!(manager.subscribe(ghost).is_none());
        assert!(manager.best(ghost).is_none());
        assert!(manager.join(ghost).is_none());
        assert!(manager.snapshot(ghost).is_none());
    }

    #[test]
    fn run_ids_round_trip_through_display_and_from_str() {
        let id = RunId(7);
        assert_eq!(id.to_string(), "run-0007");
        assert_eq!("run-0007".parse::<RunId>().unwrap(), id);
        assert_eq!("7".parse::<RunId>().unwrap(), id);
        assert!("run-x".parse::<RunId>().is_err());
        assert!("".parse::<RunId>().is_err());
    }

    #[test]
    fn subscribe_after_completion_replays_the_flight_recorder() {
        let mut manager = RunManager::new();
        let id = manager.submit(config(4), fast_opts()).unwrap();
        manager.join(id).expect("known run").expect("clean run");
        // Subscribing now must yield the recent history, then
        // end-of-stream — never a receiver that blocks forever.
        let late = manager.subscribe(id).expect("known run");
        let events: Vec<TelemetryEvent> = late.iter().collect();
        assert!(
            events
                .iter()
                .any(|e| matches!(e, TelemetryEvent::Island(_))),
            "replay must carry island records"
        );
        assert!(late.recv().is_err(), "stream ends after the replay");
    }

    #[test]
    fn flight_recorder_is_bounded_and_keeps_the_newest_records() {
        let mut manager = RunManager::new();
        let id = manager
            .submit(
                config(4),
                SubmitOptions {
                    flight_recorder: Some(3),
                    ..fast_opts()
                },
            )
            .unwrap();
        manager.join(id).expect("known run").expect("clean run");
        let events: Vec<TelemetryEvent> =
            manager.subscribe(id).expect("known run").iter().collect();
        assert_eq!(events.len(), 3, "replay is capped at the ring capacity");
        // A 2-island x 4-generation run ends with island records; the
        // newest records survive eviction.
        assert!(events
            .iter()
            .any(|e| matches!(e, TelemetryEvent::Island(_))));
    }

    #[test]
    fn stop_and_join_are_idempotent() {
        let mut manager = RunManager::new();
        let id = manager.submit(config(4), fast_opts()).unwrap();
        let first = manager.join(id).expect("known run").expect("clean run");
        // Repeats — in any order — replay the same outcome.
        let again = manager.stop(id).expect("known run").expect("cached");
        let and_again = manager.join(id).expect("known run").expect("cached");
        let fingerprints = |o: &ArchipelagoOutcome| {
            o.islands
                .iter()
                .map(|i| i.population_fingerprint)
                .collect::<Vec<u64>>()
        };
        assert_eq!(fingerprints(&again), fingerprints(&first));
        assert_eq!(fingerprints(&and_again), fingerprints(&first));
        assert_eq!(again.migrations, first.migrations);
        assert_eq!(manager.status(id), Some(RunStatus::Finished));
    }

    #[test]
    fn snapshot_reports_islands_pool_and_status() {
        let mut manager = RunManager::new();
        let id = manager.submit(config(4), fast_opts()).unwrap();
        manager.join(id).expect("known run").expect("clean run");
        let snapshot = manager.snapshot(id).expect("known run");
        assert_eq!(snapshot.id, "run-0000");
        assert_eq!(snapshot.status, "finished");
        assert_eq!(snapshot.error, None);
        assert_eq!(snapshot.islands.len(), 2);
        assert!(snapshot.islands.iter().all(|row| row.generation == 4));
        assert!(snapshot.islands.iter().all(|row| row.retired));
        assert!(snapshot.generations >= 8);
        assert!(snapshot.migrations > 0);
        assert!(snapshot.best_fitness.is_some());
        assert!(snapshot.pool.evals_total > 0);
        assert_eq!(snapshot.pool.workers, snapshot.pool.last_queue_depths.len());
        // And the whole thing serializes (no non-finite floats).
        let json = serde_json::to_string(&snapshot).expect("snapshot serializes");
        let back: RunSnapshot = serde_json::from_str(&json).expect("round-trips");
        assert_eq!(back, snapshot);
        assert_eq!(manager.snapshots().len(), 1);
    }

    #[test]
    fn runs_record_into_the_shared_registry_with_run_labels() {
        let registry = SharedRegistry::new();
        let mut manager = RunManager::with_registry(registry.clone());
        let id = manager.submit(config(4), fast_opts()).unwrap();
        manager.join(id).expect("known run").expect("clean run");
        let text = registry.prometheus_text();
        assert!(
            text.contains("e3_island_generations_total{run=\"run-0000\",island=\"0\"}"),
            "island counters must be run-labeled:\n{text}"
        );
        assert!(text.contains("e3_island_best_fitness{run=\"run-0000\",island=\"1\"}"));
        assert!(text.contains("e3_migrations_total{run=\"run-0000\",island=\"0\"}"));
        // The sampler mirrored pool gauges (final sample has up=0).
        assert!(text.contains("e3_run_up{run=\"run-0000\"} 0"));
        assert!(text.contains("e3_pool_workers{run=\"run-0000\"}"));
        assert!(text.contains("e3_pool_evals_total{run=\"run-0000\"}"));
    }
}
