//! The asynchronous archipelago scheduler.
//!
//! N islands — independent [`E3Platform`] instances — progress
//! concurrently over one shared worker pool. The scheduler is a
//! cooperative run queue: a small set of *driver* threads repeatedly
//! pick a runnable island and advance it by exactly one generation
//! (eval phase, boundary exchange if due, evolve phase), then requeue
//! it. While one island's evaluation occupies the shared pool, other
//! drivers run their islands' evolve phases — the evolve/evaluate
//! overlap of CLAN-style asynchronous neuroevolution — and an island
//! whose migration sources have not reached a boundary yet is *parked*
//! (taken off the queue) rather than spinning, so it never blocks a
//! driver.
//!
//! # Determinism contract
//!
//! The final population of every island is **bit-identical** for a
//! fixed [`IslandsConfig`], regardless of:
//!
//! * the worker-pool width (`base.threads`),
//! * the number of driver threads ([`RunOptions::drivers`]),
//! * the queue discipline ([`RunOptions::pickup`]),
//! * and kill/resume cycles at any point (with checkpointing
//!   configured).
//!
//! The mechanism: all cross-island communication is indexed by
//! generation, never by arrival time. An island at boundary `g`
//! publishes its emigrants *before* consuming its sources' boundary-`g`
//! packets, merges them in ascending source order through the
//! deterministic [`Population::integrate_immigrants`], and each
//! island's own evolution is already bit-identical at any thread count
//! (the `e3-exec` contract). Scheduling order can only change *when*
//! an exchange happens on the wall clock, not *what* is exchanged.

use crate::config::{island_seed, namespace, IslandsConfig};
use crate::migration::{
    packet_sidecar_name, Exchange, MigrationPacket, Retirement, RETIREMENT_SIDECAR,
};
use e3_neat::population::EvaluatedGenome;
use e3_neat::Population;
use e3_platform::{fingerprint, E3Platform, RunError};
use e3_store::MultiStore;
use e3_telemetry::{Collector, IslandRecord, MigrationRecord, TelemetryError, TelemetryEvent};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Queue discipline for picking the next runnable island.
///
/// Purely a wall-clock knob: results are bit-identical under either
/// (the property tests run both to prove it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Pickup {
    /// Oldest-ready island first (round-robin-ish, fair).
    #[default]
    Fifo,
    /// Newest-ready island first (depth-first, maximally unfair — the
    /// adversarial interleaving for determinism tests).
    Lifo,
}

/// Wall-clock execution knobs. **Nothing here may affect results** —
/// that is the scheduler's core guarantee, and what the determinism
/// property tests sweep.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Driver threads advancing islands (clamped to ≥ 1; more than
    /// `islands` is allowed but pointless).
    pub drivers: usize,
    /// Queue discipline.
    pub pickup: Pickup,
    /// Cooperative stop flag: when set, drivers finish the generation
    /// in hand and exit; unfinished islands stay at their last
    /// checkpoint. `None` runs to completion.
    pub stop: Option<Arc<AtomicBool>>,
}

impl RunOptions {
    /// Options with `drivers` driver threads and FIFO pickup.
    pub fn with_drivers(drivers: usize) -> Self {
        RunOptions {
            drivers,
            ..Self::default()
        }
    }
}

/// Final accounting for one island.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IslandOutcome {
    /// Island index.
    pub island: usize,
    /// Whether the island reached the target fitness.
    pub solved: bool,
    /// Generations the island completed.
    pub generations_run: usize,
    /// Best fitness the island ever saw.
    pub best_fitness: f64,
    /// The island's modeled runtime in seconds.
    pub modeled_seconds: f64,
    /// Order-sensitive FNV fold of the final population's genome
    /// fingerprints — the value the bit-identity tests compare.
    pub population_fingerprint: u64,
    /// The island's best individual.
    pub best: Option<EvaluatedGenome>,
}

/// Final accounting for the whole archipelago.
#[derive(Debug, Clone)]
pub struct ArchipelagoOutcome {
    /// Per-island outcomes, island-indexed.
    pub islands: Vec<IslandOutcome>,
    /// The overall champion (highest fitness; ties to the lowest
    /// island index) and its home island.
    pub best: Option<(usize, EvaluatedGenome)>,
    /// Migration merges performed.
    pub migrations: usize,
    /// `false` when a graceful stop ended the run before every island
    /// retired.
    pub completed: bool,
}

/// Order-sensitive FNV-1a fold of every genome fingerprint in the
/// population — one `u64` that changes if any genome, or their order,
/// changes.
pub fn population_fingerprint(population: &Population) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for genome in population.genomes() {
        hash ^= genome.fingerprint();
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// One island's live position, as last reported by the scheduler —
/// the per-island row of a status endpoint.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct IslandProgress {
    /// Island index.
    pub island: usize,
    /// Generations the island has completed.
    pub generation: usize,
    /// Best fitness the island ever saw; `None` until the first
    /// generation reports (kept as an `Option` so JSON encoders never
    /// meet a non-finite float).
    pub best_fitness: Option<f64>,
    /// Species alive in the island's population.
    pub species: usize,
    /// Whether the island has retired (solved or hit its budget).
    pub retired: bool,
}

/// Live progress shared between the scheduler and a service front-end:
/// safe to poll from any thread while the run is in flight.
#[derive(Debug, Default)]
pub struct Progress {
    best: Mutex<Option<(usize, EvaluatedGenome)>>,
    generations: AtomicUsize,
    migrations: AtomicUsize,
    islands: Mutex<Vec<IslandProgress>>,
}

impl Progress {
    /// Progress for an archipelago of `islands` islands, all rows at
    /// generation zero.
    pub fn new(islands: usize) -> Self {
        Progress {
            islands: Mutex::new(
                (0..islands)
                    .map(|island| IslandProgress {
                        island,
                        ..IslandProgress::default()
                    })
                    .collect(),
            ),
            ..Progress::default()
        }
    }

    /// The best individual seen so far and its home island.
    pub fn best(&self) -> Option<(usize, EvaluatedGenome)> {
        self.best.lock().expect("progress lock").clone()
    }

    /// Total generations completed across all islands.
    pub fn generations(&self) -> usize {
        self.generations.load(Ordering::Relaxed)
    }

    /// Migration merges performed so far.
    pub fn migrations(&self) -> usize {
        self.migrations.load(Ordering::Relaxed)
    }

    /// A copy of every island's last reported position,
    /// island-indexed.
    pub fn islands(&self) -> Vec<IslandProgress> {
        self.islands.lock().expect("progress lock").clone()
    }

    /// Overwrites one island's row (no-op for an out-of-range index,
    /// which only an inconsistent caller could produce).
    fn update_island(&self, row: IslandProgress) {
        let mut islands = self.islands.lock().expect("progress lock");
        if let Some(slot) = islands.get_mut(row.island) {
            *slot = row;
        }
    }

    /// Offers a candidate champion; kept if strictly fitter, or
    /// equally fit from a lower island index.
    fn offer(&self, island: usize, candidate: &EvaluatedGenome) {
        let mut best = self.best.lock().expect("progress lock");
        let replace = match &*best {
            None => true,
            Some((held_island, held)) => {
                candidate.fitness > held.fitness
                    || (candidate.fitness == held.fitness && island < *held_island)
            }
        };
        if replace {
            *best = Some((island, candidate.clone()));
        }
    }
}

/// A telemetry shim shared by every driver thread: forwards to one
/// underlying collector behind a mutex. Event *contents* stay
/// deterministic; only the interleaving of records from different
/// islands reflects the (nondeterministic) schedule.
#[derive(Clone)]
pub struct SharedCollector {
    inner: Arc<Mutex<Box<dyn Collector + Send>>>,
}

impl std::fmt::Debug for SharedCollector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedCollector").finish_non_exhaustive()
    }
}

impl SharedCollector {
    /// Wraps a collector for multi-threaded use.
    pub fn new(collector: impl Collector + Send + 'static) -> Self {
        SharedCollector {
            inner: Arc::new(Mutex::new(Box::new(collector))),
        }
    }

    /// A collector that discards everything.
    pub fn null() -> Self {
        SharedCollector::new(e3_telemetry::NullCollector)
    }

    /// Runs a closure against the wrapped collector (e.g. to inspect a
    /// `MemoryCollector` after the run).
    pub fn with_inner<R>(&self, f: impl FnOnce(&mut (dyn Collector + Send)) -> R) -> R {
        let mut guard = self.inner.lock().expect("collector lock");
        f(guard.as_mut())
    }
}

impl Collector for SharedCollector {
    fn record(&mut self, event: &TelemetryEvent) -> Result<(), TelemetryError> {
        self.inner.lock().expect("collector lock").record(event)
    }

    fn flush(&mut self) -> Result<(), TelemetryError> {
        self.inner.lock().expect("collector lock").flush()
    }
}

/// Filters the platform-internal event stream down to the events that
/// are meaningful per-island (checkpoints and resumes, which carry
/// namespaced paths): the per-generation numbers are re-emitted as
/// labeled [`IslandRecord`]s instead, so the unlabeled `Eval`/`Exec`/
/// `Generation` records of N interleaved islands don't mix in one
/// stream.
struct PlatformFilter<'a> {
    inner: &'a mut SharedCollector,
}

impl Collector for PlatformFilter<'_> {
    fn record(&mut self, event: &TelemetryEvent) -> Result<(), TelemetryError> {
        match event {
            TelemetryEvent::Checkpoint(_) | TelemetryEvent::Resume(_) => self.inner.record(event),
            _ => Ok(()),
        }
    }
}

/// One island's in-flight state.
#[derive(Debug)]
struct IslandState {
    island: usize,
    platform: E3Platform,
    sources: Vec<usize>,
    /// `Some(g)`: the eval phase of generation `g` is done and the
    /// boundary packet published, but the sources' packets were not
    /// all available — the island parks until they are.
    awaiting: Option<usize>,
}

/// What one scheduling slice (at most one generation) ended with.
enum Slice {
    /// A full generation completed; requeue.
    Yield,
    /// Mid-generation at boundary `generation`, sources pending; park.
    Parked { generation: usize },
    /// The island finished after evaluating `last_generation` last.
    Retired { last_generation: usize },
}

/// Scheduler-internal shared state: run queue, parked set, packet
/// exchange, and per-island slots. One mutex guards it all — every
/// critical section is a few map operations, while evaluation and
/// reproduction happen outside the lock.
#[derive(Debug)]
struct Core {
    ready: VecDeque<usize>,
    states: Vec<Option<IslandState>>,
    parked: HashSet<usize>,
    waiters: HashMap<(usize, usize), Vec<usize>>,
    exchange: Exchange,
    active: usize,
    outcomes: Vec<Option<IslandOutcome>>,
    failure: Option<RunError>,
    stopped: bool,
}

/// An archipelago ready to run: N platforms over one shared pool, plus
/// the exchange preloaded with any persisted packets from a previous
/// (killed) incarnation.
#[derive(Debug)]
pub struct Archipelago {
    config: IslandsConfig,
    store: Option<Mutex<MultiStore>>,
    core: Mutex<Core>,
    runnable: Condvar,
    progress: Arc<Progress>,
    pool: e3_exec::SharedExecutor,
}

impl Archipelago {
    /// Builds (or resumes) every island.
    ///
    /// With checkpointing configured, each island namespace is bound
    /// in the shared registry (a cross-island directory mixup is a
    /// typed [`e3_store::StoreError::NamespaceMismatch`]), islands
    /// resume from their newest intact snapshot, and previously
    /// persisted migration packets and retirement markers are loaded
    /// back onto the exchange.
    ///
    /// # Errors
    ///
    /// [`RunError::Store`] on any persistence problem.
    pub fn new(config: IslandsConfig) -> Result<Self, RunError> {
        let pool = e3_exec::SharedExecutor::new(config.base.threads);
        let mut store = match &config.checkpoint {
            Some(policy) => Some(MultiStore::open(&policy.dir)?),
            None => None,
        };
        let mut exchange = Exchange::new();
        let mut states = Vec::with_capacity(config.islands);
        for island in 0..config.islands {
            let island_config = config.island_config(island);
            let seed = island_seed(config.seed, island);
            if let Some(multi) = &mut store {
                // Bind the namespace before the platform touches the
                // directory: a mixed-up archipelago root fails here,
                // island-typed, before any snapshot is read.
                let keep = config
                    .checkpoint
                    .as_ref()
                    .expect("store implies policy")
                    .keep_last;
                let fp = fingerprint(&island_config, config.backend, seed);
                multi.store_for(&namespace(island), fp, keep)?;
            }
            let platform = match config.checkpoint {
                Some(_) => match E3Platform::resume_with_executor(
                    island_config.clone(),
                    config.backend,
                    seed,
                    pool.clone(),
                )? {
                    Some(resumed) => resumed,
                    None => E3Platform::new_with_executor(
                        island_config,
                        config.backend,
                        seed,
                        pool.clone(),
                    ),
                },
                None => {
                    E3Platform::new_with_executor(island_config, config.backend, seed, pool.clone())
                }
            };
            states.push(Some(IslandState {
                island,
                platform,
                sources: config.sources(island),
                awaiting: None,
            }));
        }
        if let Some(multi) = &store {
            for island in 0..config.islands {
                let ns = namespace(island);
                for name in multi.list_sidecars(&ns, "mig-")? {
                    if let Some(packet) = multi.load_sidecar::<MigrationPacket>(&ns, &name)? {
                        if packet.source == island {
                            exchange.publish(packet);
                        }
                    }
                }
                if let Some(retirement) =
                    multi.load_sidecar::<Retirement>(&ns, RETIREMENT_SIDECAR)?
                {
                    if retirement.island == island {
                        exchange.retire(island, retirement.last_generation);
                    }
                }
            }
        }
        let islands = config.islands;
        Ok(Archipelago {
            config,
            store: store.map(Mutex::new),
            core: Mutex::new(Core {
                ready: (0..islands).collect(),
                states,
                parked: HashSet::new(),
                waiters: HashMap::new(),
                exchange,
                active: islands,
                outcomes: (0..islands).map(|_| None).collect(),
                failure: None,
                stopped: false,
            }),
            runnable: Condvar::new(),
            progress: Arc::new(Progress::new(islands)),
            pool,
        })
    }

    /// A pollable progress handle (cheap to clone, safe from any
    /// thread, live for the duration of [`Archipelago::run`]).
    pub fn progress(&self) -> Arc<Progress> {
        Arc::clone(&self.progress)
    }

    /// A handle to the shared worker pool every island evaluates on —
    /// cheap to clone, and its [`e3_exec::SharedExecutor::snapshot`]
    /// gauges stay live for the duration of [`Archipelago::run`].
    pub fn pool(&self) -> e3_exec::SharedExecutor {
        self.pool.clone()
    }

    /// The configuration this archipelago was built from.
    pub fn config(&self) -> &IslandsConfig {
        &self.config
    }

    /// Runs the archipelago to completion (or graceful stop),
    /// reporting telemetry to `collector`.
    ///
    /// # Errors
    ///
    /// The first [`RunError`] any island hit; remaining islands stop
    /// at their next generation boundary.
    pub fn run(
        self,
        opts: &RunOptions,
        collector: &SharedCollector,
    ) -> Result<ArchipelagoOutcome, RunError> {
        let drivers = opts.drivers.max(1).min(self.config.islands.max(1));
        std::thread::scope(|scope| {
            for _ in 0..drivers {
                let mut driver_collector = collector.clone();
                let archipelago = &self;
                scope.spawn(move || archipelago.drive(opts, &mut driver_collector));
            }
        });
        let mut core = self.core.into_inner().expect("scheduler lock");
        if let Some(err) = core.failure.take() {
            return Err(err);
        }
        let completed = core.active == 0;
        let migrations = self.progress.migrations();
        let islands: Vec<IslandOutcome> = (0..self.config.islands)
            .map(|i| match core.outcomes[i].take() {
                Some(outcome) => outcome,
                None => {
                    let state = core.states[i]
                        .take()
                        .expect("an unfinished island keeps its state");
                    Self::island_outcome(&self.config, &state, false)
                }
            })
            .collect();
        let mut best: Option<(usize, EvaluatedGenome)> = None;
        for outcome in &islands {
            if let Some(candidate) = &outcome.best {
                let better = match &best {
                    None => true,
                    Some((_, held)) => candidate.fitness > held.fitness,
                };
                if better {
                    best = Some((outcome.island, candidate.clone()));
                }
            }
        }
        Ok(ArchipelagoOutcome {
            islands,
            best,
            migrations,
            completed,
        })
    }

    /// One driver thread: pick a runnable island, advance it one
    /// generation, apply the resulting transition, repeat.
    fn drive(&self, opts: &RunOptions, collector: &mut SharedCollector) {
        loop {
            let (island, mut state) = {
                let mut core = self.core.lock().expect("scheduler lock");
                loop {
                    if core.active == 0 || core.failure.is_some() || core.stopped {
                        return;
                    }
                    if opts
                        .stop
                        .as_ref()
                        .is_some_and(|s| s.load(Ordering::Relaxed))
                    {
                        core.stopped = true;
                        self.runnable.notify_all();
                        return;
                    }
                    let picked = match opts.pickup {
                        Pickup::Fifo => core.ready.pop_front(),
                        Pickup::Lifo => core.ready.pop_back(),
                    };
                    if let Some(island) = picked {
                        let state = core.states[island]
                            .take()
                            .expect("a queued island owns its state");
                        break (island, state);
                    }
                    // Timed wait so a stop flag set while everything
                    // is parked or busy still gets noticed.
                    core = self
                        .runnable
                        .wait_timeout(core, Duration::from_millis(25))
                        .expect("scheduler lock")
                        .0;
                }
            };
            match self.step_island(&mut state, collector) {
                Ok(Slice::Yield) => {
                    let mut core = self.core.lock().expect("scheduler lock");
                    core.states[island] = Some(state);
                    core.ready.push_back(island);
                    drop(core);
                    self.runnable.notify_one();
                }
                Ok(Slice::Parked { generation }) => {
                    let sources = state.sources.clone();
                    let mut core = self.core.lock().expect("scheduler lock");
                    core.states[island] = Some(state);
                    // Re-check under the lock: the packets may have
                    // landed between the slice's peek and now — the
                    // atomic check-then-park is what makes wakeups
                    // impossible to lose.
                    if core.exchange.try_collect(&sources, generation).is_some() {
                        core.ready.push_back(island);
                        drop(core);
                        self.runnable.notify_one();
                    } else {
                        for source in core.exchange.pending_sources(&sources, generation) {
                            core.waiters
                                .entry((source, generation))
                                .or_default()
                                .push(island);
                        }
                        core.parked.insert(island);
                    }
                }
                Ok(Slice::Retired { last_generation }) => {
                    if let Err(err) = self.persist_retirement(island, last_generation) {
                        self.fail(err);
                        return;
                    }
                    let outcome = Self::island_outcome(&self.config, &state, true);
                    let mut core = self.core.lock().expect("scheduler lock");
                    core.exchange.retire(island, last_generation);
                    let later_keys: Vec<(usize, usize)> = core
                        .waiters
                        .keys()
                        .filter(|(source, generation)| {
                            *source == island && *generation > last_generation
                        })
                        .copied()
                        .collect();
                    for key in later_keys {
                        Self::wake_locked(&mut core, key);
                    }
                    core.outcomes[island] = Some(outcome);
                    core.active -= 1;
                    drop(core);
                    self.runnable.notify_all();
                }
                Err(err) => {
                    self.fail(err);
                    return;
                }
            }
        }
    }

    /// Advances one island by at most one generation. Runs outside the
    /// core lock except for the brief publish/collect touches.
    fn step_island(
        &self,
        state: &mut IslandState,
        collector: &mut SharedCollector,
    ) -> Result<Slice, RunError> {
        let config = &self.config;
        if state.awaiting.is_none() {
            // An island resumed from a checkpoint written right after
            // its solving generation is already finished: retire
            // without re-running anything.
            if Self::island_finished(&state.platform, config) {
                let last = state.platform.generation().saturating_sub(1);
                self.emit_island_record(state, state.platform.last_step_best(), true, collector)?;
                return Ok(Slice::Retired {
                    last_generation: last,
                });
            }
            state
                .platform
                .eval_phase_with(&mut PlatformFilter { inner: collector })?;
            let generation = state.platform.generation();
            if config.is_boundary(generation) {
                let packet = MigrationPacket {
                    source: state.island,
                    generation,
                    emigrants: state.platform.population().emigrants(config.emigrants),
                };
                self.persist_packet(&packet)?;
                let mut core = self.core.lock().expect("scheduler lock");
                let key = (state.island, generation);
                core.exchange.publish(packet);
                Self::wake_locked(&mut core, key);
                drop(core);
                self.runnable.notify_all();
                state.awaiting = Some(generation);
            }
        }
        if let Some(generation) = state.awaiting {
            let wave = {
                let core = self.core.lock().expect("scheduler lock");
                core.exchange.try_collect(&state.sources, generation)
            };
            let Some(wave) = wave else {
                return Ok(Slice::Parked { generation });
            };
            let immigrants: Vec<EvaluatedGenome> = wave
                .iter()
                .flat_map(|packet| packet.emigrants.iter().cloned())
                .collect();
            let best_immigrant_fitness = immigrants
                .iter()
                .map(|immigrant| immigrant.fitness)
                .fold(None, |held: Option<f64>, f| {
                    Some(held.map_or(f, |h| h.max(f)))
                });
            state
                .platform
                .population_mut()
                .integrate_immigrants(&immigrants);
            collector.record(&TelemetryEvent::Migration(MigrationRecord {
                island: state.island,
                generation,
                sources: wave.iter().map(|packet| packet.source).collect(),
                immigrants: immigrants.len(),
                emigrants: config.emigrants,
                best_immigrant_fitness,
            }))?;
            self.progress.migrations.fetch_add(1, Ordering::Relaxed);
            state.awaiting = None;
        }
        let best = state
            .platform
            .evolve_phase_with(&mut PlatformFilter { inner: collector })?;
        self.progress.generations.fetch_add(1, Ordering::Relaxed);
        if let Some(champion) = state.platform.population().best() {
            self.progress.offer(state.island, champion);
        }
        let finished = Self::island_finished(&state.platform, config);
        self.emit_island_record(state, Some(best), finished, collector)?;
        if finished {
            return Ok(Slice::Retired {
                last_generation: state.platform.generation().saturating_sub(1),
            });
        }
        Ok(Slice::Yield)
    }

    /// The same stop rule as [`E3Platform::run_with`].
    fn island_finished(platform: &E3Platform, config: &IslandsConfig) -> bool {
        platform
            .last_step_best()
            .is_some_and(|best| best >= config.base.target_fitness)
            || platform.generation() >= config.base.max_generations
    }

    fn emit_island_record(
        &self,
        state: &IslandState,
        best: Option<f64>,
        retired: bool,
        collector: &mut SharedCollector,
    ) -> Result<(), TelemetryError> {
        let platform = &state.platform;
        let best_ever = platform
            .population()
            .best()
            .map(|b| b.fitness)
            .or(best)
            .unwrap_or(f64::NEG_INFINITY);
        self.progress.update_island(IslandProgress {
            island: state.island,
            generation: platform.generation(),
            best_fitness: best_ever.is_finite().then_some(best_ever),
            species: platform.population().species().len(),
            retired,
        });
        collector.record(&TelemetryEvent::Island(IslandRecord {
            island: state.island,
            islands: self.config.islands,
            generation: platform.generation().saturating_sub(1),
            backend: platform.backend_kind().name().to_string(),
            env: self.config.base.env.name().to_string(),
            best_fitness: best.unwrap_or(best_ever),
            best_ever,
            species: platform.population().species().len(),
            retired,
        }))
    }

    fn island_outcome(
        config: &IslandsConfig,
        state: &IslandState,
        solved_check: bool,
    ) -> IslandOutcome {
        let platform = &state.platform;
        let best = platform.population().best().cloned();
        let best_fitness = best.as_ref().map_or(f64::NEG_INFINITY, |b| b.fitness);
        IslandOutcome {
            island: state.island,
            solved: solved_check && best_fitness >= config.base.target_fitness,
            generations_run: platform.generation(),
            best_fitness,
            modeled_seconds: platform.profile().total(),
            population_fingerprint: population_fingerprint(platform.population()),
            best,
        }
    }

    fn persist_packet(&self, packet: &MigrationPacket) -> Result<(), RunError> {
        if let Some(store) = &self.store {
            let store = store.lock().expect("store lock");
            store.save_sidecar(
                &namespace(packet.source),
                &packet_sidecar_name(packet.generation),
                packet,
            )?;
        }
        Ok(())
    }

    fn persist_retirement(&self, island: usize, last_generation: usize) -> Result<(), RunError> {
        if let Some(store) = &self.store {
            let store = store.lock().expect("store lock");
            store.save_sidecar(
                &namespace(island),
                RETIREMENT_SIDECAR,
                &Retirement {
                    island,
                    last_generation,
                },
            )?;
        }
        Ok(())
    }

    /// Records the first failure and stops every driver.
    fn fail(&self, err: RunError) {
        let mut core = self.core.lock().expect("scheduler lock");
        if core.failure.is_none() {
            core.failure = Some(err);
        }
        drop(core);
        self.runnable.notify_all();
    }

    /// Requeues every island parked on `key`. Stale waiter entries
    /// (islands already woken through another key) are skipped via the
    /// parked-set membership test.
    fn wake_locked(core: &mut Core, key: (usize, usize)) {
        if let Some(waiters) = core.waiters.remove(&key) {
            for island in waiters {
                if core.parked.remove(&island) {
                    core.ready.push_back(island);
                }
            }
        }
    }
}

/// Convenience entry point: build and run an archipelago in one call.
///
/// # Errors
///
/// See [`Archipelago::new`] and [`Archipelago::run`].
pub fn run_islands(
    config: IslandsConfig,
    opts: &RunOptions,
    collector: &SharedCollector,
) -> Result<ArchipelagoOutcome, RunError> {
    Archipelago::new(config)?.run(opts, collector)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Topology;
    use e3_envs::EnvId;
    use e3_platform::{BackendKind, E3Config};

    fn base(max_generations: usize) -> E3Config {
        E3Config::builder(EnvId::CartPole)
            .population_size(16)
            .max_generations(max_generations)
            .target_fitness(f64::INFINITY)
            .build()
    }

    fn fingerprints(outcome: &ArchipelagoOutcome) -> Vec<u64> {
        outcome
            .islands
            .iter()
            .map(|i| i.population_fingerprint)
            .collect()
    }

    #[test]
    fn single_island_matches_a_plain_platform_run() {
        let outcome = run_islands(
            IslandsConfig::builder(base(3)).islands(1).seed(9).build(),
            &RunOptions::default(),
            &SharedCollector::null(),
        )
        .unwrap();
        let mut plain = E3Platform::new(base(3), BackendKind::Cpu, 9);
        for _ in 0..3 {
            plain.step_generation().unwrap();
        }
        assert_eq!(outcome.islands.len(), 1);
        assert_eq!(outcome.migrations, 0);
        assert!(outcome.completed);
        assert_eq!(
            outcome.islands[0].population_fingerprint,
            population_fingerprint(plain.population()),
            "one island must be bit-identical to a plain run"
        );
        assert_eq!(
            outcome.islands[0].best_fitness,
            plain.population().best().unwrap().fitness
        );
    }

    #[test]
    fn results_are_identical_across_drivers_and_pickup_orders() {
        let config = |seed| {
            IslandsConfig::builder(base(6))
                .islands(3)
                .migration_interval(2)
                .emigrants(2)
                .seed(seed)
                .build()
        };
        let reference = run_islands(
            config(5),
            &RunOptions::with_drivers(1),
            &SharedCollector::null(),
        )
        .unwrap();
        assert!(reference.migrations > 0, "boundaries must fire");
        for (drivers, pickup) in [(2, Pickup::Fifo), (3, Pickup::Lifo), (1, Pickup::Lifo)] {
            let opts = RunOptions {
                drivers,
                pickup,
                stop: None,
            };
            let outcome = run_islands(config(5), &opts, &SharedCollector::null()).unwrap();
            assert_eq!(
                fingerprints(&outcome),
                fingerprints(&reference),
                "drivers={drivers} pickup={pickup:?} diverged"
            );
            assert_eq!(outcome.migrations, reference.migrations);
        }
    }

    #[test]
    fn migration_actually_mixes_populations() {
        let isolated = run_islands(
            IslandsConfig::builder(base(6))
                .islands(2)
                .migration_interval(100)
                .seed(3)
                .build(),
            &RunOptions::default(),
            &SharedCollector::null(),
        )
        .unwrap();
        let mixed = run_islands(
            IslandsConfig::builder(base(6))
                .islands(2)
                .migration_interval(2)
                .seed(3)
                .build(),
            &RunOptions::default(),
            &SharedCollector::null(),
        )
        .unwrap();
        assert_eq!(isolated.migrations, 0);
        assert!(mixed.migrations > 0);
        assert_ne!(
            fingerprints(&isolated),
            fingerprints(&mixed),
            "migration must change the evolutionary trajectory"
        );
    }

    /// A collector that copies events into a buffer the test keeps a
    /// handle to (the `SharedCollector` box hides its inner type).
    #[derive(Clone, Default)]
    struct Tap(Arc<Mutex<Vec<TelemetryEvent>>>);

    impl Collector for Tap {
        fn record(&mut self, event: &TelemetryEvent) -> Result<(), TelemetryError> {
            self.0.lock().expect("tap lock").push(event.clone());
            Ok(())
        }
    }

    #[test]
    fn telemetry_stream_carries_island_and_migration_records() {
        let tap = Tap::default();
        let collector = SharedCollector::new(tap.clone());
        let outcome = run_islands(
            IslandsConfig::builder(base(4))
                .islands(2)
                .migration_interval(2)
                .topology(Topology::FullyConnected)
                .build(),
            &RunOptions::with_drivers(2),
            &collector,
        )
        .unwrap();
        let events = tap.0.lock().expect("tap lock");
        let islands = events
            .iter()
            .filter(|e| matches!(e, TelemetryEvent::Island(_)))
            .count();
        let migrations = events
            .iter()
            .filter(|e| matches!(e, TelemetryEvent::Migration(_)))
            .count();
        assert_eq!(islands, 2 * 4, "one island record per island-generation");
        assert_eq!(migrations, outcome.migrations);
        assert_eq!(migrations, 2 * 2, "two boundaries x two islands");
    }

    #[test]
    fn graceful_stop_leaves_partial_outcome() {
        let stop = Arc::new(AtomicBool::new(true));
        let outcome = run_islands(
            IslandsConfig::builder(base(50)).islands(2).build(),
            &RunOptions {
                drivers: 1,
                pickup: Pickup::Fifo,
                stop: Some(stop),
            },
            &SharedCollector::null(),
        )
        .unwrap();
        assert!(!outcome.completed);
        assert_eq!(outcome.islands.len(), 2);
        assert!(outcome.islands.iter().all(|i| !i.solved));
    }
}
