//! The observability server: a background accept loop over a
//! [`RunManager`], serving Prometheus metrics, health, JSON run
//! status, and streaming NDJSON telemetry.
//!
//! Isolation guarantees (what makes serving safe to leave attached to
//! a production run):
//!
//! * **`/metrics` never touches the manager lock** — the shared
//!   registry handle is captured at construction, and rendering takes
//!   only the registry's own short-lived mutex.
//! * **Status endpoints hold the manager lock for one snapshot** —
//!   subscriptions and snapshots are taken under the lock, streaming
//!   happens outside it.
//! * **A stalled scraper cannot back-pressure the scheduler** — event
//!   fan-out goes through unbounded channels (send never blocks), and
//!   every connection has a bounded write timeout, after which the
//!   connection is dropped.
//! * **Graceful shutdown** — [`Server::shutdown`] sets a stop flag;
//!   the acceptor notices within one poll interval, in-flight event
//!   streams write their terminator chunk and close, and every
//!   connection thread is joined before `shutdown` returns.

use crate::http;
use e3_islands::{RunId, RunManager, RunStatus};
use e3_telemetry::SharedRegistry;
use serde::{Deserialize, Serialize};
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Prometheus text exposition content type.
pub const METRICS_CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";
/// NDJSON event-stream content type.
pub const EVENTS_CONTENT_TYPE: &str = "application/x-ndjson";
const JSON: &str = "application/json";

/// Server construction knobs.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Bind address; port 0 picks a free port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Per-connection read timeout (time to produce a request line).
    pub read_timeout: Duration,
    /// Per-connection write timeout — the bound on how long a stalled
    /// scraper can hold a connection thread.
    pub write_timeout: Duration,
    /// How often the accept loop polls the stop flag.
    pub poll_interval: Duration,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:0".to_string(),
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            poll_interval: Duration::from_millis(10),
        }
    }
}

/// The `/healthz` body.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Health {
    /// `"ok"` while the daemon is serving.
    pub status: String,
    /// One row per known run.
    pub runs: Vec<RunHealth>,
}

/// One run's liveness row inside [`Health`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunHealth {
    /// Canonical `run-NNNN` id.
    pub id: String,
    /// [`RunStatus::name`] of the run.
    pub status: String,
}

/// A running observability server. Dropping it (or calling
/// [`Server::shutdown`]) stops the accept loop, closes in-flight
/// streams, and joins every connection thread.
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl Server {
    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// `http://host:port` for the bound address.
    pub fn url(&self) -> String {
        format!("http://{}", self.addr)
    }

    /// Stops accepting, closes in-flight streams cleanly, and joins
    /// every connection thread. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Mounts the observability plane on `manager` and starts serving in
/// the background.
///
/// Endpoints:
///
/// | Path | Body |
/// |------|------|
/// | `GET /` | JSON endpoint index |
/// | `GET /metrics` | Prometheus text exposition of the manager's registry |
/// | `GET /healthz` | [`Health`] JSON: daemon + per-run liveness |
/// | `GET /runs` | JSON array of [`e3_islands::RunSnapshot`] |
/// | `GET /runs/{id}` | One [`e3_islands::RunSnapshot`] |
/// | `GET /runs/{id}/events` | Chunked NDJSON event stream (`?limit=N` to bound it) |
/// | `DELETE /runs/{id}` | Stops the run ([`RunManager::stop`]), returns its final [`e3_islands::RunSnapshot`] |
/// | `POST /runs/{id}/stop` | Alias for `DELETE /runs/{id}` (for clients without DELETE) |
///
/// # Errors
///
/// [`io::Error`] if the listener cannot bind `opts.addr`.
pub fn serve(manager: Arc<Mutex<RunManager>>, opts: ServeOptions) -> io::Result<Server> {
    let listener = TcpListener::bind(&opts.addr)?;
    let addr = listener.local_addr()?;
    // Nonblocking accept + stop-flag polling: portable graceful
    // shutdown without signals or self-pipes.
    listener.set_nonblocking(true)?;
    let registry = manager.lock().expect("manager lock").registry().clone();
    let stop = Arc::new(AtomicBool::new(false));
    let acceptor_stop = Arc::clone(&stop);
    let acceptor = std::thread::spawn(move || {
        let mut connections: Vec<JoinHandle<()>> = Vec::new();
        loop {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    let manager = Arc::clone(&manager);
                    let registry = registry.clone();
                    let stop = Arc::clone(&acceptor_stop);
                    let opts = opts.clone();
                    connections.push(std::thread::spawn(move || {
                        // Connection-level errors (timeouts, resets,
                        // malformed requests) just drop the connection.
                        let _ = handle_connection(stream, &manager, &registry, &stop, &opts);
                    }));
                }
                Err(err) if err.kind() == io::ErrorKind::WouldBlock => {
                    if acceptor_stop.load(Ordering::Relaxed) {
                        break;
                    }
                    connections.retain(|handle| !handle.is_finished());
                    std::thread::sleep(opts.poll_interval);
                }
                Err(_) => {
                    // Accept errors (EMFILE, aborted handshakes) are
                    // transient; keep serving unless stopped.
                    if acceptor_stop.load(Ordering::Relaxed) {
                        break;
                    }
                    std::thread::sleep(opts.poll_interval);
                }
            }
        }
        for handle in connections {
            let _ = handle.join();
        }
    });
    Ok(Server {
        addr,
        stop,
        acceptor: Some(acceptor),
    })
}

fn handle_connection(
    stream: TcpStream,
    manager: &Arc<Mutex<RunManager>>,
    registry: &SharedRegistry,
    stop: &Arc<AtomicBool>,
    opts: &ServeOptions,
) -> io::Result<()> {
    stream.set_read_timeout(Some(opts.read_timeout))?;
    stream.set_write_timeout(Some(opts.write_timeout))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let request = http::read_request(&mut reader)?;
    let mut writer = BufWriter::new(stream);
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("GET", []) => http::ok(
            &mut writer,
            JSON,
            br#"{"endpoints":["GET /metrics","GET /healthz","GET /runs","GET /runs/{id}","GET /runs/{id}/events","DELETE /runs/{id}","POST /runs/{id}/stop"]}"#,
        ),
        ("GET", ["metrics"]) => http::ok(
            &mut writer,
            METRICS_CONTENT_TYPE,
            registry.prometheus_text().as_bytes(),
        ),
        ("GET", ["healthz"]) => {
            let health = {
                let manager = manager.lock().expect("manager lock");
                Health {
                    status: "ok".to_string(),
                    runs: manager
                        .runs()
                        .into_iter()
                        .map(|id| RunHealth {
                            id: id.to_string(),
                            status: manager
                                .status(id)
                                .as_ref()
                                .map_or("unknown", RunStatus::name)
                                .to_string(),
                        })
                        .collect(),
                }
            };
            http::ok(&mut writer, JSON, to_json(&health).as_bytes())
        }
        ("GET", ["runs"]) => {
            let snapshots = manager.lock().expect("manager lock").snapshots();
            http::ok(&mut writer, JSON, to_json(&snapshots).as_bytes())
        }
        ("GET", ["runs", id]) => match parse_run_id(id) {
            Some(id) => match manager.lock().expect("manager lock").snapshot(id) {
                Some(snapshot) => http::ok(&mut writer, JSON, to_json(&snapshot).as_bytes()),
                None => http::not_found(&mut writer, &id.to_string()),
            },
            None => http::not_found(&mut writer, &request.path),
        },
        ("GET", ["runs", id, "events"]) => match parse_run_id(id) {
            Some(id) => {
                // Subscribe under the manager lock, stream outside it.
                let events = manager.lock().expect("manager lock").subscribe(id);
                match events {
                    Some(events) => stream_events(&mut writer, &events, &request, stop, opts),
                    None => http::not_found(&mut writer, &id.to_string()),
                }
            }
            None => http::not_found(&mut writer, &request.path),
        },
        ("DELETE", ["runs", id]) | ("POST", ["runs", id, "stop"]) => match parse_run_id(id) {
            Some(id) => stop_run(&mut writer, manager, id),
            None => http::not_found(&mut writer, &request.path),
        },
        ("GET", _) => http::not_found(&mut writer, &request.path),
        _ => http::method_not_allowed(&mut writer),
    }
}

/// Stops a run and reports its final state: `404` for an unknown id,
/// `200` with the post-stop [`e3_islands::RunSnapshot`] when the run
/// wound down cleanly, `500` with the run's error when it failed.
/// Idempotent like [`RunManager::stop`] — stopping a finished run
/// replays its cached outcome.
fn stop_run(
    writer: &mut impl Write,
    manager: &Arc<Mutex<RunManager>>,
    id: RunId,
) -> io::Result<()> {
    // Stop + snapshot under one lock acquisition so the snapshot
    // reflects the stopped state; the response is written outside it.
    let (result, snapshot) = {
        let mut manager = manager.lock().expect("manager lock");
        let result = manager
            .stop(id)
            .map(|outcome| outcome.map_err(|err| err.to_string()));
        (result, manager.snapshot(id))
    };
    match (result, snapshot) {
        (Some(Ok(_)), Some(snapshot)) => http::ok(writer, JSON, to_json(&snapshot).as_bytes()),
        (Some(Err(message)), _) => http::server_error(writer, &message),
        _ => http::not_found(writer, &id.to_string()),
    }
}

/// Streams the subscription as chunked NDJSON: one event per line, one
/// line per chunk, flushed per record. Ends with a clean terminator
/// chunk when the run's stream closes, the optional `?limit=N` is
/// reached, or the server shuts down.
fn stream_events(
    writer: &mut impl Write,
    events: &mpsc::Receiver<e3_telemetry::TelemetryEvent>,
    request: &http::Request,
    stop: &Arc<AtomicBool>,
    opts: &ServeOptions,
) -> io::Result<()> {
    let limit: usize = request
        .query_param("limit")
        .and_then(|v| v.parse().ok())
        .unwrap_or(usize::MAX);
    http::start_chunked(writer, EVENTS_CONTENT_TYPE)?;
    let mut sent = 0usize;
    while sent < limit {
        match events.recv_timeout(opts.poll_interval.max(Duration::from_millis(50))) {
            Ok(event) => {
                let mut line = serde_json::to_string(&event).expect("telemetry events serialize");
                line.push('\n');
                http::write_chunk(writer, line.as_bytes())?;
                sent += 1;
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }
    }
    http::finish_chunks(writer)
}

fn parse_run_id(raw: &str) -> Option<RunId> {
    raw.parse().ok()
}

fn to_json<T: Serialize>(value: &T) -> String {
    serde_json::to_string(value).expect("observability types serialize")
}
