//! Minimal HTTP/1.1 plumbing over std I/O — just enough protocol for
//! an observability plane: request-line parsing, fixed-length
//! responses, and chunked transfer encoding for event streams. No
//! keep-alive (every response closes the connection), no TLS, no
//! request bodies.

use std::io::{self, BufRead, Write};

/// A parsed request line: method, path, and the raw query string (the
/// part after `?`, if any). Headers are drained but ignored — no
/// endpoint here needs them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The HTTP method verbatim (`GET`, `HEAD`, ...).
    pub method: String,
    /// The decoded-enough path: everything before `?`.
    pub path: String,
    /// The raw query string after `?`, if present.
    pub query: Option<String>,
}

impl Request {
    /// The value of `key` in the query string (`k=v` pairs joined by
    /// `&`; no percent-decoding — the values used here are numbers).
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.as_deref()?.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == key).then_some(v)
        })
    }
}

fn bad_request(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("bad request: {what}"))
}

/// Reads one request head (request line plus headers, up to the blank
/// line) from the stream.
///
/// # Errors
///
/// I/O errors from the underlying stream (including read timeouts),
/// or [`io::ErrorKind::InvalidData`] for a malformed request line.
pub fn read_request(reader: &mut impl BufRead) -> io::Result<Request> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed before a request line",
        ));
    }
    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or_else(|| bad_request("empty line"))?;
    let target = parts.next().ok_or_else(|| bad_request("no target"))?;
    if !parts.next().is_some_and(|v| v.starts_with("HTTP/")) {
        return Err(bad_request("missing HTTP version"));
    }
    // Drain headers; cap the count so a hostile peer cannot feed an
    // endless header section.
    for _ in 0..128 {
        let mut header = String::new();
        let n = reader.read_line(&mut header)?;
        if n == 0 || header == "\r\n" || header == "\n" {
            break;
        }
    }
    let (path, query) = match target.split_once('?') {
        Some((path, query)) => (path, Some(query.to_string())),
        None => (target, None),
    };
    Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
        query,
    })
}

/// Writes a complete fixed-length response and flushes.
///
/// # Errors
///
/// I/O errors from the stream (including write timeouts).
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body)?;
    stream.flush()
}

/// Convenience: a `200 OK` response.
pub fn ok(stream: &mut impl Write, content_type: &str, body: &[u8]) -> io::Result<()> {
    write_response(stream, 200, "OK", content_type, body)
}

/// Convenience: a plain-text `404 Not Found`.
pub fn not_found(stream: &mut impl Write, what: &str) -> io::Result<()> {
    write_response(
        stream,
        404,
        "Not Found",
        "text/plain; charset=utf-8",
        format!("not found: {what}\n").as_bytes(),
    )
}

/// Convenience: a plain-text `405 Method Not Allowed`.
pub fn method_not_allowed(stream: &mut impl Write) -> io::Result<()> {
    write_response(
        stream,
        405,
        "Method Not Allowed",
        "text/plain; charset=utf-8",
        b"method not allowed for this endpoint\n",
    )
}

/// Convenience: a plain-text `500 Internal Server Error`.
pub fn server_error(stream: &mut impl Write, what: &str) -> io::Result<()> {
    write_response(
        stream,
        500,
        "Internal Server Error",
        "text/plain; charset=utf-8",
        format!("error: {what}\n").as_bytes(),
    )
}

/// Starts a chunked (streaming) `200 OK` response; follow with
/// [`write_chunk`] per record and [`finish_chunks`] to end the stream.
///
/// # Errors
///
/// I/O errors from the stream.
pub fn start_chunked(stream: &mut impl Write, content_type: &str) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 200 OK\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()
}

/// Writes one chunk (hex length, CRLF, payload, CRLF) and flushes, so
/// every record is visible to the client as soon as it is produced.
///
/// # Errors
///
/// I/O errors from the stream.
pub fn write_chunk(stream: &mut impl Write, data: &[u8]) -> io::Result<()> {
    if data.is_empty() {
        // An empty chunk would terminate the stream early.
        return Ok(());
    }
    write!(stream, "{:x}\r\n", data.len())?;
    stream.write_all(data)?;
    stream.write_all(b"\r\n")?;
    stream.flush()
}

/// Writes the zero-length terminator chunk and flushes.
///
/// # Errors
///
/// I/O errors from the stream.
pub fn finish_chunks(stream: &mut impl Write) -> io::Result<()> {
    stream.write_all(b"0\r\n\r\n")?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn parses_a_request_line_with_query_and_headers() {
        let raw = b"GET /runs/run-0001/events?limit=5 HTTP/1.1\r\nHost: x\r\nAccept: */*\r\n\r\n";
        let request = read_request(&mut BufReader::new(&raw[..])).unwrap();
        assert_eq!(request.method, "GET");
        assert_eq!(request.path, "/runs/run-0001/events");
        assert_eq!(request.query.as_deref(), Some("limit=5"));
        assert_eq!(request.query_param("limit"), Some("5"));
        assert_eq!(request.query_param("missing"), None);
    }

    #[test]
    fn rejects_a_malformed_request_line() {
        let raw = b"nonsense\r\n\r\n";
        let err = read_request(&mut BufReader::new(&raw[..])).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn fixed_response_carries_content_length() {
        let mut out = Vec::new();
        ok(&mut out, "application/json", b"{}").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn chunked_stream_frames_each_record() {
        let mut out = Vec::new();
        start_chunked(&mut out, "application/x-ndjson").unwrap();
        write_chunk(&mut out, b"{\"a\":1}\n").unwrap();
        write_chunk(&mut out, b"").unwrap(); // no-op, not a terminator
        finish_chunks(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Transfer-Encoding: chunked"));
        assert!(text.contains("8\r\n{\"a\":1}\n\r\n"));
        assert!(text.ends_with("0\r\n\r\n"));
    }
}
