//! A tiny blocking HTTP/1.1 client — just enough to scrape and test
//! the observability server without external tooling: fixed-length
//! and chunked bodies, one request per connection.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A fetched response: status code and full body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// HTTP status code (200, 404, ...).
    pub status: u16,
    /// The body, decoded from fixed-length or chunked framing.
    pub body: String,
}

struct Head {
    status: u16,
    content_length: Option<usize>,
    chunked: bool,
}

fn send_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    timeout: Duration,
) -> io::Result<BufReader<TcpStream>> {
    let stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let mut writer = stream.try_clone()?;
    write!(
        writer,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )?;
    writer.flush()?;
    Ok(BufReader::new(stream))
}

fn read_head(reader: &mut BufReader<TcpStream>) -> io::Result<Head> {
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad status line: {status_line:?}"),
            )
        })?;
    let mut content_length = None;
    let mut chunked = false;
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line)?;
        if n == 0 || line == "\r\n" || line == "\n" {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.parse().ok();
            } else if name.eq_ignore_ascii_case("transfer-encoding")
                && value.eq_ignore_ascii_case("chunked")
            {
                chunked = true;
            }
        }
    }
    Ok(Head {
        status,
        content_length,
        chunked,
    })
}

/// Reads one chunk of a chunked body; `None` at the terminator chunk.
fn read_chunk(reader: &mut BufReader<TcpStream>) -> io::Result<Option<Vec<u8>>> {
    let mut size_line = String::new();
    if reader.read_line(&mut size_line)? == 0 {
        return Ok(None); // connection closed
    }
    let size = usize::from_str_radix(size_line.trim(), 16).map_err(|_| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad chunk size: {size_line:?}"),
        )
    })?;
    if size == 0 {
        return Ok(None);
    }
    let mut data = vec![0u8; size];
    reader.read_exact(&mut data)?;
    let mut crlf = [0u8; 2];
    reader.read_exact(&mut crlf)?;
    Ok(Some(data))
}

/// Fetches `path` from the server at `addr`, decoding fixed-length or
/// chunked bodies.
///
/// # Errors
///
/// Connect/read/write failures (including timeouts) and malformed
/// responses surface as [`io::Error`].
pub fn http_get(addr: SocketAddr, path: &str, timeout: Duration) -> io::Result<HttpResponse> {
    http_request(addr, "GET", path, timeout)
}

/// Sends a bodyless request with an arbitrary method (`DELETE`,
/// `POST`, ...) and decodes the response like [`http_get`].
///
/// # Errors
///
/// Connect/read/write failures (including timeouts) and malformed
/// responses surface as [`io::Error`].
pub fn http_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    timeout: Duration,
) -> io::Result<HttpResponse> {
    let mut reader = send_request(addr, method, path, timeout)?;
    let head = read_head(&mut reader)?;
    let mut body = Vec::new();
    if head.chunked {
        while let Some(chunk) = read_chunk(&mut reader)? {
            body.extend_from_slice(&chunk);
        }
    } else if let Some(length) = head.content_length {
        body.resize(length, 0);
        reader.read_exact(&mut body)?;
    } else {
        reader.read_to_end(&mut body)?;
    }
    Ok(HttpResponse {
        status: head.status,
        body: String::from_utf8_lossy(&body).into_owned(),
    })
}

/// Tails a chunked NDJSON event stream, returning up to `max_lines`
/// complete lines. Stops early when the stream ends; a read timeout
/// returns the lines collected so far instead of an error (tailing a
/// quiet stream is not a failure).
///
/// # Errors
///
/// Connect failures, malformed responses, and non-200 statuses
/// surface as [`io::Error`].
pub fn tail_events(
    addr: SocketAddr,
    path: &str,
    max_lines: usize,
    timeout: Duration,
) -> io::Result<Vec<String>> {
    let mut reader = send_request(addr, "GET", path, timeout)?;
    let head = read_head(&mut reader)?;
    if head.status != 200 {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("event stream returned status {}", head.status),
        ));
    }
    let mut lines = Vec::new();
    let mut pending = String::new();
    while lines.len() < max_lines {
        let chunk = match read_chunk(&mut reader) {
            Ok(Some(chunk)) => chunk,
            Ok(None) => break,
            Err(err)
                if err.kind() == io::ErrorKind::WouldBlock
                    || err.kind() == io::ErrorKind::TimedOut =>
            {
                break;
            }
            Err(err) => return Err(err),
        };
        pending.push_str(&String::from_utf8_lossy(&chunk));
        while let Some(newline) = pending.find('\n') {
            let line: String = pending.drain(..=newline).collect();
            lines.push(line.trim_end().to_string());
            if lines.len() >= max_lines {
                break;
            }
        }
    }
    Ok(lines)
}
