//! # e3-serve — the live observability plane
//!
//! A dependency-free HTTP/1.1 server (std `TcpListener`, no async
//! runtime, no vendored HTTP crates) mounted on an
//! [`e3_islands::RunManager`]. It turns the in-process telemetry this
//! workspace already produces — the shared Prometheus registry, the
//! per-run flight recorder, per-island progress rows, and live
//! executor pool gauges — into something an operator can point `curl`
//! or a Prometheus scraper at while runs are in flight:
//!
//! | Endpoint | What it serves |
//! |----------|----------------|
//! | `GET /metrics` | Prometheus text exposition of the live registry |
//! | `GET /healthz` | Daemon + per-run liveness JSON |
//! | `GET /runs` | JSON status array (one [`e3_islands::RunSnapshot`] per run) |
//! | `GET /runs/{id}` | One run's snapshot: per-island generation, best fitness, migrations, pool queue depths |
//! | `GET /runs/{id}/events` | Chunked NDJSON telemetry stream (flight-recorder replay + live tail) |
//!
//! The design constraint throughout is that **serving must be inert**:
//! attaching the server and scraping it mid-run must not perturb the
//! evolution (bit-identical final populations and NDJSON telemetry
//! versus a server-less run). [`bench::run`] is the gate that enforces
//! this.
//!
//! * [`server`] — the accept loop, routing, and graceful shutdown.
//! * [`client`] — a matching minimal blocking client used by the
//!   bench, CI smoke, and `repro serve --scrape-out`.
//! * [`http`] — shared HTTP/1.1 plumbing (request parsing, chunked
//!   transfer encoding).
//! * [`bench`] — scrape latency measurement plus the
//!   serving-is-inert parity gate behind `BENCH_serve.json`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bench;
pub mod client;
pub mod http;
pub mod server;

pub use bench::{ServeBenchOutput, ServeBenchResult};
pub use client::{http_get, http_request, tail_events, HttpResponse};
pub use server::{
    serve, Health, RunHealth, ServeOptions, Server, EVENTS_CONTENT_TYPE, METRICS_CONTENT_TYPE,
};
