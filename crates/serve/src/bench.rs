//! The `repro serve` experiment: scrape latency plus the
//! serving-is-inert parity gate CI enforces.
//!
//! The gate runs the same archipelago config twice through the
//! [`RunManager`] — once bare, once with the HTTP observability plane
//! attached and actively scraped mid-run — and requires:
//!
//! * **population parity** — every island's final population
//!   fingerprint is bit-identical between the two runs (serving must
//!   not perturb evolution);
//! * **telemetry parity** — the NDJSON telemetry files are
//!   byte-identical (single-driver runs have a deterministic event
//!   stream, and the server must not inject or reorder records);
//! * **endpoint liveness** — `/healthz`, `/runs`, `/runs/{id}`, and a
//!   tailed `/runs/{id}/events` stream all answer correctly while the
//!   run is in flight;
//! * **metrics coverage** — the final `/metrics` scrape carries the
//!   live per-island and per-run gauges this PR threads through the
//!   stack.
//!
//! Scrape latencies are recorded (mean and max) but not gated — CI
//! machines are too noisy for wall-clock bounds.

use crate::client::{http_get, tail_events};
use crate::server::{serve, Health, ServeOptions, Server};
use e3_envs::EnvId;
use e3_islands::{IslandsConfig, Pickup, RunManager, RunSnapshot, RunStatus, SubmitOptions};
use e3_platform::experiments::Scale;
use e3_platform::{BackendKind, E3Config, RunError};
use e3_telemetry::SharedRegistry;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Client timeout for every bench request.
const CLIENT_TIMEOUT: Duration = Duration::from_secs(10);

/// The measurements and gate verdicts of one `repro serve` run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeBenchResult {
    /// Environment the gate ran on.
    pub env: EnvId,
    /// Islands in the archipelago.
    pub islands: usize,
    /// `/metrics` scrapes performed (mid-run plus one final).
    pub scrapes: usize,
    /// Mean scrape latency in milliseconds.
    pub scrape_mean_ms: f64,
    /// Worst scrape latency in milliseconds.
    pub scrape_max_ms: f64,
    /// `/healthz` answered with `status == "ok"` and the run listed.
    pub healthz_ok: bool,
    /// `/runs` listed exactly the submitted run.
    pub runs_listing_ok: bool,
    /// `/runs/{id}` returned a well-formed snapshot for the run.
    pub run_status_ok: bool,
    /// `/runs/{id}/events` streamed parseable NDJSON records.
    pub events_ok: bool,
    /// The final scrape carried the live per-island/per-run series.
    pub metrics_ok: bool,
    /// Final population fingerprints identical with and without the
    /// server attached.
    pub fingerprints_identical: bool,
    /// NDJSON telemetry files byte-identical with and without the
    /// server attached.
    pub ndjson_identical: bool,
    /// Wall seconds for the bare run (submit to join).
    pub baseline_wall_seconds: f64,
    /// Wall seconds for the served, actively scraped run.
    pub served_wall_seconds: f64,
    /// All gates above.
    pub parity_ok: bool,
}

/// [`run`]'s full output: the serializable result plus the final
/// `/metrics` body (for `trace_check --metrics` validation in CI).
#[derive(Debug, Clone)]
pub struct ServeBenchOutput {
    /// The gate verdicts and measurements (what `BENCH_serve.json`
    /// records).
    pub result: ServeBenchResult,
    /// The final `/metrics` scrape, verbatim Prometheus text.
    pub scraped_metrics: String,
}

fn service_error(context: &str, err: impl fmt::Display) -> RunError {
    RunError::Service(format!("{context}: {err}"))
}

fn bench_config(scale: Scale, seed: u64) -> IslandsConfig {
    let base = E3Config::builder(EnvId::CartPole)
        .population_size(scale.population())
        .max_generations(scale.max_generations())
        // Fixed-generation workload so both runs do identical work.
        .target_fitness(f64::INFINITY)
        .threads(2)
        .build();
    IslandsConfig::builder(base)
        .backend(BackendKind::Cpu)
        .islands(2)
        .migration_interval(2)
        .emigrants(2)
        .seed(seed)
        .build()
}

/// Single-driver submit options: one driver makes the NDJSON event
/// order deterministic, which is what lets the gate require
/// byte-identical telemetry files.
fn submit_options(ndjson: &Path) -> SubmitOptions {
    SubmitOptions {
        drivers: 1,
        pickup: Pickup::Fifo,
        ndjson: Some(ndjson.to_string_lossy().into_owned()),
        flight_recorder: None,
        sample_interval: Some(Duration::from_millis(20)),
    }
}

/// The bare reference run: no server anywhere near it.
fn baseline_run(scale: Scale, seed: u64, ndjson: &Path) -> Result<(Vec<u64>, f64), RunError> {
    let mut manager = RunManager::new();
    let start = Instant::now();
    let id = manager.submit(bench_config(scale, seed), submit_options(ndjson))?;
    let outcome = manager.join(id).expect("submitted run is known")?;
    let wall = start.elapsed().as_secs_f64();
    Ok((
        outcome
            .islands
            .iter()
            .map(|island| island.population_fingerprint)
            .collect(),
        wall,
    ))
}

struct ServedRun {
    fingerprints: Vec<u64>,
    wall_seconds: f64,
    scrape_ms: Vec<f64>,
    healthz_ok: bool,
    runs_listing_ok: bool,
    run_status_ok: bool,
    events_ok: bool,
    scraped_metrics: String,
}

fn scrape_metrics(addr: SocketAddr, latencies: &mut Vec<f64>) -> Result<String, RunError> {
    let start = Instant::now();
    let response =
        http_get(addr, "/metrics", CLIENT_TIMEOUT).map_err(|e| service_error("GET /metrics", e))?;
    latencies.push(start.elapsed().as_secs_f64() * 1e3);
    if response.status != 200 {
        return Err(RunError::Service(format!(
            "GET /metrics returned status {}",
            response.status
        )));
    }
    Ok(response.body)
}

/// The same run with the observability plane attached and exercised
/// mid-flight.
fn served_run(scale: Scale, seed: u64, ndjson: &Path) -> Result<ServedRun, RunError> {
    let registry = SharedRegistry::new();
    let manager = Arc::new(Mutex::new(RunManager::with_registry(registry)));
    let mut server: Server = serve(Arc::clone(&manager), ServeOptions::default())
        .map_err(|e| service_error("server bind", e))?;
    let addr = server.local_addr();

    let start = Instant::now();
    let id = {
        let mut manager = manager.lock().expect("manager lock");
        manager.submit(bench_config(scale, seed), submit_options(ndjson))?
    };
    let events_path = format!("/runs/{id}/events?limit=5");
    let run_path = format!("/runs/{id}");

    // Exercise every endpoint while the run is (likely) in flight —
    // the point of the gate is concurrent scraping, and each check
    // stays valid after completion too.
    let mut scrape_ms = Vec::new();
    let healthz =
        http_get(addr, "/healthz", CLIENT_TIMEOUT).map_err(|e| service_error("GET /healthz", e))?;
    let healthz_ok = healthz.status == 200
        && serde_json::from_str::<Health>(&healthz.body)
            .map(|h| h.status == "ok" && h.runs.len() == 1 && h.runs[0].id == id.to_string())
            .unwrap_or(false);
    let listing =
        http_get(addr, "/runs", CLIENT_TIMEOUT).map_err(|e| service_error("GET /runs", e))?;
    let runs_listing_ok = listing.status == 200
        && serde_json::from_str::<Vec<RunSnapshot>>(&listing.body)
            .map(|runs| runs.len() == 1 && runs[0].id == id.to_string())
            .unwrap_or(false);
    let status = http_get(addr, &run_path, CLIENT_TIMEOUT)
        .map_err(|e| service_error("GET /runs/{id}", e))?;
    let run_status_ok = status.status == 200
        && serde_json::from_str::<RunSnapshot>(&status.body)
            .map(|snapshot| snapshot.id == id.to_string() && snapshot.islands.len() == 2)
            .unwrap_or(false);
    let events = tail_events(addr, &events_path, 5, CLIENT_TIMEOUT)
        .map_err(|e| service_error("GET /runs/{id}/events", e))?;
    let events_ok = !events.is_empty()
        && events
            .iter()
            .all(|line| serde_json::from_str::<serde_json::Value>(line).is_ok());

    // Scrape in a loop until the run ends (every quick run gets at
    // least one mid-run or immediately-after scrape).
    loop {
        scrape_metrics(addr, &mut scrape_ms)?;
        let status = manager.lock().expect("manager lock").status(id);
        if !matches!(status, Some(RunStatus::Running)) {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let outcome = manager
        .lock()
        .expect("manager lock")
        .join(id)
        .expect("submitted run is known")?;
    let wall_seconds = start.elapsed().as_secs_f64();
    // One final scrape after completion so the dump carries the
    // end-of-run totals; this is the body CI validates.
    let scraped_metrics = scrape_metrics(addr, &mut scrape_ms)?;
    server.shutdown();
    Ok(ServedRun {
        fingerprints: outcome
            .islands
            .iter()
            .map(|island| island.population_fingerprint)
            .collect(),
        wall_seconds,
        scrape_ms,
        healthz_ok,
        runs_listing_ok,
        run_status_ok,
        events_ok,
        scraped_metrics,
    })
}

fn bench_dir(seed: u64) -> PathBuf {
    std::env::temp_dir().join(format!("e3-serve-bench-{}-{seed}", std::process::id()))
}

/// Runs the parity gate and latency measurement.
///
/// # Errors
///
/// [`RunError`] if either run fails or an endpoint cannot be reached
/// (endpoint failures surface as [`RunError::Service`]).
pub fn run(scale: Scale, seed: u64) -> Result<ServeBenchOutput, RunError> {
    let dir = bench_dir(seed);
    std::fs::create_dir_all(&dir).map_err(|e| service_error("bench dir", e))?;
    let baseline_path = dir.join("baseline.ndjson");
    let served_path = dir.join("served.ndjson");

    let (baseline_fingerprints, baseline_wall_seconds) = baseline_run(scale, seed, &baseline_path)?;
    let served = served_run(scale, seed, &served_path)?;

    let baseline_bytes =
        std::fs::read(&baseline_path).map_err(|e| service_error("baseline ndjson", e))?;
    let served_bytes =
        std::fs::read(&served_path).map_err(|e| service_error("served ndjson", e))?;
    let ndjson_identical = baseline_bytes == served_bytes;
    let fingerprints_identical = baseline_fingerprints == served.fingerprints;
    let metrics_ok = [
        "e3_island_generation{",
        "e3_island_best_fitness{",
        "e3_run_up{",
    ]
    .iter()
    .all(|series| served.scraped_metrics.contains(series));

    let _ = std::fs::remove_dir_all(&dir);

    let scrapes = served.scrape_ms.len();
    let scrape_mean_ms = served.scrape_ms.iter().sum::<f64>() / scrapes.max(1) as f64;
    let scrape_max_ms = served.scrape_ms.iter().copied().fold(0.0, f64::max);
    let result = ServeBenchResult {
        env: EnvId::CartPole,
        islands: 2,
        scrapes,
        scrape_mean_ms,
        scrape_max_ms,
        healthz_ok: served.healthz_ok,
        runs_listing_ok: served.runs_listing_ok,
        run_status_ok: served.run_status_ok,
        events_ok: served.events_ok,
        metrics_ok,
        fingerprints_identical,
        ndjson_identical,
        baseline_wall_seconds,
        served_wall_seconds: served.wall_seconds,
        parity_ok: served.healthz_ok
            && served.runs_listing_ok
            && served.run_status_ok
            && served.events_ok
            && metrics_ok
            && fingerprints_identical
            && ndjson_identical,
    };
    Ok(ServeBenchOutput {
        result,
        scraped_metrics: served.scraped_metrics,
    })
}

impl fmt::Display for ServeBenchResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Observability plane on {} ({} islands), scraped mid-run:",
            self.env, self.islands
        )?;
        writeln!(
            f,
            "scrapes: {}  mean {:.3} ms  max {:.3} ms",
            self.scrapes, self.scrape_mean_ms, self.scrape_max_ms
        )?;
        writeln!(
            f,
            "wall: baseline {:.3} s  served {:.3} s",
            self.baseline_wall_seconds, self.served_wall_seconds
        )?;
        let verdict = |ok: bool| if ok { "OK" } else { "FAILED" };
        writeln!(f, "healthz: {}", verdict(self.healthz_ok))?;
        writeln!(f, "runs listing: {}", verdict(self.runs_listing_ok))?;
        writeln!(f, "run status: {}", verdict(self.run_status_ok))?;
        writeln!(f, "event stream: {}", verdict(self.events_ok))?;
        writeln!(f, "live metric series: {}", verdict(self.metrics_ok))?;
        writeln!(
            f,
            "population parity (served vs bare): {}",
            verdict(self.fingerprints_identical)
        )?;
        writeln!(
            f,
            "ndjson parity (served vs bare): {}",
            verdict(self.ndjson_identical)
        )?;
        writeln!(f, "parity: {}", verdict(self.parity_ok))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_bench_passes_every_gate() {
        let output = run(Scale::Quick, 42).expect("bench runs");
        let result = &output.result;
        assert!(result.healthz_ok, "healthz");
        assert!(result.runs_listing_ok, "runs listing");
        assert!(result.run_status_ok, "run status");
        assert!(result.events_ok, "event stream");
        assert!(result.metrics_ok, "live metric series");
        assert!(result.fingerprints_identical, "population parity");
        assert!(result.ndjson_identical, "ndjson parity");
        assert!(result.parity_ok);
        assert!(result.scrapes >= 1);
        assert!(output.scraped_metrics.contains("# TYPE"));
    }
}
