//! End-to-end observability round trip: submit a real run through the
//! manager, hit every endpoint over real TCP, and shut down cleanly.

use e3_envs::EnvId;
use e3_islands::{IslandsConfig, Pickup, RunManager, RunSnapshot, SubmitOptions};
use e3_platform::{BackendKind, E3Config};
use e3_serve::{http_get, http_request, serve, tail_events, Health, ServeOptions};
use e3_telemetry::SharedRegistry;
use std::sync::{Arc, Mutex};
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(10);

fn tiny_config(seed: u64) -> IslandsConfig {
    let base = E3Config::builder(EnvId::CartPole)
        .population_size(12)
        .max_generations(3)
        .target_fitness(f64::INFINITY)
        .threads(2)
        .build();
    IslandsConfig::builder(base)
        .backend(BackendKind::Cpu)
        .islands(2)
        .migration_interval(2)
        .emigrants(1)
        .seed(seed)
        .build()
}

fn submit_options() -> SubmitOptions {
    SubmitOptions {
        drivers: 1,
        pickup: Pickup::Fifo,
        ndjson: None,
        flight_recorder: None,
        sample_interval: Some(Duration::from_millis(10)),
    }
}

#[test]
fn every_endpoint_round_trips_over_tcp() {
    let manager = Arc::new(Mutex::new(RunManager::with_registry(SharedRegistry::new())));
    let mut server = serve(Arc::clone(&manager), ServeOptions::default()).expect("bind");
    let addr = server.local_addr();

    let index = http_get(addr, "/", TIMEOUT).expect("GET /");
    assert_eq!(index.status, 200);
    assert!(index.body.contains("/metrics"));

    // Before any run: healthy daemon, empty listings, empty registry.
    let health = http_get(addr, "/healthz", TIMEOUT).expect("GET /healthz");
    assert_eq!(health.status, 200);
    let health: Health = serde_json::from_str(&health.body).expect("health JSON");
    assert_eq!(health.status, "ok");
    assert!(health.runs.is_empty());
    assert_eq!(
        http_get(addr, "/runs", TIMEOUT).expect("GET /runs").body,
        "[]"
    );
    assert_eq!(
        http_get(addr, "/runs/run-0099", TIMEOUT)
            .expect("unknown run")
            .status,
        404
    );
    assert_eq!(
        http_get(addr, "/runs/run-0099/events", TIMEOUT)
            .expect("unknown stream")
            .status,
        404
    );

    let id = manager
        .lock()
        .expect("manager lock")
        .submit(tiny_config(7), submit_options())
        .expect("submit");

    // The stream replays the flight recorder, so tailing is race-free
    // even if the run already finished.
    let events =
        tail_events(addr, &format!("/runs/{id}/events?limit=3"), 3, TIMEOUT).expect("tail events");
    assert!(!events.is_empty());
    for line in &events {
        let record: serde_json::Value = serde_json::from_str(line).expect("NDJSON record");
        assert!(matches!(record, serde_json::Value::Object(_)));
    }

    manager
        .lock()
        .expect("manager lock")
        .join(id)
        .expect("known run")
        .expect("run succeeds");

    let health: Health =
        serde_json::from_str(&http_get(addr, "/healthz", TIMEOUT).expect("healthz").body)
            .expect("health JSON");
    assert_eq!(health.runs.len(), 1);
    assert_eq!(health.runs[0].status, "finished");

    let listing: Vec<RunSnapshot> =
        serde_json::from_str(&http_get(addr, "/runs", TIMEOUT).expect("runs").body)
            .expect("runs JSON");
    assert_eq!(listing.len(), 1);
    assert_eq!(listing[0].status, "finished");

    let snapshot: RunSnapshot = serde_json::from_str(
        &http_get(addr, &format!("/runs/{id}"), TIMEOUT)
            .expect("run snapshot")
            .body,
    )
    .expect("snapshot JSON");
    assert_eq!(snapshot.id, id.to_string());
    assert_eq!(snapshot.islands.len(), 2);
    assert!(snapshot.islands.iter().all(|row| row.generation == 3));

    let metrics = http_get(addr, "/metrics", TIMEOUT).expect("metrics");
    assert_eq!(metrics.status, 200);
    assert!(metrics.body.contains("# TYPE"));
    assert!(metrics.body.contains(&format!(
        "e3_island_generation{{run=\"{id}\",island=\"0\"}}"
    )));

    server.shutdown();
    // After shutdown the listener is gone: new connections fail.
    assert!(http_get(addr, "/metrics", Duration::from_millis(500)).is_err());
}

#[test]
fn stop_endpoints_round_trip_over_tcp() {
    let manager = Arc::new(Mutex::new(RunManager::with_registry(SharedRegistry::new())));
    let mut server = serve(Arc::clone(&manager), ServeOptions::default()).expect("bind");
    let addr = server.local_addr();

    // Unknown / malformed ids: 404 on both routes.
    assert_eq!(
        http_request(addr, "DELETE", "/runs/run-0099", TIMEOUT)
            .expect("DELETE unknown")
            .status,
        404
    );
    assert_eq!(
        http_request(addr, "POST", "/runs/nonsense/stop", TIMEOUT)
            .expect("POST malformed")
            .status,
        404
    );
    // Methods that match no route: 405.
    assert_eq!(
        http_request(addr, "PUT", "/runs/run-0001", TIMEOUT)
            .expect("PUT")
            .status,
        405
    );
    assert_eq!(
        http_request(addr, "POST", "/metrics", TIMEOUT)
            .expect("POST metrics")
            .status,
        405
    );

    let id = manager
        .lock()
        .expect("manager lock")
        .submit(tiny_config(11), submit_options())
        .expect("submit");

    // DELETE /runs/{id} stops the run and returns its final snapshot.
    let stopped = http_request(addr, "DELETE", &format!("/runs/{id}"), TIMEOUT).expect("DELETE");
    assert_eq!(stopped.status, 200);
    let snapshot: RunSnapshot = serde_json::from_str(&stopped.body).expect("snapshot JSON");
    assert_eq!(snapshot.id, id.to_string());
    assert!(
        snapshot.status == "finished" || snapshot.status == "stopped",
        "run must have wound down, got {:?}",
        snapshot.status
    );

    // The POST alias replays the cached outcome idempotently.
    let again =
        http_request(addr, "POST", &format!("/runs/{id}/stop"), TIMEOUT).expect("POST stop");
    assert_eq!(again.status, 200);
    let replay: RunSnapshot = serde_json::from_str(&again.body).expect("snapshot JSON");
    assert_eq!(replay.id, snapshot.id);
    assert_eq!(replay.status, snapshot.status);

    server.shutdown();
}
