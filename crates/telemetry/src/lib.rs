//! Telemetry for the E3 evolve/evaluate loop.
//!
//! The platform and the figure drivers in `e3-bench` report what a run
//! did through typed records ([`EvalRecord`] per population
//! evaluation, [`GenerationRecord`] per generation, [`RunSummary`] per
//! run) pushed into a pluggable [`Collector`]. Three collectors ship
//! with the crate:
//!
//! * [`NullCollector`] — discards everything; the default when a
//!   caller does not care about telemetry. Instrumented code paths
//!   must behave identically under it (see the property tests in
//!   `e3-platform`).
//! * [`MemoryCollector`] — buffers events in memory for inspection;
//!   what the figure drivers use to assemble plots.
//! * [`NdjsonWriter`] — streams one JSON object per line to any
//!   [`std::io::Write`] sink; what `repro --telemetry <path>` and
//!   `sweep --telemetry <path>` use.
//!
//! Every collector method is fallible: a sink that cannot accept a
//! record reports [`TelemetryError`] instead of panicking, and the
//! platform surfaces that as `RunError::Telemetry`. This crate
//! deliberately depends only on `serde`/`serde_json`; hardware- and
//! platform-specific types are mirrored here as plain data
//! ([`HwCounters`], [`FunctionSplit`]) so that `e3-inax` and
//! `e3-platform` can both depend on it without a cycle.

pub mod metrics;
pub mod span;

pub use metrics::{
    escape_label_value, labeled, Histogram, MeteredCollector, MetricsRegistry, SharedRegistry,
};
pub use span::{SpanArg, SpanGuard, SpanRecord, SpanTimer, Tracer};

use serde::{Deserialize, Serialize};
use std::fmt;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

/// Error produced when a telemetry sink rejects a record.
#[derive(Debug)]
pub enum TelemetryError {
    /// The underlying writer failed.
    Io(std::io::Error),
    /// A record could not be serialized.
    Serialize(String),
}

impl fmt::Display for TelemetryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TelemetryError::Io(err) => write!(f, "telemetry sink I/O error: {err}"),
            TelemetryError::Serialize(msg) => {
                write!(f, "telemetry record serialization error: {msg}")
            }
        }
    }
}

impl std::error::Error for TelemetryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TelemetryError::Io(err) => Some(err),
            TelemetryError::Serialize(_) => None,
        }
    }
}

impl From<std::io::Error> for TelemetryError {
    fn from(err: std::io::Error) -> Self {
        TelemetryError::Io(err)
    }
}

/// Per-function share of modeled run time, mirroring the platform's
/// `FunctionProfile` (Fig. 1(b) categories) as plain seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct FunctionSplit {
    /// Seconds spent in network inference (`evaluate`).
    pub evaluate: f64,
    /// Seconds spent stepping environments.
    pub env: f64,
    /// Seconds spent instantiating phenotypes (`createnet`).
    pub createnet: f64,
    /// Seconds spent in mutation.
    pub mutate: f64,
    /// Seconds spent in crossover.
    pub crossover: f64,
    /// Seconds spent in speciation.
    pub speciate: f64,
}

impl FunctionSplit {
    /// Total modeled seconds across all functions.
    pub fn total(&self) -> f64 {
        self.evaluate + self.env + self.createnet + self.mutate + self.crossover + self.speciate
    }
}

/// Accelerator cycle accounting mirrored from `e3-inax`'s
/// `EpisodeRunReport` (Fig. 9(a) categories) as plain counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct HwCounters {
    /// Total accelerator wall cycles (set-up + compute + DMA).
    pub total_cycles: u64,
    /// Cycles spent streaming weights/topology onto PUs.
    pub setup_cycles: u64,
    /// Cycles PEs spent doing useful MACs.
    pub pe_active_cycles: u64,
    /// Cycles spent in evaluate-phase control overhead.
    pub evaluate_control_cycles: u64,
    /// Cycles spent on DMA transfers.
    pub dma_cycles: u64,
    /// PU-scope utilization rate (paper Eq. 1), in `[0, 1]`.
    pub pu_utilization: f64,
    /// PE-scope utilization rate, in `[0, 1]`.
    pub pe_utilization: f64,
    /// Inference waves executed.
    pub steps: u64,
}

/// One population evaluation on a backend (one `evaluate` call per
/// generation).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EvalRecord {
    /// Zero-based generation index.
    pub generation: usize,
    /// Backend name (`"E3-CPU"`, `"E3-GPU"`, `"E3-INAX"`).
    pub backend: String,
    /// Environment name (e.g. `"cartpole"`).
    pub env: String,
    /// Number of genomes evaluated.
    pub population: usize,
    /// Modeled seconds of network inference.
    pub eval_seconds: f64,
    /// Modeled seconds of environment stepping.
    pub env_seconds: f64,
    /// Environment steps summed over the population.
    pub total_steps: u64,
    /// Best fitness in the evaluated population.
    pub best_fitness: f64,
    /// Mean fitness over the evaluated population.
    pub mean_fitness: f64,
    /// Accelerator counters when the backend is E3-INAX.
    pub hw: Option<HwCounters>,
}

/// Host-side execution counters for one population evaluation,
/// mirrored from `e3-exec`'s `ExecStats` as plain data (the host
/// analogue of the INAX `U(r)` utilization counters). Emitted only
/// when the platform runs with a parallel executor installed.
///
/// All fields describe the (nondeterministic) execution schedule —
/// wall times and steal counts vary run to run — and never the
/// results, which are bit-identical across thread counts.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ExecRecord {
    /// Zero-based generation index.
    pub generation: usize,
    /// Backend name.
    pub backend: String,
    /// Number of workers (virtual PUs).
    pub workers: usize,
    /// Number of shards the population was split into.
    pub shards: usize,
    /// Wall-clock seconds per shard, in shard order.
    pub shard_seconds: Vec<f64>,
    /// Shards executed by a worker other than their home worker.
    pub steal_count: u64,
    /// Decode-cache hits across all workers.
    pub cache_hits: u64,
    /// Decode-cache misses across all workers.
    pub cache_misses: u64,
    /// Compiled plans resident across all workers' decode caches at
    /// the end of the call (a gauge).
    #[serde(default)]
    pub cache_entries: u64,
    /// Decode-cache entries evicted by epoch turnover during the call.
    #[serde(default)]
    pub cache_evictions: u64,
    /// Fraction of decode lookups served from cache, in `[0, 1]`.
    pub cache_hit_rate: f64,
    /// Mean fraction of the wall-clock each worker spent busy,
    /// in `[0, 1]`.
    pub worker_utilization: f64,
    /// Shards initially enqueued on each worker's home queue
    /// (before stealing), in worker order.
    pub queue_depths: Vec<usize>,
    /// Wall-clock seconds for the whole evaluation call.
    pub wall_seconds: f64,
}

/// Tiered-execution (JIT) counters for one population evaluation,
/// mirrored from `e3-exec`'s `ExecStats`. Emitted **only** when at
/// least one counter is nonzero — disabled or unsupported-target runs
/// produce no `Jit` events, so their NDJSON streams stay byte-identical
/// to runs that predate the tier.
///
/// Like [`ExecRecord`], every field describes the execution schedule
/// (what got compiled, when, how fast), never the results: the native
/// tier is bit-identical to the interpreter by construction.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct JitRecord {
    /// Zero-based generation index.
    pub generation: usize,
    /// Backend name.
    pub backend: String,
    /// Plans promoted to native code during the call.
    pub compiled: u64,
    /// Machine-code bytes emitted during the call.
    pub bytes: u64,
    /// Wall-clock seconds spent compiling during the call.
    pub compile_seconds: f64,
    /// Compilations that failed and fell back to the interpreter
    /// (never retried for the same cache entry).
    pub fallbacks: u64,
    /// Activations served by the native tier during the call.
    pub activations: u64,
    /// Natively compiled plans resident across all workers' caches at
    /// the end of the call (a gauge).
    pub resident: u64,
}

/// Cycle accounting for one processing unit over a whole run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PuCycleRow {
    /// PU index within the cluster.
    pub pu: usize,
    /// Cycles the PU spent computing its own inference waves.
    pub busy_cycles: u64,
    /// Cycles the PU sat idle (no resident individual, or waiting on
    /// slower PUs at a wave barrier).
    pub idle_cycles: u64,
    /// Cycles the PU was blocked on shared resources (weight decode
    /// for other PUs, DMA transfers).
    pub stall_cycles: u64,
}

impl PuCycleRow {
    /// Total accounted cycles (`busy + idle + stall`).
    pub fn total_cycles(&self) -> u64 {
        self.busy_cycles + self.idle_cycles + self.stall_cycles
    }
}

/// Cycle accounting for one processing element lane (aggregated over
/// every PU, since all PUs share the PE-array shape).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PeCycleRow {
    /// PE lane index within a PU.
    pub pe: usize,
    /// Cycles this lane spent on MACs/activations.
    pub busy_cycles: u64,
    /// Cycles this lane idled while its PU was busy (short waves,
    /// level syncs).
    pub idle_cycles: u64,
}

/// Cycle-level utilization breakdown for a whole run on the INAX
/// accelerator: where every cycle of every PU went, per-PE-lane
/// activity, buffer high-water marks, and DMA traffic. Emitted once
/// per run, just before [`RunSummary`]. The per-PU rows reconcile with
/// the aggregate counters: `busy + idle + stall` of each PU equals
/// [`UtilizationReport::total_cycles`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct UtilizationReport {
    /// Backend name (currently always `"E3-INAX"`).
    pub backend: String,
    /// Environment name.
    pub env: String,
    /// Number of PUs in the cluster.
    pub num_pu: usize,
    /// Number of PE lanes per PU.
    pub num_pe: usize,
    /// Per-PU busy/idle/stall cycles, indexed by PU.
    pub per_pu: Vec<PuCycleRow>,
    /// Per-PE-lane busy/idle cycles, aggregated across PUs.
    pub per_pe: Vec<PeCycleRow>,
    /// Largest weight-stream footprint loaded onto any PU, in bytes.
    pub weight_buffer_hwm_bytes: u64,
    /// Largest value-buffer occupancy on any PU, in slots.
    pub value_buffer_hwm_slots: u64,
    /// Total bytes moved by DMA (weights in, observations in, actions
    /// out).
    pub dma_bytes: u64,
    /// Total accelerator wall cycles over the run.
    pub total_cycles: u64,
}

impl UtilizationReport {
    /// A human-readable per-PU / per-PE utilization table (the
    /// end-of-run dump `repro run` prints for INAX runs).
    pub fn summary_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "INAX utilization — {} on {} ({} PU × {} PE, {} wall cycles)",
            self.backend, self.env, self.num_pu, self.num_pe, self.total_cycles
        );
        let _ = writeln!(
            out,
            "{:>4}  {:>12}  {:>12}  {:>12}  {:>6}",
            "PU", "busy", "idle", "stall", "busy%"
        );
        for row in &self.per_pu {
            let total = row.total_cycles().max(1) as f64;
            let _ = writeln!(
                out,
                "{:>4}  {:>12}  {:>12}  {:>12}  {:>5.1}%",
                row.pu,
                row.busy_cycles,
                row.idle_cycles,
                row.stall_cycles,
                100.0 * row.busy_cycles as f64 / total
            );
        }
        let _ = writeln!(
            out,
            "{:>4}  {:>12}  {:>12}  {:>6}",
            "PE", "busy", "idle", "busy%"
        );
        for row in &self.per_pe {
            let total = (row.busy_cycles + row.idle_cycles).max(1) as f64;
            let _ = writeln!(
                out,
                "{:>4}  {:>12}  {:>12}  {:>5.1}%",
                row.pe,
                row.busy_cycles,
                row.idle_cycles,
                100.0 * row.busy_cycles as f64 / total
            );
        }
        let _ = writeln!(
            out,
            "weight buffer HWM {} B, value buffer HWM {} slots, DMA {} B",
            self.weight_buffer_hwm_bytes, self.value_buffer_hwm_slots, self.dma_bytes
        );
        out
    }
}

/// One completed generation of the evolve/evaluate loop.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct GenerationRecord {
    /// Zero-based generation index.
    pub generation: usize,
    /// Backend name.
    pub backend: String,
    /// Environment name.
    pub env: String,
    /// Best fitness after this generation.
    pub best_fitness: f64,
    /// Mean fitness over the population.
    pub mean_fitness: f64,
    /// Number of species after speciation.
    pub species: usize,
    /// Cumulative modeled seconds at the end of this generation.
    pub modeled_seconds: f64,
    /// Cumulative per-function time split.
    pub split: FunctionSplit,
}

/// One snapshot written by the crash-safe run store (`e3-store`).
/// Emitted right after the snapshot file is durably on disk.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CheckpointRecord {
    /// Generation the snapshot captured.
    pub generation: usize,
    /// Backend name.
    pub backend: String,
    /// Environment name.
    pub env: String,
    /// Snapshot file path.
    pub path: String,
    /// Snapshot file size in bytes.
    pub bytes: u64,
    /// Best fitness at capture time, when finite.
    pub best_fitness: Option<f64>,
}

/// A run resumed from a store snapshot. Emitted once, before any
/// event of the resumed portion, so an NDJSON stream records where
/// the continuation picked up.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ResumeRecord {
    /// Generation the run resumed from.
    pub generation: usize,
    /// Backend name.
    pub backend: String,
    /// Environment name.
    pub env: String,
    /// Snapshot file the state was recovered from.
    pub path: String,
    /// Corrupt or torn snapshots skipped before this one validated.
    pub skipped_corrupt: usize,
}

/// Progress of one island inside an island-evolution run (`e3-islands`).
/// Emitted once per island generation, wrapping the per-island
/// [`GenerationRecord`] stream with the island's identity so many
/// islands can share one NDJSON sink.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct IslandRecord {
    /// Island index within the archipelago (zero-based).
    pub island: usize,
    /// Total islands in the run.
    pub islands: usize,
    /// Zero-based generation index the island just completed.
    pub generation: usize,
    /// Backend name.
    pub backend: String,
    /// Environment name.
    pub env: String,
    /// Best fitness of this island's latest evaluated generation.
    pub best_fitness: f64,
    /// Best fitness this island has ever seen.
    pub best_ever: f64,
    /// Number of species on this island after speciation.
    pub species: usize,
    /// Whether the island reached its fitness target and retired.
    pub retired: bool,
}

/// One migration event: emigrants from a source island merged into a
/// destination island at a generation-indexed exchange boundary.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MigrationRecord {
    /// Destination island (the one that received immigrants).
    pub island: usize,
    /// Generation boundary the exchange is indexed by.
    pub generation: usize,
    /// Source islands that contributed emigrants, ascending.
    pub sources: Vec<usize>,
    /// Number of immigrant genomes merged in.
    pub immigrants: usize,
    /// Number of this island's own genomes published as emigrants at
    /// the same boundary.
    pub emigrants: usize,
    /// Best fitness among the immigrants, when any arrived.
    pub best_immigrant_fitness: Option<f64>,
}

/// Train-versus-held-out fitness of the incumbent best genome under
/// scenario distributions (`e3-platform`'s generalization harness).
/// Emitted once per holdout pass, after the generation's [`EvalRecord`]
/// and before its [`GenerationRecord`], when the run is configured
/// with a held-out [`ScenarioDistribution`] — never for vanilla
/// fixed-env runs.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct GeneralizationRecord {
    /// Zero-based generation index the pass evaluated.
    pub generation: usize,
    /// Backend name.
    pub backend: String,
    /// Environment name.
    pub env: String,
    /// The best genome's (aggregated) training fitness this generation.
    pub train_fitness: f64,
    /// Mean fitness of the same genome over the held-out scenarios.
    pub holdout_fitness: f64,
    /// Number of held-out scenarios evaluated.
    pub holdout_scenarios: usize,
    /// Worst per-scenario fitness in the held-out pass.
    pub holdout_min: f64,
    /// Best per-scenario fitness in the held-out pass.
    pub holdout_max: f64,
    /// Population standard deviation of the per-scenario fitnesses.
    pub holdout_std: f64,
    /// Generalization gap, `train_fitness - holdout_fitness` (positive
    /// means the genome overfits the training distribution).
    pub gap: f64,
}

/// Whole-run summary emitted once when a run finishes.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// Backend name.
    pub backend: String,
    /// Environment name.
    pub env: String,
    /// Generations executed.
    pub generations: usize,
    /// Whether the target fitness was reached.
    pub solved: bool,
    /// Best fitness seen over the run.
    pub best_fitness: f64,
    /// Total modeled seconds.
    pub modeled_seconds: f64,
    /// Run-time speedup relative to the E3-CPU baseline, when known.
    pub speedup_vs_cpu: Option<f64>,
    /// Modeled energy in joules (platform power model), when known.
    pub energy_joules: Option<f64>,
    /// Cumulative per-function time split.
    pub split: FunctionSplit,
}

/// The events a [`Collector`] receives.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TelemetryEvent {
    /// A population evaluation finished.
    Eval(EvalRecord),
    /// Host-side executor counters for a population evaluation.
    Exec(ExecRecord),
    /// Tiered-execution (JIT) counters for a population evaluation.
    /// Only emitted when the tier actually did something.
    Jit(JitRecord),
    /// A generation finished.
    Generation(GenerationRecord),
    /// Cycle-level accelerator utilization for a whole run.
    Utilization(UtilizationReport),
    /// A snapshot was durably written by the run store.
    Checkpoint(CheckpointRecord),
    /// The run resumed from a store snapshot.
    Resume(ResumeRecord),
    /// An island completed a generation (island-evolution runs).
    Island(IslandRecord),
    /// An island received immigrants at a migration boundary.
    Migration(MigrationRecord),
    /// A held-out scenario pass measured the best genome's
    /// generalization.
    Generalization(GeneralizationRecord),
    /// A run finished.
    Summary(RunSummary),
}

/// A sink for telemetry events.
///
/// Implementations must not influence the computation they observe:
/// instrumented code treats the collector as write-only, and the
/// platform guarantees identical numerical results whichever
/// collector is installed.
pub trait Collector {
    /// Accepts one event.
    fn record(&mut self, event: &TelemetryEvent) -> Result<(), TelemetryError>;

    /// Flushes any buffered events to the underlying sink.
    fn flush(&mut self) -> Result<(), TelemetryError> {
        Ok(())
    }
}

/// Discards every event.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullCollector;

impl Collector for NullCollector {
    fn record(&mut self, _event: &TelemetryEvent) -> Result<(), TelemetryError> {
        Ok(())
    }
}

/// Buffers events in memory for later inspection.
#[derive(Debug, Clone, Default)]
pub struct MemoryCollector {
    events: Vec<TelemetryEvent>,
}

impl MemoryCollector {
    /// An empty collector.
    pub fn new() -> Self {
        MemoryCollector::default()
    }

    /// All buffered events, in arrival order.
    pub fn events(&self) -> &[TelemetryEvent] {
        &self.events
    }

    /// The buffered evaluation records.
    pub fn evals(&self) -> impl Iterator<Item = &EvalRecord> {
        self.events.iter().filter_map(|event| match event {
            TelemetryEvent::Eval(record) => Some(record),
            _ => None,
        })
    }

    /// The buffered executor records.
    pub fn execs(&self) -> impl Iterator<Item = &ExecRecord> {
        self.events.iter().filter_map(|event| match event {
            TelemetryEvent::Exec(record) => Some(record),
            _ => None,
        })
    }

    /// The buffered tiered-execution (JIT) records.
    pub fn jits(&self) -> impl Iterator<Item = &JitRecord> {
        self.events.iter().filter_map(|event| match event {
            TelemetryEvent::Jit(record) => Some(record),
            _ => None,
        })
    }

    /// The buffered generation records.
    pub fn generations(&self) -> impl Iterator<Item = &GenerationRecord> {
        self.events.iter().filter_map(|event| match event {
            TelemetryEvent::Generation(record) => Some(record),
            _ => None,
        })
    }

    /// The buffered utilization reports.
    pub fn utilizations(&self) -> impl Iterator<Item = &UtilizationReport> {
        self.events.iter().filter_map(|event| match event {
            TelemetryEvent::Utilization(record) => Some(record),
            _ => None,
        })
    }

    /// The buffered checkpoint records.
    pub fn checkpoints(&self) -> impl Iterator<Item = &CheckpointRecord> {
        self.events.iter().filter_map(|event| match event {
            TelemetryEvent::Checkpoint(record) => Some(record),
            _ => None,
        })
    }

    /// The buffered resume records.
    pub fn resumes(&self) -> impl Iterator<Item = &ResumeRecord> {
        self.events.iter().filter_map(|event| match event {
            TelemetryEvent::Resume(record) => Some(record),
            _ => None,
        })
    }

    /// The buffered island progress records.
    pub fn islands(&self) -> impl Iterator<Item = &IslandRecord> {
        self.events.iter().filter_map(|event| match event {
            TelemetryEvent::Island(record) => Some(record),
            _ => None,
        })
    }

    /// The buffered migration records.
    pub fn migrations(&self) -> impl Iterator<Item = &MigrationRecord> {
        self.events.iter().filter_map(|event| match event {
            TelemetryEvent::Migration(record) => Some(record),
            _ => None,
        })
    }

    /// The buffered generalization records.
    pub fn generalizations(&self) -> impl Iterator<Item = &GeneralizationRecord> {
        self.events.iter().filter_map(|event| match event {
            TelemetryEvent::Generalization(record) => Some(record),
            _ => None,
        })
    }

    /// The buffered run summaries.
    pub fn summaries(&self) -> impl Iterator<Item = &RunSummary> {
        self.events.iter().filter_map(|event| match event {
            TelemetryEvent::Summary(record) => Some(record),
            _ => None,
        })
    }

    /// Drops all buffered events.
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

impl Collector for MemoryCollector {
    fn record(&mut self, event: &TelemetryEvent) -> Result<(), TelemetryError> {
        self.events.push(event.clone());
        Ok(())
    }
}

/// Streams events as newline-delimited JSON to a [`Write`] sink.
///
/// Each record is flushed as soon as its line is written, so a live
/// stream (`tail -f` on an island's NDJSON file, or a pipe into
/// another process) sees every event promptly instead of whenever a
/// buffer happens to fill. The underlying writer may still buffer
/// *within* a line; the flush guarantees the line reaches the sink
/// before `record` returns.
#[derive(Debug)]
pub struct NdjsonWriter<W: Write> {
    writer: W,
}

impl NdjsonWriter<BufWriter<File>> {
    /// Creates (truncating) the file at `path` as an NDJSON sink.
    pub fn create(path: impl AsRef<Path>) -> Result<Self, TelemetryError> {
        let file = File::create(path)?;
        Ok(NdjsonWriter::new(BufWriter::new(file)))
    }
}

impl<W: Write> NdjsonWriter<W> {
    /// Wraps an arbitrary writer.
    pub fn new(writer: W) -> Self {
        NdjsonWriter { writer }
    }

    /// Consumes the collector, returning the underlying writer.
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: Write> Collector for NdjsonWriter<W> {
    fn record(&mut self, event: &TelemetryEvent) -> Result<(), TelemetryError> {
        let line = serde_json::to_string(event)
            .map_err(|err| TelemetryError::Serialize(err.to_string()))?;
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        // Line-buffered contract: the completed line is pushed to the
        // sink immediately so live followers see it without waiting
        // for the BufWriter to fill or the run to finish.
        self.writer.flush()?;
        Ok(())
    }

    fn flush(&mut self) -> Result<(), TelemetryError> {
        self.writer.flush()?;
        Ok(())
    }
}

impl<C: Collector + ?Sized> Collector for &mut C {
    fn record(&mut self, event: &TelemetryEvent) -> Result<(), TelemetryError> {
        (**self).record(event)
    }

    fn flush(&mut self) -> Result<(), TelemetryError> {
        (**self).flush()
    }
}

impl Collector for Box<dyn Collector + '_> {
    fn record(&mut self, event: &TelemetryEvent) -> Result<(), TelemetryError> {
        (**self).record(event)
    }

    fn flush(&mut self) -> Result<(), TelemetryError> {
        (**self).flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_eval() -> EvalRecord {
        EvalRecord {
            generation: 3,
            backend: "E3-INAX".to_string(),
            env: "cartpole".to_string(),
            population: 150,
            eval_seconds: 0.25,
            env_seconds: 0.5,
            total_steps: 12_000,
            best_fitness: 499.0,
            mean_fitness: 210.5,
            hw: Some(HwCounters {
                total_cycles: 1_000_000,
                setup_cycles: 100_000,
                pe_active_cycles: 700_000,
                evaluate_control_cycles: 200_000,
                dma_cycles: 50_000,
                pu_utilization: 0.8,
                pe_utilization: 0.6,
                steps: 400,
            }),
        }
    }

    #[test]
    fn memory_collector_preserves_order_and_kinds() {
        let mut collector = MemoryCollector::new();
        collector
            .record(&TelemetryEvent::Eval(sample_eval()))
            .unwrap();
        collector
            .record(&TelemetryEvent::Generation(GenerationRecord::default()))
            .unwrap();
        collector
            .record(&TelemetryEvent::Summary(RunSummary::default()))
            .unwrap();
        assert_eq!(collector.events().len(), 3);
        assert_eq!(collector.evals().count(), 1);
        assert_eq!(collector.generations().count(), 1);
        assert_eq!(collector.summaries().count(), 1);
    }

    #[test]
    fn ndjson_writer_emits_one_line_per_event() {
        let mut writer = NdjsonWriter::new(Vec::new());
        writer.record(&TelemetryEvent::Eval(sample_eval())).unwrap();
        writer
            .record(&TelemetryEvent::Summary(RunSummary::default()))
            .unwrap();
        writer.flush().unwrap();
        let bytes = writer.into_inner();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let value: serde_json::Value = serde_json::from_str(line).unwrap();
            assert!(value.get("Eval").is_some() || value.get("Summary").is_some());
        }
    }

    #[test]
    fn events_round_trip_through_json() {
        let events = vec![
            TelemetryEvent::Eval(sample_eval()),
            TelemetryEvent::Generation(GenerationRecord {
                generation: 7,
                backend: "E3-CPU".to_string(),
                env: "xor".to_string(),
                best_fitness: 3.5,
                mean_fitness: 2.0,
                species: 9,
                modeled_seconds: 42.0,
                split: FunctionSplit {
                    evaluate: 30.0,
                    env: 8.0,
                    ..Default::default()
                },
            }),
            TelemetryEvent::Summary(RunSummary {
                backend: "E3-GPU".to_string(),
                env: "mountaincar".to_string(),
                generations: 50,
                solved: true,
                best_fitness: 95.0,
                modeled_seconds: 10.0,
                speedup_vs_cpu: Some(0.5),
                energy_joules: Some(1800.0),
                split: FunctionSplit::default(),
            }),
        ];
        for event in events {
            let json = serde_json::to_string(&event).unwrap();
            let back: TelemetryEvent = serde_json::from_str(&json).unwrap();
            assert_eq!(back, event);
        }
    }

    #[test]
    fn exec_records_are_collected_and_round_trip() {
        let record = ExecRecord {
            generation: 2,
            backend: "E3-CPU".to_string(),
            workers: 4,
            shards: 10,
            shard_seconds: vec![0.01; 10],
            steal_count: 3,
            cache_hits: 120,
            cache_misses: 30,
            cache_entries: 40,
            cache_evictions: 6,
            cache_hit_rate: 0.8,
            worker_utilization: 0.9,
            queue_depths: vec![3, 3, 2, 2],
            wall_seconds: 0.04,
        };
        let json = serde_json::to_string(&TelemetryEvent::Exec(record.clone())).unwrap();
        let back: TelemetryEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(back, TelemetryEvent::Exec(record.clone()));

        let mut collector = MemoryCollector::new();
        collector.record(&TelemetryEvent::Exec(record)).unwrap();
        collector
            .record(&TelemetryEvent::Generation(GenerationRecord::default()))
            .unwrap();
        assert_eq!(collector.execs().count(), 1);
        assert_eq!(collector.execs().next().unwrap().workers, 4);
    }

    #[test]
    fn checkpoint_and_resume_records_round_trip_and_collect() {
        let checkpoint = CheckpointRecord {
            generation: 12,
            backend: "E3-INAX".to_string(),
            env: "cartpole".to_string(),
            path: "ckpt/gen-00000012.e3snap".to_string(),
            bytes: 48_213,
            best_fitness: Some(321.5),
        };
        let resume = ResumeRecord {
            generation: 12,
            backend: "E3-INAX".to_string(),
            env: "cartpole".to_string(),
            path: "ckpt/gen-00000012.e3snap".to_string(),
            skipped_corrupt: 1,
        };
        for event in [
            TelemetryEvent::Checkpoint(checkpoint.clone()),
            TelemetryEvent::Resume(resume.clone()),
        ] {
            let json = serde_json::to_string(&event).unwrap();
            let back: TelemetryEvent = serde_json::from_str(&json).unwrap();
            assert_eq!(back, event);
        }

        let mut collector = MemoryCollector::new();
        collector
            .record(&TelemetryEvent::Resume(resume.clone()))
            .unwrap();
        collector
            .record(&TelemetryEvent::Checkpoint(checkpoint.clone()))
            .unwrap();
        assert_eq!(collector.checkpoints().count(), 1);
        assert_eq!(collector.resumes().count(), 1);
        assert_eq!(collector.checkpoints().next().unwrap().bytes, 48_213);
        assert_eq!(collector.resumes().next().unwrap().skipped_corrupt, 1);
    }

    #[test]
    fn island_and_migration_records_round_trip_and_collect() {
        let island = IslandRecord {
            island: 2,
            islands: 4,
            generation: 9,
            backend: "E3-INAX".to_string(),
            env: "cartpole".to_string(),
            best_fitness: 120.0,
            best_ever: 180.0,
            species: 5,
            retired: false,
        };
        let migration = MigrationRecord {
            island: 2,
            generation: 9,
            sources: vec![1],
            immigrants: 3,
            emigrants: 3,
            best_immigrant_fitness: Some(175.5),
        };
        for event in [
            TelemetryEvent::Island(island.clone()),
            TelemetryEvent::Migration(migration.clone()),
        ] {
            let json = serde_json::to_string(&event).unwrap();
            let back: TelemetryEvent = serde_json::from_str(&json).unwrap();
            assert_eq!(back, event);
        }

        let mut collector = MemoryCollector::new();
        collector.record(&TelemetryEvent::Island(island)).unwrap();
        collector
            .record(&TelemetryEvent::Migration(migration))
            .unwrap();
        assert_eq!(collector.islands().count(), 1);
        assert_eq!(collector.migrations().count(), 1);
        assert_eq!(collector.islands().next().unwrap().island, 2);
        assert_eq!(collector.migrations().next().unwrap().sources, vec![1]);
    }

    #[test]
    fn generalization_records_round_trip_and_collect() {
        let record = GeneralizationRecord {
            generation: 6,
            backend: "E3-CPU".to_string(),
            env: "cartpole".to_string(),
            train_fitness: 480.0,
            holdout_fitness: 410.0,
            holdout_scenarios: 8,
            holdout_min: 220.0,
            holdout_max: 500.0,
            holdout_std: 85.5,
            gap: 70.0,
        };
        let event = TelemetryEvent::Generalization(record.clone());
        let json = serde_json::to_string(&event).unwrap();
        let back: TelemetryEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(back, event);

        let mut collector = MemoryCollector::new();
        collector.record(&event).unwrap();
        collector
            .record(&TelemetryEvent::Generation(GenerationRecord::default()))
            .unwrap();
        assert_eq!(collector.generalizations().count(), 1);
        let seen = collector.generalizations().next().unwrap();
        assert_eq!(seen.holdout_scenarios, 8);
        assert_eq!(seen.gap, 70.0);
    }

    /// A writer that only exposes bytes written before the last flush,
    /// modelling what an external `tail -f` observer can see.
    #[derive(Default)]
    struct FlushVisible {
        buffered: Vec<u8>,
        visible: std::rc::Rc<std::cell::RefCell<Vec<u8>>>,
    }

    impl Write for FlushVisible {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.buffered.extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            self.visible.borrow_mut().extend(self.buffered.drain(..));
            Ok(())
        }
    }

    #[test]
    fn ndjson_records_are_visible_without_an_explicit_flush() {
        let visible = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let sink = FlushVisible {
            buffered: Vec::new(),
            visible: visible.clone(),
        };
        let mut writer = NdjsonWriter::new(sink);
        writer
            .record(&TelemetryEvent::Generation(GenerationRecord::default()))
            .unwrap();
        // No writer.flush() here: the record itself must have pushed
        // the full line through to the observer.
        let seen = String::from_utf8(visible.borrow().clone()).unwrap();
        assert!(seen.ends_with('\n'), "line incomplete: {seen:?}");
        let value: serde_json::Value = serde_json::from_str(seen.trim()).unwrap();
        assert!(value.get("Generation").is_some());
    }

    #[test]
    fn null_collector_accepts_everything() {
        let mut collector = NullCollector;
        assert!(collector
            .record(&TelemetryEvent::Summary(RunSummary::default()))
            .is_ok());
        assert!(collector.flush().is_ok());
    }
}
