//! A metrics registry: counters, gauges, and log-bucketed histograms
//! with Prometheus-style text exposition and a human-readable summary
//! table.
//!
//! The registry is a plain in-process data structure — no background
//! threads, no global state. [`MetricsRegistry::observe`] defines the
//! canonical mapping from [`TelemetryEvent`]s to metrics, and
//! [`MeteredCollector`] tees any collector through that mapping, so
//! `repro --metrics <path>` gets the same numbers whatever sink the
//! run writes to.
//!
//! Metric names follow Prometheus conventions (`e3_` prefix,
//! `_total` suffix on counters) and may carry a label set inline in
//! the name, e.g. `e3_pu_busy_cycles_total{pu="3"}` — the exposition
//! dump groups `# TYPE` lines by the base name before the `{`.

use crate::{Collector, TelemetryError, TelemetryEvent};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// Escapes a label value per the Prometheus text exposition format:
/// backslash, double quote, and line feed become `\\`, `\"`, and `\n`
/// so any string — paths, error messages, env names — is safe inside
/// the `label="value"` quotes of a metric name.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Builds a metric name with an inline label set,
/// `base{key="value",...}`, escaping every value via
/// [`escape_label_value`]. With no labels the base name is returned
/// unchanged. This is the one sanctioned way to construct labeled
/// metric names — values that bypass it and carry raw `"`/`\`/newline
/// would corrupt the exposition dump.
pub fn labeled(base: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return base.to_string();
    }
    let mut out = String::with_capacity(base.len() + 16 * labels.len());
    out.push_str(base);
    out.push('{');
    for (i, (key, value)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{key}=\"{}\"", escape_label_value(value));
    }
    out.push('}');
    out
}

/// Smallest histogram bucket upper bound, as a power of two
/// (`2^-20` ≈ 1 µs when observing seconds).
const MIN_EXP: i32 = -20;
/// Largest finite bucket upper bound, as a power of two
/// (`2^40` ≈ 1.1e12 — enough for cycle counts).
const MAX_EXP: i32 = 40;
/// Finite buckets plus the `+Inf` overflow bucket.
const NUM_BUCKETS: usize = (MAX_EXP - MIN_EXP + 1) as usize + 1;

/// A log2-bucketed histogram: bucket `i` counts observations `v` with
/// `v <= 2^(MIN_EXP + i)`, plus a `+Inf` overflow bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0.0,
            max: f64::NEG_INFINITY,
        }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&mut self, value: f64) {
        let index = if !value.is_finite() {
            NUM_BUCKETS - 1
        } else if value <= 2f64.powi(MIN_EXP) {
            0
        } else {
            let exp = value.log2().ceil() as i32;
            if exp > MAX_EXP {
                NUM_BUCKETS - 1
            } else {
                (exp - MIN_EXP) as usize
            }
        };
        self.buckets[index] += 1;
        self.count += 1;
        self.sum += value;
        if value > self.max {
            self.max = value;
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean observation, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Largest observation, or 0 when empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// `(upper_bound, cumulative_count)` pairs for every non-empty
    /// prefix of buckets, ending with the `+Inf` bucket.
    fn cumulative(&self) -> Vec<(f64, u64)> {
        let mut out = Vec::new();
        let mut running = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            running += n;
            let bound = if i == NUM_BUCKETS - 1 {
                f64::INFINITY
            } else {
                2f64.powi(MIN_EXP + i as i32)
            };
            // Keep the dump compact: only bucket boundaries where the
            // cumulative count changes, plus the final +Inf bucket.
            if n > 0 || i == NUM_BUCKETS - 1 {
                out.push((bound, running));
            }
        }
        out
    }
}

/// Counters, gauges, and histograms keyed by metric name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `delta` to the counter `name` (created at 0).
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Sets the gauge `name` to `value`.
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Records `value` into the histogram `name`.
    pub fn histogram_observe(&mut self, name: &str, value: f64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .observe(value);
    }

    /// Current value of a counter (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of a gauge, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// A histogram by name, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// True when no metric has been touched.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// The canonical [`TelemetryEvent`] → metrics mapping.
    pub fn observe(&mut self, event: &TelemetryEvent) {
        self.observe_scoped(&[], event);
    }

    /// [`MetricsRegistry::observe`] with an extra label scope merged
    /// into every metric the event produces — how a multi-run daemon
    /// keeps N concurrent runs apart in one registry (e.g.
    /// `scope = [("run", "run-0003")]` turns `e3_evals_total` into
    /// `e3_evals_total{run="run-0003"}`). Scope labels come first;
    /// event-intrinsic labels (island, pu, pe) are appended after.
    pub fn observe_scoped(&mut self, scope: &[(&str, &str)], event: &TelemetryEvent) {
        // Name builders: `plain` applies only the scope, `with` appends
        // one event-intrinsic label after the scope labels.
        let plain = |base: &str| labeled(base, scope);
        let with = |base: &str, key: &'static str, value: &str| {
            let mut labels: Vec<(&str, &str)> = scope.to_vec();
            labels.push((key, value));
            labeled(base, &labels)
        };
        match event {
            TelemetryEvent::Eval(eval) => {
                self.counter_add(&plain("e3_evals_total"), 1);
                self.counter_add(&plain("e3_env_steps_total"), eval.total_steps);
                self.gauge_set(&plain("e3_best_fitness"), eval.best_fitness);
                self.gauge_set(&plain("e3_mean_fitness"), eval.mean_fitness);
                self.histogram_observe(&plain("e3_eval_seconds"), eval.eval_seconds);
                self.histogram_observe(&plain("e3_env_seconds"), eval.env_seconds);
                if let Some(hw) = &eval.hw {
                    self.counter_add(&plain("e3_inax_cycles_total"), hw.total_cycles);
                    self.counter_add(&plain("e3_inax_setup_cycles_total"), hw.setup_cycles);
                    self.counter_add(
                        &plain("e3_inax_pe_active_cycles_total"),
                        hw.pe_active_cycles,
                    );
                    self.counter_add(&plain("e3_inax_dma_cycles_total"), hw.dma_cycles);
                    self.gauge_set(&plain("e3_inax_pu_utilization"), hw.pu_utilization);
                    self.gauge_set(&plain("e3_inax_pe_utilization"), hw.pe_utilization);
                }
            }
            TelemetryEvent::Exec(exec) => {
                self.counter_add(&plain("e3_exec_steals_total"), exec.steal_count);
                self.counter_add(&plain("e3_exec_cache_hits_total"), exec.cache_hits);
                self.counter_add(&plain("e3_exec_cache_misses_total"), exec.cache_misses);
                self.counter_add(
                    &plain("e3_exec_cache_evictions_total"),
                    exec.cache_evictions,
                );
                self.gauge_set(&plain("e3_exec_workers"), exec.workers as f64);
                self.gauge_set(&plain("e3_exec_cache_entries"), exec.cache_entries as f64);
                self.gauge_set(&plain("e3_exec_cache_hit_rate"), exec.cache_hit_rate);
                self.gauge_set(
                    &plain("e3_exec_worker_utilization"),
                    exec.worker_utilization,
                );
                if let Some(&depth) = exec.queue_depths.iter().max() {
                    self.gauge_set(&plain("e3_exec_queue_depth_max"), depth as f64);
                }
                for &seconds in &exec.shard_seconds {
                    self.histogram_observe(&plain("e3_exec_shard_seconds"), seconds);
                }
                self.histogram_observe(&plain("e3_exec_wall_seconds"), exec.wall_seconds);
            }
            TelemetryEvent::Jit(jit) => {
                self.counter_add(&plain("e3_jit_plans_compiled_total"), jit.compiled);
                self.counter_add(&plain("e3_jit_bytes_emitted_total"), jit.bytes);
                self.counter_add(&plain("e3_jit_fallbacks_total"), jit.fallbacks);
                self.counter_add(&plain("e3_jit_hot_activations_total"), jit.activations);
                self.gauge_set(&plain("e3_jit_resident_plans"), jit.resident as f64);
                self.histogram_observe(&plain("e3_jit_compile_seconds"), jit.compile_seconds);
            }
            TelemetryEvent::Generation(generation) => {
                self.counter_add(&plain("e3_generations_total"), 1);
                self.gauge_set(&plain("e3_species"), generation.species as f64);
                self.gauge_set(&plain("e3_modeled_seconds"), generation.modeled_seconds);
            }
            TelemetryEvent::Checkpoint(checkpoint) => {
                self.counter_add(&plain("e3_store_snapshots_written_total"), 1);
                self.counter_add(&plain("e3_store_bytes_written_total"), checkpoint.bytes);
                self.gauge_set(
                    &plain("e3_store_latest_generation"),
                    checkpoint.generation as f64,
                );
            }
            TelemetryEvent::Resume(resume) => {
                self.counter_add(&plain("e3_store_recoveries_total"), 1);
                self.counter_add(
                    &plain("e3_store_corrupt_skipped_total"),
                    resume.skipped_corrupt as u64,
                );
            }
            TelemetryEvent::Island(island) => {
                let index = island.island.to_string();
                self.counter_add(&with("e3_island_generations_total", "island", &index), 1);
                self.gauge_set(
                    &with("e3_island_generation", "island", &index),
                    island.generation as f64,
                );
                self.gauge_set(
                    &with("e3_island_best_fitness", "island", &index),
                    island.best_ever,
                );
                self.gauge_set(
                    &with("e3_island_species", "island", &index),
                    island.species as f64,
                );
                self.gauge_set(
                    &with("e3_island_retired", "island", &index),
                    if island.retired { 1.0 } else { 0.0 },
                );
            }
            TelemetryEvent::Migration(migration) => {
                let index = migration.island.to_string();
                self.counter_add(&with("e3_migrations_total", "island", &index), 1);
                self.counter_add(
                    &with("e3_immigrants_total", "island", &index),
                    migration.immigrants as u64,
                );
            }
            TelemetryEvent::Generalization(gen) => {
                self.counter_add(&plain("e3_generalization_passes_total"), 1);
                self.gauge_set(&plain("e3_generalization_train_fitness"), gen.train_fitness);
                self.gauge_set(
                    &plain("e3_generalization_holdout_fitness"),
                    gen.holdout_fitness,
                );
                self.gauge_set(&plain("e3_generalization_gap"), gen.gap);
                self.gauge_set(&plain("e3_generalization_spread"), gen.holdout_std);
            }
            TelemetryEvent::Summary(summary) => {
                self.counter_add(&plain("e3_runs_total"), 1);
                self.gauge_set(&plain("e3_solved"), if summary.solved { 1.0 } else { 0.0 });
                if let Some(joules) = summary.energy_joules {
                    self.gauge_set(&plain("e3_energy_joules"), joules);
                }
            }
            TelemetryEvent::Utilization(report) => {
                self.counter_add(&plain("e3_inax_dma_bytes_total"), report.dma_bytes);
                self.gauge_set(
                    &plain("e3_inax_weight_buffer_hwm_bytes"),
                    report.weight_buffer_hwm_bytes as f64,
                );
                self.gauge_set(
                    &plain("e3_inax_value_buffer_hwm_slots"),
                    report.value_buffer_hwm_slots as f64,
                );
                for row in &report.per_pu {
                    let index = row.pu.to_string();
                    self.counter_add(
                        &with("e3_pu_busy_cycles_total", "pu", &index),
                        row.busy_cycles,
                    );
                    self.counter_add(
                        &with("e3_pu_idle_cycles_total", "pu", &index),
                        row.idle_cycles,
                    );
                    self.counter_add(
                        &with("e3_pu_stall_cycles_total", "pu", &index),
                        row.stall_cycles,
                    );
                }
                for row in &report.per_pe {
                    let index = row.pe.to_string();
                    self.counter_add(
                        &with("e3_pe_busy_cycles_total", "pe", &index),
                        row.busy_cycles,
                    );
                    self.counter_add(
                        &with("e3_pe_idle_cycles_total", "pe", &index),
                        row.idle_cycles,
                    );
                }
            }
        }
    }

    /// Prometheus text exposition of every metric in the registry.
    pub fn prometheus_text(&self) -> String {
        let mut out = String::new();
        let mut typed: BTreeMap<&str, &str> = BTreeMap::new();
        for name in self.counters.keys() {
            typed.entry(base_name(name)).or_insert("counter");
        }
        for name in self.gauges.keys() {
            typed.entry(base_name(name)).or_insert("gauge");
        }
        for name in self.histograms.keys() {
            typed.entry(base_name(name)).or_insert("histogram");
        }
        let mut type_written: std::collections::BTreeSet<String> = Default::default();
        let mut write_type = |out: &mut String, name: &str| {
            let base = base_name(name);
            if !type_written.contains(base) {
                let kind = typed.get(base).copied().unwrap_or("untyped");
                let _ = writeln!(out, "# TYPE {base} {kind}");
                type_written.insert(base.to_string());
            }
        };
        for (name, value) in &self.counters {
            write_type(&mut out, name);
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, value) in &self.gauges {
            write_type(&mut out, name);
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, hist) in &self.histograms {
            write_type(&mut out, name);
            for (bound, cumulative) in hist.cumulative() {
                if bound.is_infinite() {
                    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
                } else {
                    let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
                }
            }
            let _ = writeln!(out, "{name}_sum {}", hist.sum());
            let _ = writeln!(out, "{name}_count {}", hist.count());
        }
        out
    }

    /// A human-readable end-of-run table of every metric.
    pub fn summary_table(&self) -> String {
        let mut out = String::new();
        let width = self
            .counters
            .keys()
            .chain(self.gauges.keys())
            .chain(self.histograms.keys())
            .map(|name| name.len())
            .max()
            .unwrap_or(6)
            .max(6);
        if !self.counters.is_empty() {
            let _ = writeln!(out, "{:<width$}  {:>14}", "counter", "value");
            for (name, value) in &self.counters {
                let _ = writeln!(out, "{name:<width$}  {value:>14}");
            }
        }
        if !self.gauges.is_empty() {
            let _ = writeln!(out, "{:<width$}  {:>14}", "gauge", "value");
            for (name, value) in &self.gauges {
                let _ = writeln!(out, "{name:<width$}  {value:>14.6}");
            }
        }
        if !self.histograms.is_empty() {
            let _ = writeln!(
                out,
                "{:<width$}  {:>10}  {:>14}  {:>14}",
                "histogram", "count", "mean", "max"
            );
            for (name, hist) in &self.histograms {
                let _ = writeln!(
                    out,
                    "{name:<width$}  {:>10}  {:>14.6}  {:>14.6}",
                    hist.count(),
                    hist.mean(),
                    hist.max()
                );
            }
        }
        out
    }
}

/// The metric name up to (not including) any `{label}` suffix.
fn base_name(name: &str) -> &str {
    match name.find('{') {
        Some(index) => &name[..index],
        None => name,
    }
}

/// Tees every event through a [`MetricsRegistry`] before forwarding it
/// to the wrapped collector. Purely additive: the inner collector sees
/// the exact same event stream it would without the wrapper.
#[derive(Debug)]
pub struct MeteredCollector<C> {
    inner: C,
    registry: MetricsRegistry,
}

impl<C> MeteredCollector<C> {
    /// Wraps `inner`, starting from an empty registry.
    pub fn new(inner: C) -> Self {
        MeteredCollector {
            inner,
            registry: MetricsRegistry::new(),
        }
    }

    /// The accumulated metrics.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Unwraps into the inner collector and the registry.
    pub fn into_parts(self) -> (C, MetricsRegistry) {
        (self.inner, self.registry)
    }
}

impl<C: Collector> Collector for MeteredCollector<C> {
    fn record(&mut self, event: &TelemetryEvent) -> Result<(), TelemetryError> {
        self.registry.observe(event);
        self.inner.record(event)
    }

    fn flush(&mut self) -> Result<(), TelemetryError> {
        self.inner.flush()
    }
}

/// A clonable, thread-safe handle to one [`MetricsRegistry`] — the
/// live registry a daemon shares between the runs that update it and
/// the observability plane that scrapes it. Every clone points at the
/// same registry; updates are visible to all holders immediately.
///
/// Lock discipline: every method takes the lock for one short,
/// non-blocking operation (a map update or a text render), so a slow
/// scraper can never hold up a recording run for longer than one
/// exposition dump.
#[derive(Debug, Clone, Default)]
pub struct SharedRegistry {
    inner: Arc<Mutex<MetricsRegistry>>,
}

impl SharedRegistry {
    /// A handle to a fresh, empty registry.
    pub fn new() -> Self {
        SharedRegistry::default()
    }

    /// Applies the canonical event → metrics mapping
    /// ([`MetricsRegistry::observe`]) under the lock.
    pub fn observe(&self, event: &TelemetryEvent) {
        self.lock().observe(event);
    }

    /// [`MetricsRegistry::observe_scoped`] under the lock.
    pub fn observe_scoped(&self, scope: &[(&str, &str)], event: &TelemetryEvent) {
        self.lock().observe_scoped(scope, event);
    }

    /// Runs `f` with exclusive access to the registry — for direct
    /// gauge/counter updates that have no [`TelemetryEvent`] shape
    /// (e.g. sampled pool queue depths).
    pub fn with<T>(&self, f: impl FnOnce(&mut MetricsRegistry) -> T) -> T {
        f(&mut self.lock())
    }

    /// A point-in-time copy of the whole registry.
    pub fn snapshot(&self) -> MetricsRegistry {
        self.lock().clone()
    }

    /// Prometheus text exposition of the current state.
    pub fn prometheus_text(&self) -> String {
        self.lock().prometheus_text()
    }

    /// True when no metric has been touched yet.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, MetricsRegistry> {
        // A poisoned registry still holds valid metric maps (every
        // update is a single map operation), so keep serving.
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        CheckpointRecord, EvalRecord, ExecRecord, HwCounters, MemoryCollector, PeCycleRow,
        PuCycleRow, ResumeRecord, RunSummary, UtilizationReport,
    };

    #[test]
    fn histogram_buckets_observations_by_log2() {
        let mut hist = Histogram::default();
        hist.observe(0.5);
        hist.observe(0.5);
        hist.observe(3.0);
        hist.observe(1e20); // overflow bucket
        assert_eq!(hist.count(), 4);
        assert!((hist.sum() - (0.5 + 0.5 + 3.0 + 1e20)).abs() < 1e6);
        assert_eq!(hist.max(), 1e20);
        let cumulative = hist.cumulative();
        let last = cumulative.last().unwrap();
        assert!(last.0.is_infinite());
        assert_eq!(last.1, 4);
        // 0.5 lands at le=0.5, 3.0 at le=4.
        assert!(cumulative.contains(&(0.5, 2)));
        assert!(cumulative.contains(&(4.0, 3)));
    }

    #[test]
    fn prometheus_text_groups_labeled_series_under_one_type_line() {
        let mut registry = MetricsRegistry::new();
        registry.counter_add("e3_pu_busy_cycles_total{pu=\"0\"}", 10);
        registry.counter_add("e3_pu_busy_cycles_total{pu=\"1\"}", 20);
        registry.gauge_set("e3_solved", 1.0);
        registry.histogram_observe("e3_eval_seconds", 0.25);
        let text = registry.prometheus_text();
        assert_eq!(
            text.matches("# TYPE e3_pu_busy_cycles_total counter")
                .count(),
            1
        );
        assert!(text.contains("e3_pu_busy_cycles_total{pu=\"0\"} 10"));
        assert!(text.contains("e3_pu_busy_cycles_total{pu=\"1\"} 20"));
        assert!(text.contains("# TYPE e3_solved gauge"));
        assert!(text.contains("# TYPE e3_eval_seconds histogram"));
        assert!(text.contains("e3_eval_seconds_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("e3_eval_seconds_count 1"));
    }

    #[test]
    fn observe_maps_every_event_kind() {
        let mut registry = MetricsRegistry::new();
        registry.observe(&TelemetryEvent::Eval(EvalRecord {
            total_steps: 500,
            best_fitness: 9.0,
            hw: Some(HwCounters {
                total_cycles: 1000,
                ..Default::default()
            }),
            ..Default::default()
        }));
        registry.observe(&TelemetryEvent::Exec(ExecRecord {
            steal_count: 3,
            cache_hits: 7,
            cache_misses: 2,
            cache_entries: 12,
            cache_evictions: 4,
            queue_depths: vec![2, 5, 1],
            shard_seconds: vec![0.1, 0.2],
            ..Default::default()
        }));
        registry.observe(&TelemetryEvent::Jit(crate::JitRecord {
            generation: 3,
            compiled: 5,
            bytes: 9000,
            compile_seconds: 0.002,
            fallbacks: 1,
            activations: 4400,
            resident: 5,
            ..Default::default()
        }));
        registry.observe(&TelemetryEvent::Utilization(UtilizationReport {
            per_pu: vec![PuCycleRow {
                pu: 0,
                busy_cycles: 600,
                idle_cycles: 300,
                stall_cycles: 100,
            }],
            per_pe: vec![PeCycleRow {
                pe: 0,
                busy_cycles: 400,
                idle_cycles: 200,
            }],
            dma_bytes: 4096,
            ..Default::default()
        }));
        registry.observe(&TelemetryEvent::Checkpoint(CheckpointRecord {
            generation: 9,
            bytes: 2048,
            ..Default::default()
        }));
        registry.observe(&TelemetryEvent::Checkpoint(CheckpointRecord {
            generation: 10,
            bytes: 1024,
            ..Default::default()
        }));
        registry.observe(&TelemetryEvent::Resume(ResumeRecord {
            generation: 10,
            skipped_corrupt: 2,
            ..Default::default()
        }));
        registry.observe(&TelemetryEvent::Generalization(
            crate::GeneralizationRecord {
                generation: 4,
                train_fitness: 480.0,
                holdout_fitness: 420.0,
                gap: 60.0,
                holdout_std: 12.5,
                ..Default::default()
            },
        ));
        registry.observe(&TelemetryEvent::Summary(RunSummary {
            solved: true,
            ..Default::default()
        }));
        assert_eq!(registry.counter("e3_evals_total"), 1);
        assert_eq!(registry.counter("e3_env_steps_total"), 500);
        assert_eq!(registry.counter("e3_inax_cycles_total"), 1000);
        assert_eq!(registry.counter("e3_exec_steals_total"), 3);
        assert_eq!(registry.counter("e3_exec_cache_hits_total"), 7);
        assert_eq!(registry.counter("e3_exec_cache_misses_total"), 2);
        assert_eq!(registry.counter("e3_exec_cache_evictions_total"), 4);
        assert_eq!(registry.gauge("e3_exec_cache_entries"), Some(12.0));
        assert_eq!(registry.gauge("e3_exec_queue_depth_max"), Some(5.0));
        assert_eq!(
            registry.histogram("e3_exec_shard_seconds").unwrap().count(),
            2
        );
        assert_eq!(registry.counter("e3_pu_busy_cycles_total{pu=\"0\"}"), 600);
        assert_eq!(registry.counter("e3_pe_idle_cycles_total{pe=\"0\"}"), 200);
        assert_eq!(registry.counter("e3_inax_dma_bytes_total"), 4096);
        assert_eq!(registry.gauge("e3_solved"), Some(1.0));
        assert_eq!(registry.counter("e3_runs_total"), 1);
        assert_eq!(registry.counter("e3_store_snapshots_written_total"), 2);
        assert_eq!(registry.counter("e3_store_bytes_written_total"), 3072);
        assert_eq!(registry.counter("e3_store_recoveries_total"), 1);
        assert_eq!(registry.counter("e3_store_corrupt_skipped_total"), 2);
        assert_eq!(registry.gauge("e3_store_latest_generation"), Some(10.0));
        assert_eq!(registry.counter("e3_generalization_passes_total"), 1);
        assert_eq!(
            registry.gauge("e3_generalization_train_fitness"),
            Some(480.0)
        );
        assert_eq!(
            registry.gauge("e3_generalization_holdout_fitness"),
            Some(420.0)
        );
        assert_eq!(registry.gauge("e3_generalization_gap"), Some(60.0));
        assert_eq!(registry.gauge("e3_generalization_spread"), Some(12.5));
        assert_eq!(registry.counter("e3_jit_plans_compiled_total"), 5);
        assert_eq!(registry.counter("e3_jit_bytes_emitted_total"), 9000);
        assert_eq!(registry.counter("e3_jit_fallbacks_total"), 1);
        assert_eq!(registry.counter("e3_jit_hot_activations_total"), 4400);
        assert_eq!(registry.gauge("e3_jit_resident_plans"), Some(5.0));
        let compile = registry.histogram("e3_jit_compile_seconds").unwrap();
        assert_eq!(compile.count(), 1);
        assert!((compile.sum() - 0.002).abs() < 1e-12);
        let table = registry.summary_table();
        assert!(table.contains("e3_evals_total"));
        assert!(table.contains("e3_exec_shard_seconds"));
    }

    #[test]
    fn label_values_with_quotes_backslashes_and_newlines_are_escaped() {
        assert_eq!(
            escape_label_value("say \"hi\"\\path\nnext"),
            "say \\\"hi\\\"\\\\path\\nnext"
        );
        let name = labeled("e3_runs_total", &[("env", "Cart\"Pole\"\n\\v2")]);
        assert_eq!(name, "e3_runs_total{env=\"Cart\\\"Pole\\\"\\n\\\\v2\"}");
        let mut registry = MetricsRegistry::new();
        registry.counter_add(&name, 1);
        let text = registry.prometheus_text();
        // The exposition dump stays one sample per line — the raw
        // newline never leaks through — and the quotes stay balanced.
        assert!(text.contains("e3_runs_total{env=\"Cart\\\"Pole\\\"\\n\\\\v2\"} 1\n"));
        assert_eq!(text.lines().count(), 2, "TYPE line plus one sample");
    }

    #[test]
    fn labeled_with_no_labels_is_the_base_name() {
        assert_eq!(labeled("e3_evals_total", &[]), "e3_evals_total");
    }

    #[test]
    fn observe_scoped_prefixes_every_metric_with_the_scope() {
        let mut registry = MetricsRegistry::new();
        let scope = [("run", "run-0003")];
        registry.observe_scoped(&scope, &TelemetryEvent::Summary(RunSummary::default()));
        registry.observe_scoped(
            &scope,
            &TelemetryEvent::Island(crate::IslandRecord {
                island: 1,
                generation: 7,
                best_ever: 42.0,
                ..Default::default()
            }),
        );
        assert_eq!(registry.counter("e3_runs_total{run=\"run-0003\"}"), 1);
        assert_eq!(
            registry.counter("e3_island_generations_total{run=\"run-0003\",island=\"1\"}"),
            1
        );
        assert_eq!(
            registry.gauge("e3_island_generation{run=\"run-0003\",island=\"1\"}"),
            Some(7.0)
        );
        assert_eq!(
            registry.gauge("e3_island_best_fitness{run=\"run-0003\",island=\"1\"}"),
            Some(42.0)
        );
        // Unscoped names stay untouched.
        assert_eq!(registry.counter("e3_runs_total"), 0);
    }

    #[test]
    fn shared_registry_clones_point_at_one_registry() {
        let shared = SharedRegistry::new();
        assert!(shared.is_empty());
        let clone = shared.clone();
        clone.observe(&TelemetryEvent::Summary(RunSummary::default()));
        shared.with(|registry| registry.gauge_set("e3_pool_evals_in_flight", 3.0));
        let snapshot = shared.snapshot();
        assert_eq!(snapshot.counter("e3_runs_total"), 1);
        assert_eq!(snapshot.gauge("e3_pool_evals_in_flight"), Some(3.0));
        assert!(shared.prometheus_text().contains("e3_runs_total 1"));
    }

    #[test]
    fn metered_collector_forwards_the_identical_stream() {
        let mut metered = MeteredCollector::new(MemoryCollector::new());
        let event = TelemetryEvent::Summary(RunSummary::default());
        metered.record(&event).unwrap();
        metered.flush().unwrap();
        let (inner, registry) = metered.into_parts();
        assert_eq!(inner.events(), std::slice::from_ref(&event));
        assert_eq!(registry.counter("e3_runs_total"), 1);
    }
}
