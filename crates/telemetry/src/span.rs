//! Hierarchical span tracing with Chrome trace-event export.
//!
//! A [`Tracer`] records wall-clock spans — `run` → `generation` →
//! `eval` → `shard` → `individual` → `episode` — and renders them as
//! Chrome trace-event JSON (the `{"traceEvents": [...]}` format) that
//! loads directly into [Perfetto](https://ui.perfetto.dev) or
//! `chrome://tracing`.
//!
//! # Zero cost when disabled
//!
//! [`Tracer::disabled`] carries no allocation and no clock: every
//! `span`/`start` call on a disabled tracer returns an inert guard
//! without ever touching [`Instant::now`], so instrumented hot paths
//! pay a single branch. The tracer is write-only either way — results
//! must be bit-identical with tracing on or off (enforced by the
//! parity property tests in `e3-platform`).
//!
//! # Threading
//!
//! A [`Tracer`] is a cheap [`Clone`] (an `Arc` under the hood) and is
//! `Send + Sync`; exec-pool workers clone it into shard closures. Each
//! OS thread is assigned a stable small `tid` on first use so Perfetto
//! renders one track per worker. Span *end* timestamps are taken under
//! the tracer's lock, so the recorded span list is globally ordered by
//! completion time — `trace_check` relies on this monotonicity.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Next tid to hand out; tids are process-global so two tracers never
/// disagree about which track a thread belongs to.
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static THREAD_TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// The small per-thread track id used in trace output.
fn current_tid() -> u64 {
    THREAD_TID.with(|tid| *tid)
}

/// One key/value annotation attached to a span (rendered in the
/// Perfetto `args` panel).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanArg {
    /// Annotation key, e.g. `"genome_index"`.
    pub key: String,
    /// Annotation value.
    pub value: f64,
}

/// One completed span, in microseconds relative to the tracer's epoch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Span name, e.g. `"generation"`.
    pub name: String,
    /// Category, e.g. `"platform"`, `"exec"`, `"inax"`.
    pub cat: String,
    /// Start time in microseconds since the tracer was created.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Track (thread) id the span ran on.
    pub tid: u64,
    /// Optional numeric annotations.
    pub args: Vec<SpanArg>,
}

#[derive(Debug)]
struct TracerShared {
    epoch: Instant,
    spans: Mutex<Vec<SpanRecord>>,
}

/// Records hierarchical wall-clock spans; see the module docs.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    shared: Option<Arc<TracerShared>>,
}

impl Tracer {
    /// A tracer that records nothing and never reads the clock. This
    /// is the `Default`.
    pub fn disabled() -> Self {
        Tracer { shared: None }
    }

    /// A tracer that records spans from this instant on.
    pub fn enabled() -> Self {
        Tracer {
            shared: Some(Arc::new(TracerShared {
                epoch: Instant::now(),
                spans: Mutex::new(Vec::new()),
            })),
        }
    }

    /// Whether spans are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// Opens a span closed automatically when the guard drops.
    pub fn span(&self, name: &str, cat: &str) -> SpanGuard {
        SpanGuard {
            timer: self.start(name, cat),
        }
    }

    /// Opens a span closed explicitly via [`SpanTimer::finish`]. Use
    /// this where span lifetime does not nest lexically (e.g. the
    /// per-individual spans inside the INAX lock-step wave loop).
    pub fn start(&self, name: &str, cat: &str) -> SpanTimer {
        let live = self.shared.as_ref().map(|shared| LiveSpan {
            shared: Arc::clone(shared),
            start: Instant::now(),
            name: name.to_string(),
            cat: cat.to_string(),
            args: Vec::new(),
        });
        SpanTimer { live }
    }

    /// Snapshot of every span completed so far, in completion order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        match &self.shared {
            Some(shared) => shared.spans.lock().expect("tracer lock poisoned").clone(),
            None => Vec::new(),
        }
    }

    /// Number of spans completed so far.
    pub fn span_count(&self) -> usize {
        match &self.shared {
            Some(shared) => shared.spans.lock().expect("tracer lock poisoned").len(),
            None => 0,
        }
    }

    /// Renders every completed span as Chrome trace-event JSON
    /// (`{"traceEvents": [...]}`), loadable in Perfetto.
    pub fn chrome_trace_json(&self) -> String {
        let spans = self.spans();
        let mut out = String::from("{\"traceEvents\":[");
        for (i, span) in spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":{},\"cat\":{},\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}",
                json_string(&span.name),
                json_string(&span.cat),
                span.start_us,
                span.dur_us,
                span.tid,
            );
            if !span.args.is_empty() {
                out.push_str(",\"args\":{");
                for (j, arg) in span.args.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{}:{}", json_string(&arg.key), arg.value);
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Writes [`Tracer::chrome_trace_json`] to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write_chrome_trace(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.chrome_trace_json())
    }
}

/// Minimal JSON string escaping (control chars, quote, backslash).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[derive(Debug)]
struct LiveSpan {
    shared: Arc<TracerShared>,
    start: Instant,
    name: String,
    cat: String,
    args: Vec<SpanArg>,
}

impl LiveSpan {
    fn finish(self) {
        let start_us = self
            .start
            .duration_since(self.shared.epoch)
            .as_micros()
            .min(u128::from(u64::MAX)) as u64;
        let mut spans = self.shared.spans.lock().expect("tracer lock poisoned");
        // End time taken under the lock: the span list stays globally
        // ordered by completion time across threads.
        let end_us = self
            .shared
            .epoch
            .elapsed()
            .as_micros()
            .min(u128::from(u64::MAX)) as u64;
        spans.push(SpanRecord {
            name: self.name,
            cat: self.cat,
            start_us,
            dur_us: end_us.saturating_sub(start_us),
            tid: current_tid(),
            args: self.args,
        });
    }
}

/// An open span finished explicitly; inert when the tracer is
/// disabled. Dropping an unfinished timer records the span too, so a
/// panic unwind still closes it.
#[derive(Debug)]
#[must_use = "a span timer measures until finished or dropped"]
pub struct SpanTimer {
    live: Option<LiveSpan>,
}

impl SpanTimer {
    /// Attaches a numeric annotation to the span (no-op when
    /// disabled).
    pub fn arg(&mut self, key: &str, value: f64) {
        if let Some(live) = &mut self.live {
            live.args.push(SpanArg {
                key: key.to_string(),
                value,
            });
        }
    }

    /// Closes the span now.
    pub fn finish(mut self) {
        if let Some(live) = self.live.take() {
            live.finish();
        }
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        if let Some(live) = self.live.take() {
            live.finish();
        }
    }
}

/// RAII span guard returned by [`Tracer::span`]; closes on drop.
#[derive(Debug)]
#[must_use = "a span guard measures until dropped"]
pub struct SpanGuard {
    timer: SpanTimer,
}

impl SpanGuard {
    /// Attaches a numeric annotation to the span (no-op when
    /// disabled).
    pub fn arg(&mut self, key: &str, value: f64) {
        self.timer.arg(key, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let tracer = Tracer::disabled();
        assert!(!tracer.is_enabled());
        {
            let _guard = tracer.span("run", "platform");
            let timer = tracer.start("eval", "platform");
            timer.finish();
        }
        assert_eq!(tracer.span_count(), 0);
        assert_eq!(tracer.chrome_trace_json(), "{\"traceEvents\":[]}");
    }

    #[test]
    fn spans_nest_and_complete_in_leaf_first_order() {
        let tracer = Tracer::enabled();
        {
            let _run = tracer.span("run", "platform");
            {
                let _gen = tracer.span("generation", "platform");
                let _eval = tracer.span("eval", "platform");
            }
        }
        let spans = tracer.spans();
        let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["eval", "generation", "run"]);
        // Completion order implies monotonically nondecreasing end
        // times, and children lie inside their parents.
        for pair in spans.windows(2) {
            assert!(pair[0].start_us + pair[0].dur_us <= pair[1].start_us + pair[1].dur_us);
        }
        let run = &spans[2];
        let eval = &spans[0];
        assert!(run.start_us <= eval.start_us);
        assert!(run.start_us + run.dur_us >= eval.start_us + eval.dur_us);
    }

    #[test]
    fn timer_args_surface_in_chrome_json() {
        let tracer = Tracer::enabled();
        let mut timer = tracer.start("individual", "exec");
        timer.arg("genome_index", 7.0);
        timer.finish();
        let json = tracer.chrome_trace_json();
        assert!(json.contains("\"name\":\"individual\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"genome_index\":7"));
        // Well-formed JSON by the crate's own parser.
        let value: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert!(value.get("traceEvents").is_some());
    }

    #[test]
    fn span_records_round_trip_through_json() {
        let record = SpanRecord {
            name: "shard".to_string(),
            cat: "exec".to_string(),
            start_us: 12,
            dur_us: 34,
            tid: 2,
            args: vec![SpanArg {
                key: "items".to_string(),
                value: 16.0,
            }],
        };
        let json = serde_json::to_string(&record).unwrap();
        let back: SpanRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, record);
    }

    #[test]
    fn tracer_is_shared_across_clones_and_threads() {
        let tracer = Tracer::enabled();
        let clone = tracer.clone();
        let handle = std::thread::spawn(move || {
            let _span = clone.span("shard", "exec");
        });
        handle.join().unwrap();
        {
            let _span = tracer.span("eval", "platform");
        }
        assert_eq!(tracer.span_count(), 2);
        let spans = tracer.spans();
        assert_ne!(spans[0].tid, spans[1].tid, "worker got its own track");
    }

    #[test]
    fn json_strings_are_escaped() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }
}
