//! # e3-jit — tiered [`NetPlan`] execution
//!
//! A dependency-free x86-64 machine-code emitter that compiles a
//! [`NetPlan`] into a straight-line native function, claiming the
//! interpreter-overhead headroom `BENCH_plan.json` measures as
//! *addressable speedup* — without giving up the platform's bit-exact
//! determinism contract.
//!
//! The paper treats the genome→phenotype compile ("CreateNet") as a
//! first-class hardware step; this crate is the same move in software.
//! Elites survive many generations, so the `e3-exec` decode cache
//! already knows which plans are hot: entries that cross a configurable
//! use threshold ([`JitConfig::hot_threshold`]) are promoted from the
//! interpreter tier to a [`CompiledPlan`].
//!
//! ## Bit-identity contract
//!
//! The interpreter is the **permanent oracle**: a [`CompiledPlan`]
//! must produce the same `f64` bit patterns as
//! [`e3_neat::Network::activate_into`] on every input. The emitted
//! code replays the interpreter's exact FP sequence (bias first, then
//! the CSR edges in sorted order, one `mulsd`+`addsd` pair each), and
//! activations are dispatched through [`ACTIVATION_TABLE`] — thin
//! `extern "C"` wrappers over [`Activation::apply`] — so even
//! transcendental results (`tanh`, `exp`, `sin`) come from the very
//! same routines. Only `Identity` is inlined, by skipping the call.
//!
//! ## Fallback semantics
//!
//! [`CompiledPlan::compile`] returns [`JitError`] instead of a plan on
//! non-x86-64-Linux targets, when the kernel refuses the executable
//! mapping, or when a plan exceeds the emitter's size cap. Callers
//! (the `e3-exec` tiered cache) treat any error as "keep
//! interpreting": compilation is an optimization, never a requirement.
//!
//! ## W^X contract
//!
//! Code pages are mapped read+write, filled, then flipped to
//! read+execute (`mprotect`) before the first call, and unmapped on
//! drop — the page is never writable and executable simultaneously.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod emitter;
mod memory;

use e3_neat::forward::ForwardPass;
use e3_neat::{Activation, NetPlan};
use memory::ExecPage;
use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// The C ABI every activation wrapper exports: `f64` in `xmm0`, `f64`
/// out in `xmm0` — exactly what the emitted `call` expects.
pub type ActivationFn = extern "C" fn(f64) -> f64;

/// The emitted function: `(inputs, values, activation_table)`.
type EntryFn = unsafe extern "C" fn(*const f64, *mut f64, *const ActivationFn);

extern "C" fn act_sigmoid(x: f64) -> f64 {
    Activation::Sigmoid.apply(x)
}
extern "C" fn act_tanh(x: f64) -> f64 {
    Activation::Tanh.apply(x)
}
extern "C" fn act_relu(x: f64) -> f64 {
    Activation::Relu.apply(x)
}
extern "C" fn act_identity(x: f64) -> f64 {
    Activation::Identity.apply(x)
}
extern "C" fn act_gauss(x: f64) -> f64 {
    Activation::Gauss.apply(x)
}
extern "C" fn act_sin(x: f64) -> f64 {
    Activation::Sin.apply(x)
}
extern "C" fn act_abs(x: f64) -> f64 {
    Activation::Abs.apply(x)
}
extern "C" fn act_clamped(x: f64) -> f64 {
    Activation::Clamped.apply(x)
}

/// The activation dispatch table threaded through every compiled
/// function, indexed by an activation's position in
/// [`Activation::ALL`]. Each entry is a thin `extern "C"` wrapper over
/// the exact [`Activation::apply`] — this is what keeps transcendental
/// activations bit-identical between the tiers.
pub static ACTIVATION_TABLE: [ActivationFn; 8] = [
    act_sigmoid,
    act_tanh,
    act_relu,
    act_identity,
    act_gauss,
    act_sin,
    act_abs,
    act_clamped,
];

/// Index of `activation` in [`Activation::ALL`] / [`ACTIVATION_TABLE`].
pub(crate) fn activation_index(activation: Activation) -> usize {
    Activation::ALL
        .iter()
        .position(|&a| a == activation)
        .expect("every activation variant is listed in Activation::ALL")
}

/// Tiered-execution policy, carried on `E3Config` and handed to the
/// `e3-exec` decode caches.
///
/// Disabled by default: a run with the default config is byte-identical
/// to one predating the JIT tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JitConfig {
    /// Whether hot plans are promoted to native code at all.
    pub enabled: bool,
    /// Decode-cache uses after which a plan is compiled. Elites and
    /// champions cross this within a few generations; one-generation
    /// genomes never pay a compile.
    pub hot_threshold: u64,
}

impl Default for JitConfig {
    fn default() -> Self {
        JitConfig {
            enabled: false,
            hot_threshold: 3,
        }
    }
}

// Hand-written (not derived) so configs predating the JIT tier — or
// omitting either field — still deserialize to the defaults.
impl Serialize for JitConfig {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("enabled".to_string(), self.enabled.to_value()),
            ("hot_threshold".to_string(), self.hot_threshold.to_value()),
        ])
    }
}

impl Deserialize for JitConfig {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        // A missing `jit` field in an embedding struct surfaces here
        // as `Null` — configs predating the tier mean "disabled".
        if matches!(value, Value::Null) {
            return Ok(JitConfig::default());
        }
        if !matches!(value, Value::Object(_)) {
            return Err(DeError::expected("object (JitConfig)", value));
        }
        let defaults = JitConfig::default();
        let enabled = match serde::field_or_null(value, "enabled") {
            Value::Null => defaults.enabled,
            v => Deserialize::from_value(v)
                .map_err(|e| DeError::new(format!("field `enabled`: {e}")))?,
        };
        let hot_threshold = match serde::field_or_null(value, "hot_threshold") {
            Value::Null => defaults.hot_threshold,
            v => Deserialize::from_value(v)
                .map_err(|e| DeError::new(format!("field `hot_threshold`: {e}")))?,
        };
        Ok(JitConfig {
            enabled,
            hot_threshold,
        })
    }
}

impl JitConfig {
    /// Whether this is the default (disabled) policy — used by config
    /// serialization to keep JIT-less configs byte-identical to
    /// pre-JIT ones.
    pub fn is_default(&self) -> bool {
        *self == JitConfig::default()
    }
}

/// Why a plan could not be compiled. Every variant means "keep the
/// interpreter" — the fallback tier is always correct.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JitError {
    /// The target is not x86-64 Linux; no native backend exists.
    UnsupportedTarget,
    /// The emitted buffer would exceed the emitter's size cap.
    PlanTooLarge {
        /// Bytes the buffer (or offset) would have needed.
        bytes: usize,
    },
    /// `mmap` refused the staging page.
    MapFailed {
        /// OS errno.
        errno: i32,
    },
    /// `mprotect` refused to flip the page read+execute (e.g. under a
    /// W^X-enforcing security policy).
    ProtectFailed {
        /// OS errno.
        errno: i32,
    },
}

impl fmt::Display for JitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JitError::UnsupportedTarget => {
                write!(f, "JIT unsupported on this target (needs x86-64 Linux)")
            }
            JitError::PlanTooLarge { bytes } => {
                write!(f, "plan too large to JIT ({bytes} bytes emitted)")
            }
            JitError::MapFailed { errno } => write!(f, "mmap for code page failed (errno {errno})"),
            JitError::ProtectFailed { errno } => {
                write!(f, "mprotect to read+execute failed (errno {errno})")
            }
        }
    }
}

impl std::error::Error for JitError {}

/// A [`NetPlan`] compiled to native code, plus the scratch buffers its
/// calls reuse — the compiled counterpart of [`e3_neat::Network`].
///
/// Construction is fallible ([`CompiledPlan::compile`]); execution is
/// [`CompiledPlan::activate_into`], bit-identical to the interpreter.
pub struct CompiledPlan {
    /// Owns the executable mapping; dropped (unmapped) last.
    page: ExecPage,
    entry: EntryFn,
    num_inputs: usize,
    num_outputs: usize,
    /// Output compute-node indices in genome id order (from the plan).
    outputs: Vec<u32>,
    /// Scratch value buffer; compute slots only are written by the
    /// native code (inputs are read in place, never copied).
    values: Vec<f64>,
    /// Scratch output vector for [`CompiledPlan::activate_into`].
    out_buf: Vec<f64>,
    code_bytes: usize,
    /// Forward passes executed since the last
    /// [`CompiledPlan::take_activations`] drain.
    activations: u64,
}

impl fmt::Debug for CompiledPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompiledPlan")
            .field("page", &self.page)
            .field("num_inputs", &self.num_inputs)
            .field("num_outputs", &self.num_outputs)
            .field("code_bytes", &self.code_bytes)
            .field("activations", &self.activations)
            .finish()
    }
}

impl CompiledPlan {
    /// Compiles `plan` to native code.
    ///
    /// # Errors
    ///
    /// [`JitError::UnsupportedTarget`] off x86-64 Linux,
    /// [`JitError::PlanTooLarge`] past the emitter's size cap, and
    /// [`JitError::MapFailed`]/[`JitError::ProtectFailed`] when the
    /// kernel refuses the W^X page dance. All of them mean "keep the
    /// interpreter".
    pub fn compile(plan: &NetPlan) -> Result<CompiledPlan, JitError> {
        let code = emitter::emit(plan)?;
        let page = ExecPage::new(&code)?;
        // SAFETY: the page holds the function `emitter::emit` produced
        // for exactly this plan, starting at offset 0, now mapped
        // read+execute.
        let entry = unsafe { std::mem::transmute::<*const u8, EntryFn>(page.as_ptr()) };
        Ok(CompiledPlan {
            page,
            entry,
            num_inputs: plan.num_inputs(),
            num_outputs: plan.num_outputs(),
            outputs: plan.outputs().to_vec(),
            values: vec![0.0; plan.value_buffer_slots()],
            out_buf: Vec::with_capacity(plan.num_outputs()),
            code_bytes: code.len(),
            activations: 0,
        })
    }

    /// Runs one native forward pass with **zero allocation**, returning
    /// the output node values (genome id order) as a slice into an
    /// internal reusable buffer — bit-identical to
    /// [`e3_neat::Network::activate_into`] on the same plan.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the plan's input count
    /// (the interpreter's contract).
    pub fn activate_into(&mut self, inputs: &[f64]) -> &[f64] {
        assert_eq!(
            inputs.len(),
            self.num_inputs,
            "expected {} inputs, got {}",
            self.num_inputs,
            inputs.len()
        );
        // SAFETY: `inputs` is at least `num_inputs` f64s (asserted),
        // `values` was sized to the plan's value-buffer slots at
        // construction, and the emitted code only reads input slots
        // from `inputs`, reads/writes compute slots within `values`,
        // and calls through the 8-entry table — all offsets were
        // emitted from this plan's own indices.
        unsafe {
            (self.entry)(
                inputs.as_ptr(),
                self.values.as_mut_ptr(),
                ACTIVATION_TABLE.as_ptr(),
            )
        };
        self.activations += 1;
        let base = self.num_inputs;
        let values = &self.values;
        self.out_buf.clear();
        self.out_buf
            .extend(self.outputs.iter().map(|&i| values[base + i as usize]));
        &self.out_buf
    }

    /// Allocating convenience twin of [`CompiledPlan::activate_into`].
    pub fn activate(&mut self, inputs: &[f64]) -> Vec<f64> {
        self.activate_into(inputs).to_vec()
    }

    /// Number of input nodes.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of output nodes.
    pub fn num_outputs(&self) -> usize {
        self.num_outputs
    }

    /// Size of the emitted buffer (code + constant pool) in bytes.
    pub fn code_bytes(&self) -> usize {
        self.code_bytes
    }

    /// Drains the forward-pass counter (hot-path activations since the
    /// last drain) — how the `e3-exec` cache aggregates JIT telemetry.
    pub fn take_activations(&mut self) -> u64 {
        std::mem::take(&mut self.activations)
    }
}

impl ForwardPass for CompiledPlan {
    fn activate_into(&mut self, inputs: &[f64]) -> &[f64] {
        CompiledPlan::activate_into(self, inputs)
    }

    fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    fn num_outputs(&self) -> usize {
        self.num_outputs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use e3_neat::{Genome, InnovationTracker, Network};

    fn xor_ish_genome() -> Genome {
        let mut tracker = InnovationTracker::with_reserved_nodes(3);
        let mut g = Genome::bare(2, 1);
        let i = g.add_connection(0, 2, 0.7, &mut tracker).unwrap();
        g.add_connection(1, 2, -0.3, &mut tracker).unwrap();
        let h = g
            .split_connection(i, Activation::Sigmoid, &mut tracker)
            .unwrap();
        g.set_bias(h, 0.25).unwrap();
        g
    }

    #[test]
    fn table_order_matches_activation_all() {
        for (i, a) in Activation::ALL.iter().enumerate() {
            assert_eq!(activation_index(*a), i);
            for x in [-2.5, -0.0, 0.0, 0.5, 7.0] {
                assert_eq!(
                    ACTIVATION_TABLE[i](x).to_bits(),
                    a.apply(x).to_bits(),
                    "{a} wrapper drifted at {x}"
                );
            }
        }
    }

    #[test]
    fn config_default_is_disabled_and_skippable() {
        let config = JitConfig::default();
        assert!(!config.enabled);
        assert_eq!(config.hot_threshold, 3);
        assert!(config.is_default());
        assert!(!JitConfig {
            enabled: true,
            ..config
        }
        .is_default());
        let json = serde_json::to_string(&config).unwrap();
        let back: JitConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, config);
        // Old configs without the field still deserialize.
        let old: JitConfig = serde_json::from_str("{}").unwrap();
        assert_eq!(old, JitConfig::default());
        // A wholly missing field (Null through an embedding struct's
        // derived Deserialize) means "disabled" too.
        let null: JitConfig = serde::Deserialize::from_value(&serde::Value::Null).unwrap();
        assert_eq!(null, JitConfig::default());
    }

    #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
    #[test]
    fn compiled_plan_matches_interpreter_bitwise() {
        let genome = xor_ish_genome();
        let plan = NetPlan::compile(&genome).unwrap();
        let mut net = Network::from_plan(plan.clone());
        let mut jit = CompiledPlan::compile(&plan).expect("native target compiles");
        assert!(jit.code_bytes() > 0);
        for inputs in [[0.0, 0.0], [1.0, -1.0], [0.3, 0.9], [-5.5, 2.25]] {
            let want = net.activate_into(&inputs).to_vec();
            let got = jit.activate_into(&inputs).to_vec();
            assert_eq!(
                want.iter().map(|v| v.to_bits()).collect::<Vec<u64>>(),
                got.iter().map(|v| v.to_bits()).collect::<Vec<u64>>(),
                "JIT drifted from interpreter on {inputs:?}"
            );
        }
        assert_eq!(jit.take_activations(), 4);
        assert_eq!(jit.take_activations(), 0);
    }

    #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
    #[test]
    fn every_activation_kind_is_bit_identical() {
        for activation in Activation::ALL {
            let mut tracker = InnovationTracker::with_reserved_nodes(2);
            let mut g = Genome::bare(1, 1);
            let i = g.add_connection(0, 1, 1.5, &mut tracker).unwrap();
            let h = g.split_connection(i, activation, &mut tracker).unwrap();
            g.set_bias(h, -0.125).unwrap();
            let plan = NetPlan::compile(&g).unwrap();
            let mut net = Network::from_plan(plan.clone());
            let mut jit = CompiledPlan::compile(&plan).unwrap();
            for x in [-100.0, -1.0, -0.0, 0.0, 0.5, 3.25, 80.0] {
                let want = net.activate_into(&[x])[0];
                let got = jit.activate_into(&[x])[0];
                assert_eq!(
                    want.to_bits(),
                    got.to_bits(),
                    "{activation} drifted at {x}: {want} vs {got}"
                );
            }
        }
    }

    #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
    #[test]
    fn activate_into_panics_on_wrong_input_size() {
        let plan = NetPlan::compile(&xor_ish_genome()).unwrap();
        let mut jit = CompiledPlan::compile(&plan).unwrap();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            jit.activate_into(&[1.0]);
        }));
        assert!(err.is_err());
    }

    #[cfg(not(all(target_arch = "x86_64", target_os = "linux")))]
    #[test]
    fn unsupported_targets_fall_back() {
        let plan = NetPlan::compile(&xor_ish_genome()).unwrap();
        assert!(matches!(
            CompiledPlan::compile(&plan),
            Err(JitError::UnsupportedTarget)
        ));
    }

    #[test]
    fn errors_display_their_cause() {
        assert!(JitError::UnsupportedTarget.to_string().contains("x86-64"));
        assert!(JitError::PlanTooLarge { bytes: 99 }
            .to_string()
            .contains("99"));
        assert!(JitError::MapFailed { errno: 12 }.to_string().contains("12"));
        assert!(JitError::ProtectFailed { errno: 13 }
            .to_string()
            .contains("13"));
    }
}
