//! x86-64 machine-code emission for a [`NetPlan`].
//!
//! The emitted function is straight-line SSE2 scalar code with the
//! System V calling convention:
//!
//! ```text
//! extern "C" fn(inputs: *const f64, values: *mut f64, table: *const ActivationFn)
//! ```
//!
//! Register plan (all callee-saved, so activation calls cannot clobber
//! them):
//!
//! * `r13` — the inputs pointer (`rdi` on entry),
//! * `rbx` — the value buffer pointer (`rsi` on entry),
//! * `r12` — the activation function table (`rdx` on entry).
//!
//! Per compute node the code mirrors [`NetPlan`]'s `fill` loop exactly
//! — bias into `xmm0`, then each CSR edge as `movsd`+`mulsd`+`addsd`
//! in the plan's sorted order, then the activation — so the FP
//! operation sequence, and therefore every result bit, matches the
//! interpreter. Activations go through the function table (one `call
//! qword ptr [r12 + 8*index]`) so the exact `Activation::apply`
//! routines run; only `Identity` is inlined (the call is simply
//! skipped), because for every other variant even an "obvious" native
//! equivalent (e.g. `maxsd` for relu) has different NaN/signed-zero
//! semantics than the Rust source and would break bit-identity.
//!
//! Unlike the interpreter, the emitted code never copies the inputs
//! into the value buffer: loads pick their base register at emit time
//! (`r13` for input slots, `rbx` for compute slots), which is safe
//! because every slot index is a compile-time constant of the plan.
//!
//! Bias and weight constants live in an 8-byte-aligned pool appended
//! after the code and are addressed RIP-relative; the `disp32` fields
//! are back-patched once the pool base is known.

use crate::{activation_index, JitError};
use e3_neat::{Activation, NetPlan};
use std::collections::HashMap;

/// Cap on the emitted buffer (code + constant pool). Far below the
/// ±2 GiB reach of a `disp32`, so every RIP-relative patch below is
/// guaranteed to fit; a plan too big for this is not worth compiling
/// anyway and falls back to the interpreter.
const MAX_CODE_BYTES: usize = 1 << 24;

/// Emits the native function body for `plan` (code followed by its
/// constant pool), ready to be copied into an executable page.
///
/// Pure byte emission — runs on any host, which keeps the encoder
/// testable off-x86; only mapping the result is target-gated.
pub(crate) fn emit(plan: &NetPlan) -> Result<Vec<u8>, JitError> {
    let mut code: Vec<u8> = Vec::new();
    // Constant pool as f64 bit patterns, deduplicated bitwise (0.0
    // biases and repeated weights are common in evolved genomes).
    let mut consts: Vec<u64> = Vec::new();
    let mut const_index: HashMap<u64, usize> = HashMap::new();
    // (offset of a disp32 in `code`, constant index) to back-patch.
    let mut patches: Vec<(usize, usize)> = Vec::new();
    let mut intern = |bits: u64| -> usize {
        *const_index.entry(bits).or_insert_with(|| {
            consts.push(bits);
            consts.len() - 1
        })
    };

    // Prologue: save rbx/r12/r13, park the three arguments in them.
    // Three pushes put rsp back on a 16-byte boundary, so activation
    // calls below are ABI-aligned with no extra adjustment.
    code.extend_from_slice(&[
        0x53, // push rbx
        0x41, 0x54, // push r12
        0x41, 0x55, // push r13
        0x48, 0x89, 0xF3, // mov rbx, rsi   (values)
        0x49, 0x89, 0xD4, // mov r12, rdx   (activation table)
        0x49, 0x89, 0xFD, // mov r13, rdi   (inputs)
    ]);

    let num_inputs = plan.num_inputs();
    for i in 0..plan.num_compute_nodes() {
        // movsd xmm0, [rip + bias]
        code.extend_from_slice(&[0xF2, 0x0F, 0x10, 0x05]);
        patches.push((code.len(), intern(plan.bias(i).to_bits())));
        code.extend_from_slice(&[0; 4]);
        for &(source, weight) in plan.node_edges(i) {
            let src = source as usize;
            if src < num_inputs {
                // movsd xmm1, [r13 + 8*src]  (input slot)
                code.extend_from_slice(&[0xF2, 0x41, 0x0F, 0x10, 0x8D]);
                code.extend_from_slice(&disp32(8 * src)?);
            } else {
                // movsd xmm1, [rbx + 8*src]  (earlier compute slot)
                code.extend_from_slice(&[0xF2, 0x0F, 0x10, 0x8B]);
                code.extend_from_slice(&disp32(8 * src)?);
            }
            // mulsd xmm1, [rip + weight]
            code.extend_from_slice(&[0xF2, 0x0F, 0x59, 0x0D]);
            patches.push((code.len(), intern(weight.to_bits())));
            code.extend_from_slice(&[0; 4]);
            // addsd xmm0, xmm1
            code.extend_from_slice(&[0xF2, 0x0F, 0x58, 0xC1]);
        }
        let activation = plan.activation(i);
        if activation != Activation::Identity {
            // call qword ptr [r12 + 8*index]  — f64 in/out through xmm0
            code.extend_from_slice(&[0x41, 0xFF, 0x94, 0x24]);
            code.extend_from_slice(&disp32(8 * activation_index(activation))?);
        }
        // movsd [rbx + 8*slot], xmm0
        code.extend_from_slice(&[0xF2, 0x0F, 0x11, 0x83]);
        code.extend_from_slice(&disp32(8 * (num_inputs + i))?);
    }

    // Epilogue.
    code.extend_from_slice(&[
        0x41, 0x5D, // pop r13
        0x41, 0x5C, // pop r12
        0x5B, // pop rbx
        0xC3, // ret
    ]);

    // Constant pool: 8-byte aligned, padded with int3 so a stray jump
    // into the gap traps instead of executing data.
    while !code.len().is_multiple_of(8) {
        code.push(0xCC);
    }
    let pool_start = code.len();
    let total = pool_start + 8 * consts.len();
    if total > MAX_CODE_BYTES {
        return Err(JitError::PlanTooLarge { bytes: total });
    }
    for bits in &consts {
        code.extend_from_slice(&bits.to_le_bytes());
    }

    // Back-patch every RIP-relative constant load: the displacement is
    // measured from the end of the 4-byte field (= next instruction).
    for (at, index) in patches {
        let target = pool_start + 8 * index;
        let disp = target as i64 - (at as i64 + 4);
        code[at..at + 4].copy_from_slice(&(disp as i32).to_le_bytes());
    }
    Ok(code)
}

/// A value-buffer or table byte offset as a little-endian `disp32`.
fn disp32(offset: usize) -> Result<[u8; 4], JitError> {
    i32::try_from(offset)
        .map(|v| v.to_le_bytes())
        .map_err(|_| JitError::PlanTooLarge { bytes: offset })
}

#[cfg(test)]
mod tests {
    use super::*;
    use e3_neat::{Genome, InnovationTracker};

    fn tiny_plan() -> NetPlan {
        let mut tracker = InnovationTracker::with_reserved_nodes(3);
        let mut g = Genome::bare(2, 1);
        g.add_connection(0, 2, 0.5, &mut tracker).unwrap();
        g.add_connection(1, 2, -0.25, &mut tracker).unwrap();
        NetPlan::compile(&g).unwrap()
    }

    #[test]
    fn emitted_code_has_prologue_epilogue_and_pool() {
        let code = emit(&tiny_plan()).unwrap();
        assert_eq!(&code[..5], &[0x53, 0x41, 0x54, 0x41, 0x55]);
        // The epilogue sits right before the (aligned) constant pool.
        let ret = code.iter().position(|&b| b == 0xC3).expect("ret emitted");
        assert_eq!(&code[ret - 5..ret], &[0x41, 0x5D, 0x41, 0x5C, 0x5B]);
        // Pool holds the deduplicated constants: bias 0.0, 0.5, -0.25.
        let tail = &code[code.len() - 24..];
        let pool: Vec<f64> = tail
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        assert!(pool.contains(&0.5) && pool.contains(&-0.25));
    }

    #[test]
    fn constants_are_interned_bitwise() {
        let mut tracker = InnovationTracker::with_reserved_nodes(4);
        let mut g = Genome::bare(2, 2);
        g.add_connection(0, 2, 0.5, &mut tracker).unwrap();
        g.add_connection(1, 3, 0.5, &mut tracker).unwrap();
        let plan = NetPlan::compile(&g).unwrap();
        let code = emit(&plan).unwrap();
        let half = 0.5f64.to_le_bytes();
        let occurrences = code.windows(8).filter(|w| *w == half).count();
        assert_eq!(occurrences, 1, "repeated weight 0.5 must be pooled once");
    }

    #[test]
    fn oversized_offsets_report_plan_too_large() {
        assert!(matches!(
            disp32(usize::MAX),
            Err(JitError::PlanTooLarge { .. })
        ));
    }
}
