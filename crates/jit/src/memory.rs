//! W^X-correct executable-page management.
//!
//! Emitted machine code is staged into an anonymous private mapping
//! created read+write, then flipped to read+execute with `mprotect`
//! before the first call — the page is never writable and executable
//! at the same time. Dropping the page unmaps it.
//!
//! The syscall surface (`mmap`/`mprotect`/`munmap`) is hand-declared:
//! `std` already links the platform libc on Linux, so no external
//! crate is needed. On any target that is not x86-64 Linux the stub
//! implementation refuses with [`JitError::UnsupportedTarget`], which
//! is what keeps the interpreter tier in charge there.

use crate::JitError;

#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
mod native {
    use core::ffi::c_void;

    pub(super) const PROT_READ: i32 = 1;
    pub(super) const PROT_WRITE: i32 = 2;
    pub(super) const PROT_EXEC: i32 = 4;
    pub(super) const MAP_PRIVATE: i32 = 2;
    pub(super) const MAP_ANONYMOUS: i32 = 0x20;

    extern "C" {
        pub(super) fn mmap(
            addr: *mut c_void,
            length: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub(super) fn mprotect(addr: *mut c_void, len: usize, prot: i32) -> i32;
        pub(super) fn munmap(addr: *mut c_void, length: usize) -> i32;
    }
}

/// An executable code page holding one compiled plan.
///
/// Immutable after construction: the backing mapping is read+execute
/// only, so sharing the page across threads is sound.
#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
#[derive(Debug)]
pub(crate) struct ExecPage {
    ptr: *mut u8,
    len: usize,
}

/// Stub on targets without the native backend: never constructible,
/// so the compiled tier transparently falls back to the interpreter.
#[cfg(not(all(target_arch = "x86_64", target_os = "linux")))]
#[derive(Debug)]
pub(crate) struct ExecPage {
    _private: (),
}

#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
impl ExecPage {
    /// Maps `code` into a fresh read+execute page (staged RW, flipped
    /// RX — never writable-and-executable).
    pub(crate) fn new(code: &[u8]) -> Result<ExecPage, JitError> {
        use native::*;
        let len = code.len().max(1);
        let errno = || std::io::Error::last_os_error().raw_os_error().unwrap_or(-1);
        // SAFETY: anonymous private mapping with no address hint; the
        // kernel picks the placement and `fd`/`offset` are ignored for
        // MAP_ANONYMOUS.
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ | PROT_WRITE,
                MAP_PRIVATE | MAP_ANONYMOUS,
                -1,
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(JitError::MapFailed { errno: errno() });
        }
        let ptr = ptr as *mut u8;
        // SAFETY: the mapping is `len` bytes, writable, and disjoint
        // from `code` (freshly mapped).
        unsafe { std::ptr::copy_nonoverlapping(code.as_ptr(), ptr, code.len()) };
        // SAFETY: `ptr` is the live mapping created above.
        let rc = unsafe { mprotect(ptr.cast(), len, PROT_READ | PROT_EXEC) };
        if rc != 0 {
            let e = errno();
            // SAFETY: the mapping is still owned by this function.
            unsafe { munmap(ptr.cast(), len) };
            return Err(JitError::ProtectFailed { errno: e });
        }
        Ok(ExecPage { ptr, len })
    }

    /// Entry address of the mapped code.
    pub(crate) fn as_ptr(&self) -> *const u8 {
        self.ptr
    }
}

#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
impl Drop for ExecPage {
    fn drop(&mut self) {
        // SAFETY: `ptr`/`len` describe the mapping created in `new`,
        // unmapped exactly once here.
        unsafe { native::munmap(self.ptr.cast(), self.len) };
    }
}

// SAFETY: the page is read+execute only after construction — no
// mutation is possible through it, so moving or sharing the owner
// across threads cannot race.
#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
unsafe impl Send for ExecPage {}
#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
unsafe impl Sync for ExecPage {}

#[cfg(not(all(target_arch = "x86_64", target_os = "linux")))]
impl ExecPage {
    pub(crate) fn new(_code: &[u8]) -> Result<ExecPage, JitError> {
        Err(JitError::UnsupportedTarget)
    }

    pub(crate) fn as_ptr(&self) -> *const u8 {
        unreachable!("ExecPage cannot be constructed on unsupported targets")
    }
}
