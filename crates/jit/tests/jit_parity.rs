//! Property tests for the native tier: the interpreter is the
//! permanent bit-identity oracle.
//!
//! [`CompiledPlan`] execution must produce the **same f64 bit
//! patterns** as [`Network::activate`] on arbitrary evolved genomes
//! across every supported activation function — not just close values.
//! Malformed genomes must be rejected before the JIT can ever see
//! them, with the same error the legacy decode raises, and on targets
//! the emitter cannot serve compilation must fail loudly with
//! [`JitError::UnsupportedTarget`] rather than produce wrong code.

use e3_jit::{CompiledPlan, JitError};
use e3_neat::{Activation, Genome, InnovationTracker, NeatConfig, NetPlan, Network};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Evolves a genome with every activation function in play, so the
/// proptests sweep the full emitter function table rather than the
/// default three-activation palette.
fn evolved_genome(num_inputs: usize, num_outputs: usize, seed: u64, mutations: usize) -> Genome {
    let mut config = NeatConfig::builder(num_inputs, num_outputs)
        .initial_connection_density(0.6)
        .activation_mutate_rate(0.5)
        .build();
    config.activation_options = Activation::ALL.to_vec();
    let mut tracker = InnovationTracker::with_reserved_nodes(num_inputs + num_outputs);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut genome = Genome::initial(&config, &mut tracker, &mut rng);
    for _ in 0..mutations {
        genome.mutate(&config, &mut tracker, &mut rng);
    }
    genome
}

/// A genome with one hidden node per activation kind, chained between
/// the inputs and the single output: every entry of the emitter's
/// activation table is exercised in one network. Each split targets
/// the freshly created `hidden -> output` edge, so every
/// `(from, to)` pair is distinct and the innovation tracker's split
/// memoization never collides.
fn all_activations_genome() -> Genome {
    let mut tracker = InnovationTracker::with_reserved_nodes(3);
    let mut genome = Genome::bare(2, 1);
    let mut innovation = genome
        .add_connection(0, 2, 0.9, &mut tracker)
        .expect("input->output edge is addable");
    for (i, activation) in Activation::ALL.into_iter().enumerate() {
        let hidden = genome
            .split_connection(innovation, activation, &mut tracker)
            .expect("chain edges are fresh");
        genome
            .set_bias(hidden, 0.35 - 0.2 * i as f64)
            .expect("hidden node exists");
        innovation = genome
            .connection_between(hidden, 2)
            .expect("split created hidden->output")
            .innovation;
    }
    // A second input path so both inputs matter.
    genome
        .add_connection(1, 2, -0.6, &mut tracker)
        .expect("second input edge is addable");
    genome
}

fn assert_bit_identical(genome: &Genome, inputs: &[Vec<f64>]) {
    let mut net = Network::from_genome(genome).expect("feed-forward genome decodes");
    match CompiledPlan::compile(net.plan()) {
        Ok(mut jit) => {
            for x in inputs {
                let want = net.activate(x);
                let got = jit.activate(x);
                assert_eq!(want.len(), got.len());
                for (w, g) in want.iter().zip(&got) {
                    assert_eq!(
                        w.to_bits(),
                        g.to_bits(),
                        "native tier drifted on {x:?}: interpreter {w} vs native {g}"
                    );
                }
            }
        }
        Err(JitError::UnsupportedTarget) => {
            if cfg!(all(target_arch = "x86_64", target_os = "linux")) {
                panic!("native target refused a well-formed plan");
            }
        }
        Err(other) => panic!("unexpected compile failure: {other}"),
    }
}

#[test]
fn every_activation_kind_is_bit_identical() {
    let genome = all_activations_genome();
    // All eight activations really are present.
    let kinds: std::collections::BTreeSet<_> = genome
        .nodes()
        .iter()
        .map(|node| format!("{:?}", node.activation))
        .collect();
    for activation in Activation::ALL {
        assert!(
            kinds.contains(&format!("{activation:?}")),
            "genome is missing {activation:?}"
        );
    }
    let probes: Vec<Vec<f64>> = [
        [0.0, 0.0],
        [1.0, -1.0],
        [-3.5, 7.25],
        [1e-12, -1e-12],
        [1e6, -1e6],
        [f64::MIN_POSITIVE, -f64::MIN_POSITIVE],
        [0.1, 0.9],
    ]
    .iter()
    .map(|p| p.to_vec())
    .collect();
    assert_bit_identical(&genome, &probes);
}

#[test]
fn cyclic_genomes_never_reach_the_jit() {
    // A cycle is rejected at plan compilation with the same error the
    // legacy decode raises — the JIT only ever sees validated plans.
    let mut tracker = InnovationTracker::with_reserved_nodes(2);
    let mut genome = Genome::bare(1, 1);
    let innovation = genome.add_connection(0, 1, 1.0, &mut tracker).unwrap();
    let hidden = genome
        .split_connection(innovation, Activation::Tanh, &mut tracker)
        .unwrap();
    genome
        .add_connection_unchecked(hidden, hidden, 0.5, &mut tracker)
        .unwrap();
    let plan_err = NetPlan::compile(&genome).expect_err("cycle must not compile");
    let decode_err = genome.decode().expect_err("legacy decode must also reject");
    assert_eq!(
        plan_err, decode_err,
        "plan and decode disagree on the error"
    );
}

#[test]
fn compile_outcome_matches_target() {
    let genome = evolved_genome(3, 2, 7, 20);
    let net = Network::from_genome(&genome).expect("decodes");
    let result = CompiledPlan::compile(net.plan());
    if cfg!(all(target_arch = "x86_64", target_os = "linux")) {
        let compiled = result.expect("native target compiles well-formed plans");
        assert!(compiled.code_bytes() > 0);
    } else {
        assert!(
            matches!(result, Err(JitError::UnsupportedTarget)),
            "non-native target must refuse, not miscompile"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary evolved genomes (all activation kinds in the mutation
    /// palette) execute bit-identically on the native tier, across IO
    /// shapes covering every environment in the suite.
    #[test]
    fn evolved_genomes_are_bit_identical(
        seed in any::<u64>(),
        num_inputs in 1usize..9,
        num_outputs in 1usize..5,
        mutations in 0usize..60,
        x in -10.0f64..10.0,
    ) {
        let genome = evolved_genome(num_inputs, num_outputs, seed, mutations);
        let inputs: Vec<Vec<f64>> = (0..4)
            .map(|k| {
                (0..num_inputs)
                    .map(|i| x * (i as f64 + 1.0) - k as f64 * 1.75)
                    .collect()
            })
            .collect();
        assert_bit_identical(&genome, &inputs);
    }

    /// Repeated native activations are pure: the same input produces
    /// the same bits every call (scratch state fully reset), and the
    /// activation counter advances.
    #[test]
    fn native_execution_is_pure(
        seed in any::<u64>(),
        mutations in 0usize..40,
    ) {
        let genome = evolved_genome(4, 2, seed, mutations);
        let net = Network::from_genome(&genome).expect("decodes");
        if let Ok(mut jit) = CompiledPlan::compile(net.plan()) {
            let x = [0.25, -1.5, 3.0, -0.125];
            let first = jit.activate(&x);
            for _ in 0..3 {
                let again = jit.activate(&x);
                for (a, b) in first.iter().zip(&again) {
                    prop_assert_eq!(a.to_bits(), b.to_bits(), "native call is not pure");
                }
            }
            prop_assert_eq!(jit.take_activations(), 4);
            prop_assert_eq!(jit.take_activations(), 0, "take drains the counter");
        }
    }
}
