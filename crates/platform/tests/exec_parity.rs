//! The determinism contract of the parallel evaluation engine: for any
//! backend, seed, and environment, a run sharded across N worker
//! threads is bit-identical to the serial reference — same fitness
//! vectors, same telemetry fitness statistics, same final champion.
//!
//! Per-individual RNG streams are derived from
//! `(run_seed, generation, genome_index)` and reduction is
//! index-ordered, so worker count and steal schedule can never leak
//! into results (the software analogue of the paper's claim that PU
//! count only changes wave latency, not episode outcomes).

use e3_envs::EnvId;
use e3_platform::telemetry::MemoryCollector;
use e3_platform::{BackendKind, E3Config, E3Platform, RunOutcome};
use proptest::prelude::*;

const ENVS: [EnvId; 3] = [EnvId::CartPole, EnvId::MountainCar, EnvId::Pendulum];

fn config(env: EnvId, threads: usize) -> E3Config {
    E3Config::builder(env)
        .population_size(24)
        .max_generations(3)
        .threads(threads)
        .build()
}

fn run(env: EnvId, kind: BackendKind, seed: u64, threads: usize) -> (RunOutcome, MemoryCollector) {
    let mut telemetry = MemoryCollector::new();
    let outcome = E3Platform::new(config(env, threads), kind, seed)
        .run_with(&mut telemetry)
        .expect("quick populations are feed-forward");
    (outcome, telemetry)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// ThreadPoolExecutor at 2/4/8 workers reproduces the serial run
    /// bit for bit on every backend.
    #[test]
    fn threaded_runs_are_bit_identical_to_serial(
        env_index in 0usize..3,
        backend_index in 0usize..3,
        seed in 0u64..1_000,
    ) {
        let env = ENVS[env_index];
        let kind = BackendKind::ALL[backend_index];
        let (reference, ref_telemetry) = run(env, kind, seed, 1);
        let ref_fitness: Vec<(f64, f64)> = ref_telemetry
            .evals()
            .map(|e| (e.best_fitness, e.mean_fitness))
            .collect();
        for threads in [2usize, 4, 8] {
            let (outcome, telemetry) = run(env, kind, seed, threads);
            // The full outcome — fitness trajectory, modeled seconds,
            // hardware counters, complexity stats — is bit-identical.
            prop_assert_eq!(&outcome, &reference, "threads={}", threads);
            let fitness: Vec<(f64, f64)> = telemetry
                .evals()
                .map(|e| (e.best_fitness, e.mean_fitness))
                .collect();
            prop_assert_eq!(&fitness, &ref_fitness, "threads={}", threads);
            // Observability is write-only but must still describe the
            // pool that actually ran.
            prop_assert!(telemetry.execs().count() > 0);
            prop_assert!(telemetry.execs().all(|x| x.workers == threads));
        }
    }
}

/// The evolved champion genome (not just its fitness) is identical
/// whichever executor evaluated the population.
#[test]
fn final_champion_is_identical_across_worker_counts() {
    for kind in BackendKind::ALL {
        let mut serial = E3Platform::new(config(EnvId::CartPole, 1), kind, 42);
        let mut pooled = E3Platform::new(config(EnvId::CartPole, 4), kind, 42);
        for _ in 0..3 {
            serial.step_generation().expect("serial step");
            pooled.step_generation().expect("pooled step");
        }
        let a = serial.population().best().expect("champion exists");
        let b = pooled.population().best().expect("champion exists");
        assert_eq!(a.fitness, b.fitness, "{kind:?}");
        assert_eq!(a.genome, b.genome, "{kind:?}");
        assert_eq!(
            serial.population().genomes(),
            pooled.population().genomes(),
            "{kind:?}: whole population evolves identically"
        );
    }
}
