//! Bit-identical resume parity: for every backend and thread count, a
//! run interrupted at a checkpoint and resumed must reproduce the
//! uninterrupted run exactly — same `RunOutcome`, same telemetry
//! `Summary`, same per-generation fitness trajectory.

use e3_envs::EnvId;
use e3_platform::telemetry::{MemoryCollector, RunSummary, TelemetryEvent};
use e3_platform::{BackendKind, CheckpointPolicy, E3Config, E3Platform};
use std::path::PathBuf;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("e3-resume-parity-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn base_config(threads: usize) -> E3Config {
    E3Config::builder(EnvId::CartPole)
        .population_size(20)
        .max_generations(4)
        .target_fitness(f64::INFINITY) // fixed-length run: exercises every generation
        .threads(threads)
        .build()
}

fn summary_of(collector: &MemoryCollector) -> RunSummary {
    collector
        .summaries()
        .next()
        .expect("run emits a summary")
        .clone()
}

/// Fitness-trajectory view of a collector's generation records.
fn trajectory(collector: &MemoryCollector) -> Vec<(usize, f64, f64)> {
    collector
        .generations()
        .map(|g| (g.generation, g.best_fitness, g.mean_fitness))
        .collect()
}

#[test]
fn resume_is_bit_identical_across_backends_and_threads() {
    for backend in BackendKind::ALL {
        for threads in [1usize, 4] {
            let tag = format!("{}-{threads}", backend.name());
            let dir = scratch(&tag);

            // Reference: the uninterrupted run (no checkpointing).
            let mut reference_collector = MemoryCollector::new();
            let reference = E3Platform::new(base_config(threads), backend, 33)
                .run_with(&mut reference_collector)
                .unwrap();

            // Interrupted: checkpoint every generation, crash after 2.
            let mut config = base_config(threads);
            config.checkpoint =
                Some(CheckpointPolicy::new(dir.to_string_lossy().into_owned()).every(1));
            let mut crashed_collector = MemoryCollector::new();
            {
                let mut platform = E3Platform::new(config.clone(), backend, 33);
                platform.step_with(&mut crashed_collector).unwrap();
                platform.step_with(&mut crashed_collector).unwrap();
                // Crash: the platform is dropped without a summary.
            }

            // Resumed: finish the run from the newest snapshot.
            let mut resumed_collector = MemoryCollector::new();
            let resumed_platform = E3Platform::resume(config, backend, 33)
                .unwrap()
                .unwrap_or_else(|| panic!("{tag}: checkpoint must be recoverable"));
            assert_eq!(resumed_platform.generation(), 2, "{tag}");
            let resumed = resumed_platform.run_with(&mut resumed_collector).unwrap();

            // The outcome struct is identical field-for-field: fitness
            // trajectory, modeled seconds, per-function profile,
            // accelerator accounting, complexity statistics.
            assert_eq!(resumed, reference, "{tag}: RunOutcome diverged");

            // The final Summary is identical too.
            assert_eq!(
                summary_of(&resumed_collector),
                summary_of(&reference_collector),
                "{tag}: RunSummary diverged"
            );

            // And the stitched generation stream (crashed portion +
            // resumed portion) matches the uninterrupted stream.
            let mut stitched = trajectory(&crashed_collector);
            stitched.extend(trajectory(&resumed_collector));
            assert_eq!(
                stitched,
                trajectory(&reference_collector),
                "{tag}: fitness trajectory diverged"
            );

            // The resumed stream announces where it picked up.
            let resume_record = resumed_collector
                .resumes()
                .next()
                .unwrap_or_else(|| panic!("{tag}: missing Resume record"));
            assert_eq!(resume_record.generation, 2, "{tag}");
            assert_eq!(resume_record.backend, backend.name(), "{tag}");

            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

/// Resuming at a different thread count than the crashed run still
/// reproduces the reference: the schedule is not part of the state.
#[test]
fn resume_across_thread_counts_is_bit_identical() {
    let dir = scratch("cross-threads");
    let reference = E3Platform::new(base_config(1), BackendKind::Cpu, 12)
        .run()
        .unwrap();

    let mut config = base_config(4);
    config.checkpoint = Some(CheckpointPolicy::new(dir.to_string_lossy().into_owned()));
    {
        let mut platform = E3Platform::new(config.clone(), BackendKind::Cpu, 12);
        platform.step_generation().unwrap();
    }
    // Resume single-threaded what crashed four-threaded.
    let mut config_serial = config.clone();
    config_serial.threads = 1;
    let resumed = E3Platform::resume(config_serial, BackendKind::Cpu, 12)
        .unwrap()
        .expect("checkpoint recoverable across thread counts")
        .run()
        .unwrap();
    assert_eq!(resumed, reference);
    std::fs::remove_dir_all(&dir).ok();
}

/// The NDJSON event stream of a checkpointed run is a superset of the
/// plain run's stream: removing Checkpoint/Resume records yields the
/// identical event sequence (checkpointing is write-only observation).
#[test]
fn checkpoint_events_are_purely_additive() {
    let dir = scratch("additive");
    let mut plain_collector = MemoryCollector::new();
    E3Platform::new(base_config(1), BackendKind::Inax, 9)
        .run_with(&mut plain_collector)
        .unwrap();

    let mut config = base_config(1);
    config.checkpoint = Some(CheckpointPolicy::new(dir.to_string_lossy().into_owned()).every(2));
    let mut checkpointed_collector = MemoryCollector::new();
    E3Platform::new(config, BackendKind::Inax, 9)
        .run_with(&mut checkpointed_collector)
        .unwrap();

    // Exec records carry wall-clock scheduling measurements that vary
    // run to run by design; zero them so only deterministic content is
    // compared.
    let normalize = |events: &[TelemetryEvent]| -> Vec<TelemetryEvent> {
        events
            .iter()
            .filter(|event| {
                !matches!(
                    event,
                    TelemetryEvent::Checkpoint(_) | TelemetryEvent::Resume(_)
                )
            })
            .cloned()
            .map(|event| match event {
                TelemetryEvent::Exec(mut exec) => {
                    exec.shard_seconds.clear();
                    exec.wall_seconds = 0.0;
                    exec.worker_utilization = 0.0;
                    TelemetryEvent::Exec(exec)
                }
                other => other,
            })
            .collect()
    };
    assert_eq!(
        normalize(checkpointed_collector.events()),
        normalize(plain_collector.events())
    );
    assert_eq!(checkpointed_collector.checkpoints().count(), 2);
    std::fs::remove_dir_all(&dir).ok();
}
