//! The determinism contract of the batched evaluation API: for any
//! backend, seed, environment, and worker-thread count,
//! `try_evaluate_population_batched` is bit-identical to the scalar
//! serial `try_evaluate_population` — same fitness vectors, same
//! episode lengths, same modeled seconds. The population-major kernel
//! (`PlanBatch` + `BatchEnv` lockstep stepping with lane parking) is a
//! pure execution-layout change; results must never depend on batch
//! composition or sharding.
//!
//! With the `fast-math` feature enabled the bit-exactness claim is
//! forfeited by design, so these tests compile out.
#![cfg(not(feature = "fast-math"))]

use e3_envs::EnvId;
use e3_neat::{Genome, NeatConfig, Population};
use e3_platform::{
    BackendKind, CpuBackend, E3Config, E3Platform, EvalBackend, EvalOutcome, GpuBackend,
    SwCostModel,
};
use proptest::prelude::*;

const ENVS: [EnvId; 3] = [EnvId::CartPole, EnvId::LunarLander, EnvId::Pendulum];
const THREADS: [usize; 3] = [1, 4, 8];

/// An evolved population (a few generations under a cheap structural
/// fitness) so the batch packs heterogeneous topologies, not just the
/// uniform generation-0 shapes.
fn evolved_population(env: EnvId, size: usize, seed: u64, generations: usize) -> Vec<Genome> {
    let config = NeatConfig::builder(env.observation_size(), env.policy_outputs())
        .population_size(size)
        .build();
    let mut pop = Population::new(config, seed);
    for _ in 0..generations {
        pop.evaluate(|g| (g.num_enabled_connections() + g.nodes().len()) as f64);
        pop.evolve();
    }
    pop.genomes().to_vec()
}

fn assert_outcomes_bit_identical(a: &EvalOutcome, b: &EvalOutcome, what: &str) {
    assert_eq!(a.fitnesses.len(), b.fitnesses.len(), "{what}: row count");
    for (i, (x, y)) in a.fitnesses.iter().zip(&b.fitnesses).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: fitness {i}: {x} vs {y}");
    }
    assert_eq!(a.steps_per_genome, b.steps_per_genome, "{what}: steps");
    assert_eq!(
        a.eval_seconds.to_bits(),
        b.eval_seconds.to_bits(),
        "{what}: modeled eval seconds"
    );
    assert_eq!(
        a.env_seconds.to_bits(),
        b.env_seconds.to_bits(),
        "{what}: modeled env seconds"
    );
    assert_eq!(a.total_steps, b.total_steps, "{what}: total steps");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// CPU backend: the batched kernel at 1/4/8 workers reproduces the
    /// scalar serial evaluation bit for bit on heterogeneous evolved
    /// populations, for arbitrary seeds and odd population sizes.
    #[test]
    fn cpu_batched_matches_scalar_serial(
        seed in any::<u64>(),
        pop_size in 5usize..20,
        generations in 0usize..4,
    ) {
        for env in ENVS {
            let genomes = evolved_population(env, pop_size, seed, generations);
            let mut scalar = CpuBackend::new(SwCostModel::default());
            let reference = scalar
                .try_evaluate_population(&genomes, env, seed)
                .expect("evolved populations are feed-forward");
            for threads in THREADS {
                let mut batched = CpuBackend::with_threads(SwCostModel::default(), threads);
                let outcome = batched
                    .try_evaluate_population_batched(&genomes, env, seed)
                    .expect("batched eval succeeds");
                assert_outcomes_bit_identical(
                    &reference,
                    &outcome,
                    &format!("{env} batched@{threads}"),
                );
            }
        }
    }

    /// GPU backend: same contract, with the launch-bound cost model
    /// priced on plans instead of decoded networks.
    #[test]
    fn gpu_batched_matches_scalar_serial(
        seed in any::<u64>(),
        pop_size in 4usize..12,
    ) {
        let genomes = evolved_population(EnvId::CartPole, pop_size, seed, 2);
        let mut scalar = GpuBackend::default();
        let reference = scalar
            .try_evaluate_population(&genomes, EnvId::CartPole, seed)
            .expect("evolved populations are feed-forward");
        let mut batched = GpuBackend::default();
        let outcome = batched
            .try_evaluate_population_batched(&genomes, EnvId::CartPole, seed)
            .expect("batched eval succeeds");
        assert_outcomes_bit_identical(&reference, &outcome, "gpu batched");
    }
}

/// The whole platform loop — which now always calls the batched entry
/// point — stays bit-identical across worker-thread counts on every
/// backend kind, including INAX (whose batched default routes through
/// its wave loop).
#[test]
fn platform_runs_are_thread_invariant_through_the_batched_path() {
    for kind in BackendKind::ALL {
        let mut reference = None;
        for threads in THREADS {
            let config = E3Config::builder(EnvId::CartPole)
                .population_size(24)
                .max_generations(3)
                .threads(threads)
                .build();
            let outcome = E3Platform::new(config, kind, 11)
                .run()
                .expect("quick populations are feed-forward");
            let key = (
                outcome.best_fitness.to_bits(),
                outcome.generations_run,
                outcome.solved,
            );
            match reference {
                None => reference = Some(key),
                Some(want) => assert_eq!(
                    key, want,
                    "{kind} at {threads} threads diverged from serial"
                ),
            }
        }
    }
}
