//! Telemetry must be write-only: installing any collector yields
//! bit-identical runs, and the NDJSON schema stays stable.

use e3_envs::EnvId;
use e3_platform::telemetry::{Collector, MemoryCollector, NdjsonWriter, TelemetryEvent, Tracer};
use e3_platform::{
    BackendKind, CheckpointPolicy, E3Config, E3Platform, EvalBackend, EvalError, RunError,
};
use proptest::prelude::*;

/// Cheap environments so the property runs many cases quickly.
const ENVS: [EnvId; 3] = [EnvId::CartPole, EnvId::MountainCar, EnvId::Pendulum];

fn quick_config(env: EnvId) -> E3Config {
    E3Config::builder(env)
        .population_size(24)
        .max_generations(3)
        .build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn any_collector_leaves_the_run_bit_identical(
        env_index in 0usize..3,
        backend_index in 0usize..3,
        seed in 0u64..1_000,
    ) {
        let env = ENVS[env_index];
        let kind = BackendKind::ALL[backend_index];

        let plain = E3Platform::new(quick_config(env), kind, seed)
            .run()
            .expect("quick populations are feed-forward");
        let mut memory = MemoryCollector::new();
        let observed = E3Platform::new(quick_config(env), kind, seed)
            .run_with(&mut memory)
            .expect("quick populations are feed-forward");
        let mut ndjson = NdjsonWriter::new(Vec::new());
        let streamed = E3Platform::new(quick_config(env), kind, seed)
            .run_with(&mut ndjson)
            .expect("quick populations are feed-forward");

        // Bit-identical fitness trajectory and modeled timing,
        // whichever sink is installed.
        prop_assert_eq!(&plain, &observed);
        prop_assert_eq!(&plain, &streamed);

        // The captured telemetry agrees with the outcome it observed.
        let summary = memory.summaries().last().expect("run emits a summary");
        prop_assert_eq!(summary.generations, plain.generations_run);
        prop_assert_eq!(summary.best_fitness, plain.best_fitness);
        prop_assert_eq!(summary.modeled_seconds, plain.modeled_seconds);
        prop_assert_eq!(summary.solved, plain.solved);
        prop_assert_eq!(summary.backend.as_str(), kind.name());
        prop_assert_eq!(memory.generations().count(), plain.generations_run);
        prop_assert_eq!(memory.evals().count(), plain.generations_run);
        let trace: Vec<f64> = memory.generations().map(|g| g.best_fitness).collect();
        let expected: Vec<f64> = plain.trace.iter().map(|t| t.1).collect();
        prop_assert_eq!(trace, expected);
    }

    /// Span tracing must be write-only exactly like collectors: a run
    /// with an enabled tracer produces the same fitness trajectory,
    /// timing, and accounting as the untraced `NullCollector` run —
    /// and the recorded spans are well-formed (completion-ordered end
    /// times, the property `trace_check` validates on exported files).
    #[test]
    fn tracing_leaves_the_run_bit_identical(
        env_index in 0usize..3,
        backend_index in 0usize..3,
        seed in 0u64..1_000,
        threads in 1usize..4,
    ) {
        let env = ENVS[env_index];
        let kind = BackendKind::ALL[backend_index];

        let plain = E3Platform::new(quick_config(env), kind, seed)
            .run()
            .expect("quick populations are feed-forward");
        let tracer = Tracer::enabled();
        let mut config = quick_config(env);
        config.threads = threads;
        let mut traced_platform = E3Platform::new(config, kind, seed);
        traced_platform.set_tracer(tracer.clone());
        let traced = traced_platform
            .run()
            .expect("quick populations are feed-forward");

        prop_assert_eq!(&plain, &traced);
        let spans = tracer.spans();
        prop_assert!(!spans.is_empty(), "enabled tracer records spans");
        let mut prev_end = 0u64;
        for span in &spans {
            let end = span.start_us + span.dur_us;
            prop_assert!(end >= prev_end, "spans are completion-ordered");
            prev_end = end;
        }
        prop_assert_eq!(
            spans.iter().filter(|s| s.name == "run").count(), 1,
            "exactly one run span"
        );
        prop_assert_eq!(
            spans.iter().filter(|s| s.name == "generation").count(),
            plain.generations_run,
            "one generation span per generation"
        );
    }
}

/// Validates every line of an NDJSON stream against the pinned wire
/// format and returns the record kinds in stream order.
fn validate_ndjson_stream(text: &str) -> Vec<&'static str> {
    let lines: Vec<&str> = text.lines().collect();
    let mut kinds = Vec::new();
    for line in &lines {
        let value: serde_json::Value = serde_json::from_str(line).expect("valid JSON per line");
        if let Some(eval) = value.get("Eval") {
            for key in [
                "generation",
                "backend",
                "env",
                "population",
                "eval_seconds",
                "env_seconds",
                "total_steps",
                "best_fitness",
                "mean_fitness",
                "hw",
            ] {
                assert!(eval.get(key).is_some(), "Eval record missing {key}: {line}");
            }
            let hw = eval.get("hw").unwrap();
            for key in [
                "total_cycles",
                "pe_active_cycles",
                "pu_utilization",
                "steps",
            ] {
                assert!(hw.get(key).is_some(), "HwCounters missing {key}");
            }
            kinds.push("Eval");
        } else if let Some(generation) = value.get("Generation") {
            for key in [
                "generation",
                "backend",
                "env",
                "best_fitness",
                "species",
                "modeled_seconds",
                "split",
            ] {
                assert!(
                    generation.get(key).is_some(),
                    "Generation record missing {key}"
                );
            }
            kinds.push("Generation");
        } else if let Some(exec) = value.get("Exec") {
            for key in [
                "generation",
                "backend",
                "workers",
                "shards",
                "shard_seconds",
                "steal_count",
                "cache_hits",
                "cache_misses",
                "cache_entries",
                "cache_evictions",
                "cache_hit_rate",
                "worker_utilization",
                "queue_depths",
                "wall_seconds",
            ] {
                assert!(exec.get(key).is_some(), "Exec record missing {key}: {line}");
            }
            kinds.push("Exec");
        } else if let Some(util) = value.get("Utilization") {
            for key in [
                "backend",
                "env",
                "num_pu",
                "num_pe",
                "per_pu",
                "per_pe",
                "weight_buffer_hwm_bytes",
                "value_buffer_hwm_slots",
                "dma_bytes",
                "total_cycles",
            ] {
                assert!(
                    util.get(key).is_some(),
                    "Utilization record missing {key}: {line}"
                );
            }
            let row = util
                .get("per_pu")
                .unwrap()
                .as_array()
                .expect("per_pu is an array")
                .first()
                .expect("at least one PU row");
            for key in ["pu", "busy_cycles", "idle_cycles", "stall_cycles"] {
                assert!(row.get(key).is_some(), "PuCycleRow missing {key}");
            }
            let row = util
                .get("per_pe")
                .unwrap()
                .as_array()
                .expect("per_pe is an array")
                .first()
                .expect("at least one PE row");
            for key in ["pe", "busy_cycles", "idle_cycles"] {
                assert!(row.get(key).is_some(), "PeCycleRow missing {key}");
            }
            kinds.push("Utilization");
        } else if let Some(checkpoint) = value.get("Checkpoint") {
            for key in [
                "generation",
                "backend",
                "env",
                "path",
                "bytes",
                "best_fitness",
            ] {
                assert!(
                    checkpoint.get(key).is_some(),
                    "Checkpoint record missing {key}: {line}"
                );
            }
            assert!(
                checkpoint.get("bytes").unwrap().as_u64().unwrap_or(0) > 0,
                "checkpoints report their on-disk size"
            );
            kinds.push("Checkpoint");
        } else if let Some(resume) = value.get("Resume") {
            for key in ["generation", "backend", "env", "path", "skipped_corrupt"] {
                assert!(
                    resume.get(key).is_some(),
                    "Resume record missing {key}: {line}"
                );
            }
            kinds.push("Resume");
        } else if let Some(generalization) = value.get("Generalization") {
            for key in [
                "generation",
                "backend",
                "env",
                "train_fitness",
                "holdout_fitness",
                "holdout_scenarios",
                "holdout_min",
                "holdout_max",
                "holdout_std",
                "gap",
            ] {
                assert!(
                    generalization.get(key).is_some(),
                    "Generalization record missing {key}: {line}"
                );
            }
            assert!(
                generalization
                    .get("holdout_scenarios")
                    .unwrap()
                    .as_u64()
                    .unwrap_or(0)
                    > 0,
                "generalization passes sample at least one scenario"
            );
            kinds.push("Generalization");
        } else if let Some(summary) = value.get("Summary") {
            for key in [
                "backend",
                "env",
                "generations",
                "solved",
                "best_fitness",
                "modeled_seconds",
                "speedup_vs_cpu",
                "energy_joules",
                "split",
            ] {
                assert!(summary.get(key).is_some(), "Summary record missing {key}");
            }
            assert!(
                summary
                    .get("energy_joules")
                    .unwrap()
                    .as_f64()
                    .unwrap_or(0.0)
                    > 0.0,
                "platform runs report modeled energy"
            );
            kinds.push("Summary");
        } else {
            panic!("unknown record kind: {line}");
        }

        // Every line round-trips through the typed event.
        let event: TelemetryEvent = serde_json::from_str(line).unwrap();
        assert_eq!(serde_json::from_str::<serde_json::Value>(line).unwrap(), {
            let json = serde_json::to_string(&event).unwrap();
            serde_json::from_str::<serde_json::Value>(&json).unwrap()
        });
    }
    kinds
}

/// Pins the NDJSON wire format: record kinds, required keys, the
/// presence of hardware counters on INAX evaluations, and the
/// checkpoint/resume records a persisted run adds to the stream.
#[test]
fn ndjson_schema_is_stable() {
    let dir = std::env::temp_dir().join(format!("e3-ndjson-schema-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let mut config = quick_config(EnvId::CartPole);
    config.checkpoint = Some(CheckpointPolicy::new(dir.to_string_lossy().into_owned()).every(1));

    let mut sink = NdjsonWriter::new(Vec::new());
    E3Platform::new(config.clone(), BackendKind::Inax, 7)
        .run_with(&mut sink)
        .unwrap();
    let text = String::from_utf8(sink.into_inner()).unwrap();
    assert!(
        text.lines().count() >= 3,
        "at least eval + generation + summary"
    );
    let kinds = validate_ndjson_stream(&text);

    assert_eq!(kinds.last(), Some(&"Summary"), "summary closes the stream");
    assert_eq!(kinds.iter().filter(|k| **k == "Summary").count(), 1);
    assert_eq!(
        kinds.iter().filter(|k| **k == "Utilization").count(),
        1,
        "INAX runs emit exactly one utilization record"
    );
    assert_eq!(
        kinds[kinds.len() - 2],
        "Utilization",
        "utilization precedes the summary"
    );
    // `every(1)` checkpoints once per generation, right after the
    // Generation record.
    assert_eq!(
        kinds.iter().filter(|k| **k == "Checkpoint").count(),
        kinds.iter().filter(|k| **k == "Generation").count(),
        "one checkpoint per generation at every(1)"
    );
    for pair in kinds.windows(2) {
        if pair[1] == "Checkpoint" {
            assert_eq!(pair[0], "Generation", "checkpoints follow generations");
        }
    }
    assert!(!kinds.contains(&"Resume"), "a fresh run never resumes");

    // The resumed stream opens with a Resume record and closes with
    // the same Summary an uninterrupted run would emit.
    let mut resumed_sink = NdjsonWriter::new(Vec::new());
    E3Platform::resume(config, BackendKind::Inax, 7)
        .unwrap()
        .expect("checkpoints on disk")
        .run_with(&mut resumed_sink)
        .unwrap();
    let resumed_text = String::from_utf8(resumed_sink.into_inner()).unwrap();
    let resumed_kinds = validate_ndjson_stream(&resumed_text);
    assert_eq!(
        resumed_kinds.first(),
        Some(&"Resume"),
        "resume opens the stream"
    );
    assert_eq!(resumed_kinds.last(), Some(&"Summary"));
    std::fs::remove_dir_all(&dir).ok();
}

/// Pins the `Generalization` record on the wire: a run with a held-out
/// distribution streams one schema-valid record per holdout cadence
/// tick, placed between the Exec and Generation records of its
/// generation, and the rest of the stream keeps its shape.
#[test]
fn ndjson_schema_covers_generalization_records() {
    use e3_envs::ScenarioDistribution;
    use e3_platform::{HoldoutConfig, ScenarioConfig};

    let mut config = quick_config(EnvId::CartPole);
    config.scenario = ScenarioConfig::default()
        .train(ScenarioDistribution::moderate())
        .scenarios_per_eval(2)
        .holdout(HoldoutConfig::new(ScenarioDistribution::shifted()).scenarios(4));

    let mut sink = NdjsonWriter::new(Vec::new());
    E3Platform::new(config, BackendKind::Inax, 7)
        .run_with(&mut sink)
        .unwrap();
    let text = String::from_utf8(sink.into_inner()).unwrap();
    let kinds = validate_ndjson_stream(&text);

    let generalizations = kinds.iter().filter(|k| **k == "Generalization").count();
    let generations = kinds.iter().filter(|k| **k == "Generation").count();
    assert_eq!(
        generalizations, generations,
        "default cadence emits one generalization pass per generation"
    );
    for window in kinds.windows(2) {
        if window[1] == "Generalization" {
            assert_eq!(
                window[0], "Exec",
                "generalization follows the generation's exec record"
            );
        }
    }
    assert_eq!(kinds.last(), Some(&"Summary"), "summary closes the stream");
}

/// A recurrent genome is reported as a typed error end-to-end through
/// `E3Platform::run`, not a panic (regression test for the fallible
/// backend API).
#[test]
fn recurrent_genome_surfaces_as_run_error() {
    use e3_neat::{InnovationTracker, NodeKind};

    let platform = E3Platform::new(quick_config(EnvId::CartPole), BackendKind::Cpu, 2);
    let genome = platform.population().genomes()[0].clone();
    let mut cyclic = genome;
    let mut tracker = InnovationTracker::with_reserved_nodes(cyclic.nodes().len());
    let output = cyclic
        .nodes()
        .iter()
        .find(|n| n.kind == NodeKind::Output)
        .expect("genome has an output node")
        .id;
    cyclic
        .add_connection_unchecked(output, output, 0.5, &mut tracker)
        .expect("self-loop is structurally new");

    let mut backend = BackendKind::Cpu.builder().build();
    let err = backend
        .try_evaluate_population(&[cyclic], EnvId::CartPole, 0)
        .expect_err("cycle must be rejected");
    match err {
        EvalError::NotFeedForward { genome_index, .. } => assert_eq!(genome_index, 0),
        other => panic!("expected NotFeedForward, got {other:?}"),
    }
    // And the platform-level wrapper carries it as RunError::Eval.
    let run_err = RunError::from(err);
    assert!(matches!(
        run_err,
        RunError::Eval(EvalError::NotFeedForward { .. })
    ));
}

/// Forwarding through `&mut dyn Collector` and nested collectors keeps
/// event order.
#[test]
fn collector_forwarding_preserves_order() {
    let mut inner = MemoryCollector::new();
    {
        let mut via_ref: &mut dyn Collector = &mut inner;
        E3Platform::new(quick_config(EnvId::Pendulum), BackendKind::Gpu, 13)
            .run_with(&mut via_ref)
            .unwrap();
    }
    let kinds: Vec<&str> = inner
        .events()
        .iter()
        .map(|event| match event {
            TelemetryEvent::Eval(_) => "eval",
            TelemetryEvent::Exec(_) => "exec",
            TelemetryEvent::Jit(_) => "jit",
            TelemetryEvent::Generation(_) => "generation",
            TelemetryEvent::Utilization(_) => "utilization",
            TelemetryEvent::Checkpoint(_) => "checkpoint",
            TelemetryEvent::Resume(_) => "resume",
            TelemetryEvent::Island(_) => "island",
            TelemetryEvent::Migration(_) => "migration",
            TelemetryEvent::Generalization(_) => "generalization",
            TelemetryEvent::Summary(_) => "summary",
        })
        .collect();
    assert!(kinds.len() >= 4);
    assert_eq!(kinds.last(), Some(&"summary"));
    for triple in kinds[..kinds.len() - 1].chunks(3) {
        assert_eq!(
            triple,
            ["eval", "exec", "generation"],
            "each generation emits eval, exec, generation in order"
        );
    }
}
