//! Evaluation backends: E3-CPU, E3-GPU, and E3-INAX.
//!
//! A backend owns the paper's "evaluate" phase: run every genome of a
//! generation through its environment episode and report fitness plus
//! modeled time. All backends are **functionally identical** — same
//! fitness for the same seed — and differ only in how the inference is
//! executed and therefore how long it takes (paper §VI-A's three
//! settings).
//!
//! The primary entry point is the fallible
//! [`EvalBackend::try_evaluate_population`]: a genome that cannot be
//! lowered to a feed-forward network surfaces as
//! [`EvalError::NotFeedForward`] instead of a panic, so callers (the
//! platform loop, sweeps, long benchmark campaigns) can decide how to
//! react. Backends are constructed either directly or through the
//! unified [`BackendBuilder`] (mirroring `InaxConfig::builder()`),
//! which yields the type-erased [`AnyBackend`].

use crate::timing::{GpuCostModel, SwCostModel};
use e3_envs::{decode_action, EnvId, Environment};
use e3_inax::{EpisodeRunReport, InaxAccelerator, InaxConfig, IrregularNet};
use e3_neat::{DecodeError, Genome, Network};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Which backend executes "evaluate".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BackendKind {
    /// Software-only baseline (paper: E3-CPU).
    Cpu,
    /// GPU offload model (paper: E3-GPU).
    Gpu,
    /// INAX accelerator simulator (paper: E3-INAX).
    Inax,
}

impl BackendKind {
    /// All backends in the paper's comparison order.
    pub const ALL: [BackendKind; 3] = [BackendKind::Cpu, BackendKind::Gpu, BackendKind::Inax];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Cpu => "E3-CPU",
            BackendKind::Gpu => "E3-GPU",
            BackendKind::Inax => "E3-INAX",
        }
    }

    /// Starts a [`BackendBuilder`] for this kind with default cost
    /// models.
    pub fn builder(self) -> BackendBuilder {
        BackendBuilder::new(self)
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error produced when parsing a [`BackendKind`] from a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBackendKindError {
    input: String,
}

impl fmt::Display for ParseBackendKindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown backend {:?} (expected one of: cpu, gpu, inax)",
            self.input
        )
    }
}

impl std::error::Error for ParseBackendKindError {}

impl FromStr for BackendKind {
    type Err = ParseBackendKindError;

    /// Accepts the paper names (`"E3-CPU"`) and the bare kinds
    /// (`"cpu"`), case-insensitively.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "cpu" | "e3-cpu" => Ok(BackendKind::Cpu),
            "gpu" | "e3-gpu" => Ok(BackendKind::Gpu),
            "inax" | "e3-inax" => Ok(BackendKind::Inax),
            _ => Err(ParseBackendKindError {
                input: s.to_string(),
            }),
        }
    }
}

/// Error produced when a population cannot be evaluated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A genome could not be lowered to a feed-forward network (the
    /// only phenotype every backend can execute).
    NotFeedForward {
        /// Index of the offending genome in the evaluated slice.
        genome_index: usize,
        /// Why decoding failed.
        reason: DecodeError,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::NotFeedForward {
                genome_index,
                reason,
            } => write!(f, "genome {genome_index} is not feed-forward: {reason}"),
        }
    }
}

impl std::error::Error for EvalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EvalError::NotFeedForward { reason, .. } => Some(reason),
        }
    }
}

/// Result of evaluating one generation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalOutcome {
    /// Fitness per genome, in population order.
    pub fitnesses: Vec<f64>,
    /// Episode length per genome.
    pub steps_per_genome: Vec<u64>,
    /// Modeled seconds spent on NN inference (the backend's share).
    pub eval_seconds: f64,
    /// Modeled seconds of CPU-side environment stepping.
    pub env_seconds: f64,
    /// Total environment steps across the generation.
    pub total_steps: u64,
    /// Accelerator accounting (INAX backend only).
    pub hw_report: Option<EpisodeRunReport>,
}

/// The "evaluate" phase executor.
pub trait EvalBackend {
    /// Backend identity.
    fn kind(&self) -> BackendKind;

    /// Evaluates every genome on one episode of `env` started from
    /// `episode_seed`, returning fitnesses and modeled timing, or an
    /// [`EvalError`] if any genome cannot be executed.
    fn try_evaluate_population(
        &mut self,
        genomes: &[Genome],
        env: EnvId,
        episode_seed: u64,
    ) -> Result<EvalOutcome, EvalError>;

    /// Panicking convenience wrapper around
    /// [`EvalBackend::try_evaluate_population`], kept for source
    /// compatibility with the pre-`Result` API.
    ///
    /// # Panics
    ///
    /// Panics if evaluation fails (e.g. a genome is not feed-forward).
    #[deprecated(note = "use `try_evaluate_population` and handle `EvalError`")]
    fn evaluate_population(
        &mut self,
        genomes: &[Genome],
        env: EnvId,
        episode_seed: u64,
    ) -> EvalOutcome {
        match self.try_evaluate_population(genomes, env, episode_seed) {
            Ok(outcome) => outcome,
            Err(err) => panic!("population evaluation failed: {err}"),
        }
    }
}

/// Runs one decoded network's episode in software, returning
/// `(fitness, steps)`.
fn run_software_episode(
    net: &mut Network,
    env: &mut dyn Environment,
    episode_seed: u64,
) -> (f64, u64) {
    let space = env.action_space();
    let mut obs = env.reset(episode_seed);
    let mut fitness = 0.0;
    let mut steps = 0u64;
    loop {
        let outputs = net.activate(&obs);
        let action = decode_action(&outputs, &space);
        let step = env.step(&action);
        fitness += step.reward;
        steps += 1;
        obs = step.observation;
        if step.terminated || step.truncated {
            return (fitness, steps);
        }
    }
}

/// E3-CPU: software evaluation with the interpreted-runtime cost
/// model. Optionally evaluates genomes on multiple host threads —
/// NE's embarrassing parallelism is one of the properties the paper
/// cites ([35], [43]) — without changing the *modeled* single-CPU
/// time, so timing comparisons stay faithful to the baseline platform.
#[derive(Debug, Clone, Default)]
pub struct CpuBackend {
    model: SwCostModel,
    threads: usize,
}

impl CpuBackend {
    /// Creates the backend with the given cost model (single-threaded
    /// host execution).
    pub fn new(model: SwCostModel) -> Self {
        CpuBackend { model, threads: 1 }
    }

    /// Creates the backend with host-side parallel evaluation across
    /// `threads` worker threads. Fitness values are identical to the
    /// sequential backend (each genome's episode is independent and
    /// deterministic); only the harness's wall-clock changes.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn with_threads(model: SwCostModel, threads: usize) -> Self {
        assert!(threads > 0, "need at least one worker thread");
        CpuBackend { model, threads }
    }
}

/// Per-genome `(fitness, steps, inference_seconds)` rows for one chunk
/// of the population, or the first decode failure within it.
type ChunkResult = Result<Vec<(f64, u64, f64)>, EvalError>;

impl CpuBackend {
    /// Evaluates a chunk of genomes sequentially, returning per-genome
    /// `(fitness, steps, inference_seconds)`. `base_index` locates the
    /// chunk in the full population for error reporting.
    fn run_chunk(
        model: &SwCostModel,
        genomes: &[Genome],
        env_id: EnvId,
        episode_seed: u64,
        base_index: usize,
    ) -> ChunkResult {
        let mut env = env_id.make();
        genomes
            .iter()
            .enumerate()
            .map(|(offset, genome)| {
                let mut net = genome
                    .decode()
                    .map_err(|reason| EvalError::NotFeedForward {
                        genome_index: base_index + offset,
                        reason,
                    })?;
                let per_inference = model.inference_seconds(&net);
                let (fitness, steps) = run_software_episode(&mut net, env.as_mut(), episode_seed);
                Ok((fitness, steps, per_inference * steps as f64))
            })
            .collect()
    }
}

impl EvalBackend for CpuBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Cpu
    }

    fn try_evaluate_population(
        &mut self,
        genomes: &[Genome],
        env_id: EnvId,
        episode_seed: u64,
    ) -> Result<EvalOutcome, EvalError> {
        let results: Vec<(f64, u64, f64)> = if self.threads <= 1 || genomes.len() < 2 {
            Self::run_chunk(&self.model, genomes, env_id, episode_seed, 0)?
        } else {
            let chunk_len = genomes.len().div_ceil(self.threads);
            let model = self.model;
            let chunks: Vec<ChunkResult> = std::thread::scope(|scope| {
                let handles: Vec<_> = genomes
                    .chunks(chunk_len)
                    .enumerate()
                    .map(|(chunk_idx, chunk)| {
                        scope.spawn(move || {
                            Self::run_chunk(
                                &model,
                                chunk,
                                env_id,
                                episode_seed,
                                chunk_idx * chunk_len,
                            )
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("worker panicked"))
                    .collect()
            });
            let mut merged = Vec::with_capacity(genomes.len());
            for chunk in chunks {
                merged.extend(chunk?);
            }
            merged
        };
        let mut fitnesses = Vec::with_capacity(genomes.len());
        let mut steps_per_genome = Vec::with_capacity(genomes.len());
        let mut eval_seconds = 0.0;
        let mut total_steps = 0u64;
        for (fitness, steps, seconds) in results {
            fitnesses.push(fitness);
            steps_per_genome.push(steps);
            eval_seconds += seconds;
            total_steps += steps;
        }
        Ok(EvalOutcome {
            fitnesses,
            steps_per_genome,
            eval_seconds,
            env_seconds: total_steps as f64 * self.model.sec_per_env_step,
            total_steps,
            hw_report: None,
        })
    }
}

/// E3-GPU: functionally identical to software evaluation, but timed
/// with the launch-bound GPU cost model.
#[derive(Debug, Clone, Default)]
pub struct GpuBackend {
    sw: SwCostModel,
    gpu: GpuCostModel,
}

impl GpuBackend {
    /// Creates the backend with the given cost models (`sw` prices the
    /// CPU-side env stepping).
    pub fn new(sw: SwCostModel, gpu: GpuCostModel) -> Self {
        GpuBackend { sw, gpu }
    }
}

impl EvalBackend for GpuBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Gpu
    }

    fn try_evaluate_population(
        &mut self,
        genomes: &[Genome],
        env_id: EnvId,
        episode_seed: u64,
    ) -> Result<EvalOutcome, EvalError> {
        let mut env = env_id.make();
        let mut fitnesses = Vec::with_capacity(genomes.len());
        let mut steps_per_genome = Vec::with_capacity(genomes.len());
        let mut eval_seconds = 0.0;
        let mut total_steps = 0u64;
        for (genome_index, genome) in genomes.iter().enumerate() {
            let mut net = genome
                .decode()
                .map_err(|reason| EvalError::NotFeedForward {
                    genome_index,
                    reason,
                })?;
            let per_inference = self.gpu.inference_seconds(&net);
            let (fitness, steps) = run_software_episode(&mut net, env.as_mut(), episode_seed);
            fitnesses.push(fitness);
            steps_per_genome.push(steps);
            eval_seconds += per_inference * steps as f64;
            total_steps += steps;
        }
        Ok(EvalOutcome {
            fitnesses,
            steps_per_genome,
            eval_seconds,
            env_seconds: total_steps as f64 * self.sw.sec_per_env_step,
            total_steps,
            hw_report: None,
        })
    }
}

/// E3-INAX: batches the population onto the INAX simulator, one
/// individual per PU, and drives the closed CPU↔FPGA loop of paper
/// Fig. 5.
#[derive(Debug)]
pub struct InaxBackend {
    config: InaxConfig,
    sw: SwCostModel,
}

impl InaxBackend {
    /// Creates the backend. `sw` prices the CPU-side env stepping (the
    /// env stays a CPU program in all settings).
    pub fn new(config: InaxConfig, sw: SwCostModel) -> Self {
        InaxBackend { config, sw }
    }

    /// The accelerator configuration.
    pub fn config(&self) -> &InaxConfig {
        &self.config
    }
}

impl EvalBackend for InaxBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Inax
    }

    fn try_evaluate_population(
        &mut self,
        genomes: &[Genome],
        env_id: EnvId,
        episode_seed: u64,
    ) -> Result<EvalOutcome, EvalError> {
        let nets: Vec<IrregularNet> = genomes
            .iter()
            .enumerate()
            .map(|(genome_index, g)| {
                IrregularNet::try_from(g).map_err(|reason| EvalError::NotFeedForward {
                    genome_index,
                    reason,
                })
            })
            .collect::<Result<_, _>>()?;
        let mut accelerator = InaxAccelerator::new(self.config.clone());
        let num_pu = self.config.num_pu;
        let mut fitnesses = vec![0.0f64; genomes.len()];
        let mut steps_per_genome = vec![0u64; genomes.len()];
        let mut total_steps = 0u64;

        for (batch_idx, batch) in nets.chunks(num_pu).enumerate() {
            let base = batch_idx * num_pu;
            accelerator.load_batch(batch.to_vec());
            // One environment instance per resident individual.
            let mut envs: Vec<Box<dyn Environment>> =
                (0..batch.len()).map(|_| env_id.make()).collect();
            let space = envs[0].action_space();
            let mut observations: Vec<Option<Vec<f64>>> = envs
                .iter_mut()
                .map(|e| Some(e.reset(episode_seed)))
                .collect();
            while observations.iter().any(Option::is_some) {
                let outputs = accelerator.step(&observations);
                for (i, output) in outputs.into_iter().enumerate() {
                    let Some(out) = output else { continue };
                    let action = decode_action(&out, &space);
                    let step = envs[i].step(&action);
                    fitnesses[base + i] += step.reward;
                    steps_per_genome[base + i] += 1;
                    total_steps += 1;
                    observations[i] = if step.terminated || step.truncated {
                        None
                    } else {
                        Some(step.observation)
                    };
                }
            }
            accelerator.unload_batch();
        }

        let report = accelerator.report();
        Ok(EvalOutcome {
            fitnesses,
            steps_per_genome,
            eval_seconds: self.config.cycles_to_seconds(report.total_cycles),
            env_seconds: total_steps as f64 * self.sw.sec_per_env_step,
            total_steps,
            hw_report: Some(report),
        })
    }
}

/// A backend of any kind behind one concrete type.
///
/// This is what [`BackendBuilder::build`] produces and what
/// `E3Platform` runs on: enum dispatch instead of `Box<dyn>` keeps the
/// platform `Debug` and cheap to construct in sweeps.
#[derive(Debug)]
pub enum AnyBackend {
    /// Software baseline.
    Cpu(CpuBackend),
    /// GPU offload model.
    Gpu(GpuBackend),
    /// INAX accelerator simulator.
    Inax(InaxBackend),
}

impl EvalBackend for AnyBackend {
    fn kind(&self) -> BackendKind {
        match self {
            AnyBackend::Cpu(_) => BackendKind::Cpu,
            AnyBackend::Gpu(_) => BackendKind::Gpu,
            AnyBackend::Inax(_) => BackendKind::Inax,
        }
    }

    fn try_evaluate_population(
        &mut self,
        genomes: &[Genome],
        env: EnvId,
        episode_seed: u64,
    ) -> Result<EvalOutcome, EvalError> {
        match self {
            AnyBackend::Cpu(b) => b.try_evaluate_population(genomes, env, episode_seed),
            AnyBackend::Gpu(b) => b.try_evaluate_population(genomes, env, episode_seed),
            AnyBackend::Inax(b) => b.try_evaluate_population(genomes, env, episode_seed),
        }
    }
}

/// Unified builder for any evaluation backend, mirroring
/// `InaxConfig::builder()`.
///
/// # Example
///
/// ```
/// use e3_platform::{BackendBuilder, BackendKind, EvalBackend};
/// use e3_inax::InaxConfig;
///
/// let mut backend = BackendBuilder::new(BackendKind::Inax)
///     .inax(InaxConfig::builder().num_pu(8).num_pe(2).build())
///     .build();
/// assert_eq!(backend.kind(), BackendKind::Inax);
/// ```
#[derive(Debug, Clone)]
pub struct BackendBuilder {
    kind: BackendKind,
    sw: SwCostModel,
    gpu: GpuCostModel,
    inax: InaxConfig,
    threads: usize,
}

impl BackendBuilder {
    /// Starts a builder for `kind` with default cost models and
    /// single-threaded host execution.
    pub fn new(kind: BackendKind) -> Self {
        BackendBuilder {
            kind,
            sw: SwCostModel::default(),
            gpu: GpuCostModel::default(),
            inax: InaxConfig::default(),
            threads: 1,
        }
    }

    /// Sets the software cost model (used by every backend for the
    /// CPU-side env stepping).
    pub fn sw(mut self, model: SwCostModel) -> Self {
        self.sw = model;
        self
    }

    /// Sets the GPU cost model (E3-GPU only).
    pub fn gpu(mut self, model: GpuCostModel) -> Self {
        self.gpu = model;
        self
    }

    /// Sets the INAX hardware configuration (E3-INAX only).
    pub fn inax(mut self, config: InaxConfig) -> Self {
        self.inax = config;
        self
    }

    /// Sets the number of host worker threads (E3-CPU only).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Builds the backend.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn build(self) -> AnyBackend {
        match self.kind {
            BackendKind::Cpu => AnyBackend::Cpu(CpuBackend::with_threads(self.sw, self.threads)),
            BackendKind::Gpu => AnyBackend::Gpu(GpuBackend::new(self.sw, self.gpu)),
            BackendKind::Inax => AnyBackend::Inax(InaxBackend::new(self.inax, self.sw)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use e3_neat::{NeatConfig, Population};

    fn genomes(env: EnvId, n: usize) -> Vec<Genome> {
        let config = NeatConfig::builder(env.observation_size(), env.policy_outputs())
            .population_size(n)
            .build();
        Population::new(config, 3).genomes().to_vec()
    }

    fn eval(backend: &mut dyn EvalBackend, pop: &[Genome], env: EnvId, seed: u64) -> EvalOutcome {
        backend
            .try_evaluate_population(pop, env, seed)
            .expect("population is feed-forward")
    }

    #[test]
    fn all_backends_agree_on_fitness() {
        let pop = genomes(EnvId::CartPole, 12);
        let mut cpu = CpuBackend::default();
        let mut gpu = GpuBackend::default();
        let mut inax = InaxBackend::new(
            InaxConfig::builder().num_pu(5).num_pe(2).build(),
            SwCostModel::default(),
        );
        let a = eval(&mut cpu, &pop, EnvId::CartPole, 7);
        let b = eval(&mut gpu, &pop, EnvId::CartPole, 7);
        let c = eval(&mut inax, &pop, EnvId::CartPole, 7);
        assert_eq!(a.fitnesses, b.fitnesses);
        assert_eq!(a.fitnesses, c.fitnesses);
        assert_eq!(a.steps_per_genome, c.steps_per_genome);
    }

    #[test]
    fn gpu_eval_is_slower_and_inax_faster_than_cpu() {
        let pop = genomes(EnvId::CartPole, 12);
        let mut cpu = CpuBackend::default();
        let mut gpu = GpuBackend::default();
        let mut inax = InaxBackend::new(
            InaxConfig::builder().num_pu(12).num_pe(2).build(),
            SwCostModel::default(),
        );
        let a = eval(&mut cpu, &pop, EnvId::CartPole, 7);
        let b = eval(&mut gpu, &pop, EnvId::CartPole, 7);
        let c = eval(&mut inax, &pop, EnvId::CartPole, 7);
        assert!(b.eval_seconds > a.eval_seconds, "GPU must lose (Fig. 9(b))");
        assert!(c.eval_seconds < a.eval_seconds, "INAX must win (Fig. 9(b))");
    }

    #[test]
    fn inax_reports_hw_accounting() {
        let pop = genomes(EnvId::MountainCar, 6);
        let mut inax = InaxBackend::new(
            InaxConfig::builder().num_pu(3).num_pe(3).build(),
            SwCostModel::default(),
        );
        let out = eval(&mut inax, &pop, EnvId::MountainCar, 1);
        let report = out.hw_report.expect("INAX reports HW accounting");
        assert!(report.total_cycles > 0);
        assert!(report.steps > 0);
        assert!(report.pu_utilization.rate() <= 1.0);
        assert_eq!(out.total_steps, out.steps_per_genome.iter().sum::<u64>());
    }

    #[test]
    fn continuous_action_envs_work_on_all_backends() {
        let pop = genomes(EnvId::Pendulum, 4);
        let mut cpu = CpuBackend::default();
        let mut inax = InaxBackend::new(
            InaxConfig::builder().num_pu(4).num_pe(1).build(),
            SwCostModel::default(),
        );
        let a = eval(&mut cpu, &pop, EnvId::Pendulum, 2);
        let c = eval(&mut inax, &pop, EnvId::Pendulum, 2);
        assert_eq!(a.fitnesses, c.fitnesses);
        assert!(
            a.fitnesses.iter().all(|f| *f < 0.0),
            "pendulum rewards are negative"
        );
    }

    #[test]
    fn parallel_cpu_evaluation_matches_sequential() {
        let pop = genomes(EnvId::CartPole, 17); // odd size exercises chunk remainders
        let mut sequential = CpuBackend::default();
        let mut parallel = CpuBackend::with_threads(SwCostModel::default(), 4);
        let a = eval(&mut sequential, &pop, EnvId::CartPole, 9);
        let b = eval(&mut parallel, &pop, EnvId::CartPole, 9);
        assert_eq!(a.fitnesses, b.fitnesses, "order and values preserved");
        assert_eq!(a.steps_per_genome, b.steps_per_genome);
        assert!(
            (a.eval_seconds - b.eval_seconds).abs() < 1e-12,
            "modeled time unchanged"
        );
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        let _ = CpuBackend::with_threads(SwCostModel::default(), 0);
    }

    #[test]
    fn backend_names_match_paper() {
        assert_eq!(BackendKind::Cpu.name(), "E3-CPU");
        assert_eq!(BackendKind::Gpu.name(), "E3-GPU");
        assert_eq!(BackendKind::Inax.name(), "E3-INAX");
        assert_eq!(BackendKind::Inax.to_string(), "E3-INAX");
    }

    #[test]
    fn backend_kind_round_trips_through_strings() {
        for kind in BackendKind::ALL {
            assert_eq!(kind.name().parse::<BackendKind>().unwrap(), kind);
        }
        assert_eq!("cpu".parse::<BackendKind>().unwrap(), BackendKind::Cpu);
        assert_eq!("INAX".parse::<BackendKind>().unwrap(), BackendKind::Inax);
        let err = "tpu".parse::<BackendKind>().unwrap_err();
        assert!(err.to_string().contains("tpu"));
    }

    #[test]
    fn builder_constructs_each_kind() {
        for kind in BackendKind::ALL {
            let backend = kind.builder().build();
            assert_eq!(backend.kind(), kind);
        }
    }

    #[test]
    fn builder_backends_match_direct_construction() {
        let pop = genomes(EnvId::CartPole, 8);
        let mut direct = CpuBackend::default();
        let mut built = BackendKind::Cpu.builder().threads(2).build();
        let a = eval(&mut direct, &pop, EnvId::CartPole, 5);
        let b = eval(&mut built, &pop, EnvId::CartPole, 5);
        assert_eq!(a.fitnesses, b.fitnesses);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_wrapper_still_evaluates() {
        let pop = genomes(EnvId::CartPole, 4);
        let mut cpu = CpuBackend::default();
        let a = cpu.evaluate_population(&pop, EnvId::CartPole, 7);
        let b = eval(&mut cpu, &pop, EnvId::CartPole, 7);
        assert_eq!(a.fitnesses, b.fitnesses);
    }

    /// Adds a recurrent self-loop on an output node, producing a
    /// genome only `RecurrentNetwork` could execute.
    fn make_cyclic(genome: &Genome) -> Genome {
        use e3_neat::{InnovationTracker, NodeKind};
        let mut cyclic = genome.clone();
        let mut tracker = InnovationTracker::with_reserved_nodes(cyclic.nodes().len());
        let output = cyclic
            .nodes()
            .iter()
            .find(|n| n.kind == NodeKind::Output)
            .expect("genome has an output node")
            .id;
        cyclic
            .add_connection_unchecked(output, output, 0.5, &mut tracker)
            .expect("self-loop is structurally new");
        cyclic
    }

    #[test]
    fn recurrent_genome_reports_not_feed_forward() {
        // Build a genome with a cycle: a feed-forward decode must fail
        // with EvalError::NotFeedForward rather than panic.
        let mut pop = genomes(EnvId::CartPole, 3);
        pop[1] = make_cyclic(&pop[1]);
        for kind in BackendKind::ALL {
            let mut backend = kind.builder().build();
            let err = backend
                .try_evaluate_population(&pop, EnvId::CartPole, 7)
                .expect_err("cyclic genome must be rejected");
            match err {
                EvalError::NotFeedForward { genome_index, .. } => {
                    assert_eq!(
                        genome_index, 1,
                        "index points at the cyclic genome ({kind})"
                    )
                }
            }
        }
    }
}
