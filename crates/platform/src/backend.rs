//! Evaluation backends: E3-CPU, E3-GPU, and E3-INAX.
//!
//! A backend owns the paper's "evaluate" phase: run every genome of a
//! generation through its environment episode and report fitness plus
//! modeled time. All backends are **functionally identical** — same
//! fitness for the same seed — and differ only in how the inference is
//! executed and therefore how long it takes (paper §VI-A's three
//! settings).
//!
//! The primary entry point is the fallible
//! [`EvalBackend::try_evaluate_population`]: a genome that cannot be
//! lowered to a feed-forward network surfaces as
//! [`EvalError::NotFeedForward`] instead of a panic, so callers (the
//! platform loop, sweeps, long benchmark campaigns) can decide how to
//! react. Backends are constructed either directly or through the
//! unified [`BackendBuilder`] (mirroring `InaxConfig::builder()`),
//! which yields the type-erased [`AnyBackend`].

use crate::scenario::{aggregate_fitness, FitnessAggregation, ScenarioSpec};
use crate::timing::{GpuCostModel, SwCostModel};
use e3_envs::{decode_action, Action, EnvId, Environment, ScenarioParams, StepBatch};
use e3_exec::{
    AnyExecutor, ExecError, ExecStats, ExecStatsState, Executor, JitConfig, SharedExecutor,
};
use e3_inax::{EpisodeRunReport, InaxAccelerator, InaxConfig, IrregularNet, UtilizationBreakdown};
use e3_neat::{DecodeError, ForwardPass, Genome, NetPlan, Network, PlanBatch};
use e3_telemetry::Tracer;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

/// Which backend executes "evaluate".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BackendKind {
    /// Software-only baseline (paper: E3-CPU).
    Cpu,
    /// GPU offload model (paper: E3-GPU).
    Gpu,
    /// INAX accelerator simulator (paper: E3-INAX).
    Inax,
}

impl BackendKind {
    /// All backends in the paper's comparison order.
    pub const ALL: [BackendKind; 3] = [BackendKind::Cpu, BackendKind::Gpu, BackendKind::Inax];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Cpu => "E3-CPU",
            BackendKind::Gpu => "E3-GPU",
            BackendKind::Inax => "E3-INAX",
        }
    }

    /// Starts a [`BackendBuilder`] for this kind with default cost
    /// models.
    pub fn builder(self) -> BackendBuilder {
        BackendBuilder::new(self)
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error produced when parsing a [`BackendKind`] from a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBackendKindError {
    input: String,
}

impl fmt::Display for ParseBackendKindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown backend {:?} (expected one of: cpu, gpu, inax)",
            self.input
        )
    }
}

impl std::error::Error for ParseBackendKindError {}

impl FromStr for BackendKind {
    type Err = ParseBackendKindError;

    /// Accepts the paper names (`"E3-CPU"`) and the bare kinds
    /// (`"cpu"`), case-insensitively.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "cpu" | "e3-cpu" => Ok(BackendKind::Cpu),
            "gpu" | "e3-gpu" => Ok(BackendKind::Gpu),
            "inax" | "e3-inax" => Ok(BackendKind::Inax),
            _ => Err(ParseBackendKindError {
                input: s.to_string(),
            }),
        }
    }
}

/// Error produced when a population cannot be evaluated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A genome could not be lowered to a feed-forward network (the
    /// only phenotype every backend can execute).
    NotFeedForward {
        /// Index of the offending genome in the evaluated slice.
        genome_index: usize,
        /// Why decoding failed.
        reason: DecodeError,
    },
    /// The parallel executor failed (a shard task panicked or a worker
    /// thread was lost).
    ExecFailed(ExecError),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::NotFeedForward {
                genome_index,
                reason,
            } => write!(f, "genome {genome_index} is not feed-forward: {reason}"),
            EvalError::ExecFailed(err) => write!(f, "parallel evaluation failed: {err}"),
        }
    }
}

impl From<ExecError> for EvalError {
    fn from(err: ExecError) -> Self {
        EvalError::ExecFailed(err)
    }
}

impl std::error::Error for EvalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EvalError::NotFeedForward { reason, .. } => Some(reason),
            EvalError::ExecFailed(err) => Some(err),
        }
    }
}

/// Result of evaluating one generation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalOutcome {
    /// Fitness per genome, in population order.
    pub fitnesses: Vec<f64>,
    /// Episode length per genome.
    pub steps_per_genome: Vec<u64>,
    /// Modeled seconds spent on NN inference (the backend's share).
    pub eval_seconds: f64,
    /// Modeled seconds of CPU-side environment stepping.
    pub env_seconds: f64,
    /// Total environment steps across the generation.
    pub total_steps: u64,
    /// Accelerator accounting (INAX backend only).
    pub hw_report: Option<EpisodeRunReport>,
    /// Cycle-level per-PU/per-PE utilization accounting (INAX backend
    /// only).
    pub hw_utilization: Option<UtilizationBreakdown>,
}

/// The "evaluate" phase executor.
pub trait EvalBackend {
    /// Backend identity.
    fn kind(&self) -> BackendKind;

    /// Evaluates every genome on one episode of `env` started from
    /// `episode_seed`, returning fitnesses and modeled timing, or an
    /// [`EvalError`] if any genome cannot be executed.
    fn try_evaluate_population(
        &mut self,
        genomes: &[Genome],
        env: EnvId,
        episode_seed: u64,
    ) -> Result<EvalOutcome, EvalError>;

    /// Evaluates every genome through the population-major batched
    /// pipeline where the backend supports it.
    ///
    /// The contract is strict: the returned [`EvalOutcome`] must be
    /// **bit-identical** to [`EvalBackend::try_evaluate_population`]
    /// on the same arguments (with the `fast-math` cargo feature off).
    /// The default implementation simply delegates to the scalar path,
    /// so backends without a batched kernel are automatically
    /// conformant; the software backends (CPU, GPU) override it with
    /// the [`e3_neat::PlanBatch`] + [`e3_envs::BatchEnv`] lockstep
    /// kernel, which shards the population per-worker instead of
    /// per-individual.
    ///
    /// # Errors
    ///
    /// Same as [`EvalBackend::try_evaluate_population`].
    fn try_evaluate_population_batched(
        &mut self,
        genomes: &[Genome],
        env: EnvId,
        episode_seed: u64,
    ) -> Result<EvalOutcome, EvalError> {
        self.try_evaluate_population(genomes, env, episode_seed)
    }

    /// Takes (consumes) the executor statistics of the most recent
    /// successful `try_evaluate_population` call.
    ///
    /// The default returns [`ExecStatsState::Unavailable`]: the backend
    /// runs no executor and can never produce stats. Backends that *do*
    /// run one return [`ExecStatsState::Idle`] when no evaluation has
    /// completed since the last take, and [`ExecStatsState::Ready`]
    /// otherwise — so callers can tell "this backend has no stats to
    /// offer" from "nothing has run yet" instead of both collapsing to
    /// a silently dropped `None`.
    ///
    /// Stats are observability only: they describe the nondeterministic
    /// execution schedule (wall times, steals, cache hits), never the
    /// results, which are bit-identical across thread counts.
    fn take_exec_stats(&mut self) -> ExecStatsState {
        ExecStatsState::Unavailable
    }

    /// Installs a tracer; subsequent evaluations record `shard` /
    /// `individual` / `episode` spans into it. The default ignores the
    /// tracer (backends without instrumentation stay valid). Tracing is
    /// write-only: results are bit-identical with any tracer installed.
    fn set_tracer(&mut self, _tracer: Tracer) {}

    /// Installs the tiered-execution (JIT) policy on the backend's
    /// executor, affecting scalar evaluations from the next call on.
    /// The default ignores the policy — backends without a software
    /// scalar path (e.g. INAX) stay valid — and because the native
    /// tier is bit-identical to the interpreter, installing a policy
    /// can never change results, only speed and telemetry.
    fn set_jit(&mut self, _config: JitConfig) {}
}

/// Runs one network's episode in software, returning
/// `(fitness, steps)`. Generic over the [`ForwardPass`] seam so the
/// same kernel drives the interpreted [`Network`] and the JIT tier's
/// `CompiledPlan` — which are bit-identical by contract, so the episode
/// trajectory cannot depend on the tier.
pub(crate) fn run_software_episode(
    net: &mut dyn ForwardPass,
    env: &mut dyn Environment,
    episode_seed: u64,
) -> (f64, u64) {
    let space = env.action_space();
    let mut obs = env.reset(episode_seed);
    let mut fitness = 0.0;
    let mut steps = 0u64;
    loop {
        let outputs = net.activate_into(&obs);
        let action = decode_action(outputs, &space);
        let step = env.step(&action);
        fitness += step.reward;
        steps += 1;
        obs = step.observation;
        if step.terminated || step.truncated {
            return (fitness, steps);
        }
    }
}

/// Per-genome `(fitness, steps, inference_seconds)` row of a software
/// evaluation, or the decode failure for that genome.
type SoftwareRow = Result<(f64, u64, f64), (usize, DecodeError)>;

/// Population-order `(fitness, steps, inference_seconds)` rows plus the
/// executor's observability counters for the run.
type SoftwareRun = (Vec<(f64, u64, f64)>, ExecStats);

/// Shard size for software evaluation: ~4 shards per worker so work
/// stealing can absorb episode-length imbalance without flooding the
/// queues. Depends only on the population size and worker count, never
/// on timing, so every run produces the same shard plan.
fn software_shard_size(items: usize, workers: usize) -> usize {
    items.div_ceil(workers.max(1) * 4).max(1)
}

/// Evaluates every genome in software on the given executor: decode
/// (through the per-worker cache) then run one episode, pricing each
/// inference with `cost`. Returns per-genome rows in population order
/// plus the executor stats.
///
/// Bit-identical to a serial loop: shard tasks depend only on genome
/// index, and rows are reduced lowest-index-first (see `e3-exec`'s
/// determinism contract).
fn run_software_population<C>(
    exec: &mut AnyExecutor,
    genomes: &[Genome],
    env_id: EnvId,
    episode_seed: u64,
    tracer: Tracer,
    cost: C,
) -> Result<SoftwareRun, EvalError>
where
    C: Fn(&Network) -> f64 + Send + Sync + 'static,
{
    let pop: Arc<[Genome]> = genomes.into();
    let shard_size = software_shard_size(genomes.len(), exec.workers());
    let run = exec.run_shards(genomes.len(), shard_size, move |scratch, range| {
        let mut shard_span = tracer.span("shard", "exec");
        shard_span.arg("start", range.start as f64);
        shard_span.arg("items", range.len() as f64);
        let mut env = env_id.make();
        range
            .map(|i| -> SoftwareRow {
                let mut individual_span = tracer.span("individual", "eval");
                individual_span.arg("genome_index", i as f64);
                // Tier selection: the interpreted network, or (for hot
                // entries under an enabled JIT policy) its natively
                // compiled twin — bit-identical either way.
                let mut tier = scratch
                    .cache()
                    .get_or_tiered(&pop[i])
                    .map_err(|reason| (i, reason))?;
                let per_inference = cost(tier.net());
                let mut episode_span = tracer.start("episode", "env");
                let (fitness, steps) =
                    run_software_episode(tier.forward(), env.as_mut(), episode_seed);
                episode_span.arg("steps", steps as f64);
                episode_span.finish();
                Ok((fitness, steps, per_inference * steps as f64))
            })
            .collect()
    })?;
    let mut rows = Vec::with_capacity(run.results.len());
    for row in run.results {
        match row {
            Ok(values) => rows.push(values),
            // Index-ordered scan: the first error seen is the
            // lowest-indexed one, matching the serial loop's
            // first-failure semantics.
            Err((genome_index, reason)) => {
                return Err(EvalError::NotFeedForward {
                    genome_index,
                    reason,
                })
            }
        }
    }
    Ok((rows, run.stats))
}

/// Shard size for **batched** software evaluation: one coarse shard per
/// worker. Unlike the scalar path (which over-shards 4× for stealing),
/// the batched kernel amortizes per-step overhead across its whole
/// lane set, so bigger batches are strictly better and imbalance is
/// absorbed by lane parking instead of work stealing. Depends only on
/// the population size and worker count, never on timing.
fn batch_shard_size(items: usize, workers: usize) -> usize {
    items.div_ceil(workers.max(1)).max(1)
}

/// Evaluates every genome through the population-major batched
/// pipeline: each shard packs its genomes' [`NetPlan`]s into one
/// [`PlanBatch`], drives all lanes through a [`e3_envs::BatchEnv`] in
/// lockstep, and parks lanes whose episodes finish early.
///
/// Bit-identical to [`run_software_population`] (with `fast-math`
/// off): each lane's FP op order matches its solo execution, parked
/// lanes contribute nothing, plans are priced identically to their
/// decoded networks, and rows come back in population order.
fn run_software_population_batched<C>(
    exec: &mut AnyExecutor,
    genomes: &[Genome],
    env_id: EnvId,
    episode_seed: u64,
    tracer: Tracer,
    cost: C,
) -> Result<SoftwareRun, EvalError>
where
    C: Fn(&NetPlan) -> f64 + Send + Sync + 'static,
{
    let pop: Arc<[Genome]> = genomes.into();
    let shard_size = batch_shard_size(genomes.len(), exec.workers());
    let run = exec.run_shards(genomes.len(), shard_size, move |scratch, range| {
        let mut shard_span = tracer.span("shard", "exec");
        shard_span.arg("start", range.start as f64);
        shard_span.arg("items", range.len() as f64);
        let base = range.start;
        // Decode every resident up front through the worker's plan
        // cache. The cache hands out borrows tied to `&mut self`, so
        // plans are cloned out before batching. On the first decode
        // failure the shard still returns one row per item (the
        // executor asserts that): an `Err` at the failing index and
        // inert rows elsewhere — the index-ordered reduce below then
        // surfaces the lowest-indexed failure, exactly like the
        // scalar path.
        let mut plans = Vec::with_capacity(range.len());
        for i in range.clone() {
            match scratch.cache().get_or_plan(&pop[i]) {
                Ok(plan) => plans.push(plan.clone()),
                Err(reason) => {
                    return range
                        .map(|j| -> SoftwareRow {
                            if j == i {
                                Err((i, reason.clone()))
                            } else {
                                Ok((0.0, 0, 0.0))
                            }
                        })
                        .collect();
                }
            }
        }
        let lanes = plans.len();
        let per_inference: Vec<f64> = plans.iter().map(&cost).collect();
        let plan_refs: Vec<&NetPlan> = plans.iter().collect();
        let batch = PlanBatch::build(&plan_refs);
        let mut env = env_id.make_batch(lanes);
        let space = env.action_space();
        let mut sb = StepBatch::new(lanes, env.observation_size());
        env.reset_batch(&vec![episode_seed; lanes], &mut sb);
        let mut values = vec![0.0; batch.value_buffer_slots()];
        let k = batch.num_outputs();
        let mut outputs = vec![0.0; lanes * k];
        let mut actions: Vec<Action> = vec![Action::Discrete(0); lanes];
        let mut was_active = vec![false; lanes];
        let mut fitness = vec![0.0f64; lanes];
        let mut steps = vec![0u64; lanes];
        // Lockstep episodes interleave, so their spans cannot nest
        // lexically: one explicit timer per lane, finished when its
        // episode parks (same convention as the INAX wave loop).
        let mut episode_timers: Vec<Option<e3_telemetry::SpanTimer>> = (0..lanes)
            .map(|b| {
                let mut timer = tracer.start("episode", "env");
                timer.arg("genome_index", (base + b) as f64);
                Some(timer)
            })
            .collect();
        while !sb.all_parked() {
            batch.activate_batch_into(&sb.observations, &sb.active, &mut values, &mut outputs);
            for b in 0..lanes {
                if sb.active[b] {
                    actions[b] = decode_action(&outputs[b * k..(b + 1) * k], &space);
                    steps[b] += 1;
                }
            }
            was_active.copy_from_slice(&sb.active);
            env.step_batch(&actions, &mut sb);
            for b in 0..lanes {
                // Accumulate only lanes that actually stepped, so the
                // sum is the exact FP sequence of the solo episode.
                if was_active[b] {
                    fitness[b] += sb.rewards[b];
                    if !sb.active[b] {
                        if let Some(mut timer) = episode_timers[b].take() {
                            timer.arg("steps", steps[b] as f64);
                            timer.finish();
                        }
                    }
                }
            }
        }
        (0..lanes)
            .map(|b| Ok((fitness[b], steps[b], per_inference[b] * steps[b] as f64)))
            .collect()
    })?;
    let mut rows = Vec::with_capacity(run.results.len());
    for row in run.results {
        match row {
            Ok(values) => rows.push(values),
            // Index-ordered scan: shards are contiguous ranges and
            // each shard reports its lowest-indexed decode failure,
            // so the first error seen here is the lowest-indexed one
            // — the serial loop's first-failure semantics.
            Err((genome_index, reason)) => {
                return Err(EvalError::NotFeedForward {
                    genome_index,
                    reason,
                })
            }
        }
    }
    Ok((rows, run.stats))
}

/// The per-shard closure state of a scenario evaluation: the sampled
/// worlds, the genome-major episode-seed matrix, and the aggregation,
/// shared immutably across workers.
struct SharedSpec {
    params: Arc<[ScenarioParams]>,
    episode_seeds: Arc<[u64]>,
    aggregation: FitnessAggregation,
}

impl SharedSpec {
    fn new(spec: &ScenarioSpec) -> Self {
        SharedSpec {
            params: spec.params.clone().into(),
            episode_seeds: spec.episode_seeds.clone().into(),
            aggregation: spec.aggregation,
        }
    }

    fn scenarios(&self) -> usize {
        self.params.len()
    }
}

/// Asserts the spec's seed matrix covers the population.
fn check_spec(genomes: &[Genome], spec: &ScenarioSpec) {
    assert!(
        !spec.params.is_empty(),
        "scenario evaluation needs at least one scenario"
    );
    assert_eq!(
        spec.episode_seeds.len(),
        genomes.len() * spec.params.len(),
        "episode-seed matrix must be population × scenarios, genome-major"
    );
}

/// Scalar multi-scenario software evaluation: per genome, run one
/// episode per sampled world and collapse the per-scenario fitnesses
/// with the spec's aggregation. The reference the batched kernel is
/// checked against.
fn run_software_population_scenarios<C>(
    exec: &mut AnyExecutor,
    genomes: &[Genome],
    env_id: EnvId,
    spec: &ScenarioSpec,
    tracer: Tracer,
    cost: C,
) -> Result<SoftwareRun, EvalError>
where
    C: Fn(&Network) -> f64 + Send + Sync + 'static,
{
    check_spec(genomes, spec);
    let pop: Arc<[Genome]> = genomes.into();
    let shared = SharedSpec::new(spec);
    let shard_size = software_shard_size(genomes.len(), exec.workers());
    let run = exec.run_shards(genomes.len(), shard_size, move |scratch, range| {
        let mut shard_span = tracer.span("shard", "exec");
        shard_span.arg("start", range.start as f64);
        shard_span.arg("items", range.len() as f64);
        let k = shared.scenarios();
        range
            .map(|i| -> SoftwareRow {
                let mut individual_span = tracer.span("individual", "eval");
                individual_span.arg("genome_index", i as f64);
                let mut tier = scratch
                    .cache()
                    .get_or_tiered(&pop[i])
                    .map_err(|reason| (i, reason))?;
                let per_inference = cost(tier.net());
                let mut fits = Vec::with_capacity(k);
                let mut genome_steps = 0u64;
                for s in 0..k {
                    let mut env = env_id.make_scenario(&shared.params[s]);
                    let mut episode_span = tracer.start("episode", "env");
                    episode_span.arg("scenario", s as f64);
                    let (fitness, steps) = run_software_episode(
                        tier.forward(),
                        env.as_mut(),
                        shared.episode_seeds[i * k + s],
                    );
                    episode_span.arg("steps", steps as f64);
                    episode_span.finish();
                    fits.push(fitness);
                    genome_steps += steps;
                }
                Ok((
                    aggregate_fitness(&fits, shared.aggregation),
                    genome_steps,
                    per_inference * genome_steps as f64,
                ))
            })
            .collect()
    })?;
    let mut rows = Vec::with_capacity(run.results.len());
    for row in run.results {
        match row {
            Ok(values) => rows.push(values),
            Err((genome_index, reason)) => {
                return Err(EvalError::NotFeedForward {
                    genome_index,
                    reason,
                })
            }
        }
    }
    Ok((rows, run.stats))
}

/// Batched multi-scenario software evaluation: each shard packs
/// `genomes × K` lanes (genome-major, each genome's plan replicated K
/// times) into one [`PlanBatch`] over a heterogeneous-scenario
/// [`e3_envs::BatchEnv`], then aggregates per genome. Bit-identical to
/// [`run_software_population_scenarios`] with `fast-math` off: every
/// lane's FP order matches its scalar twin, and per-genome reduction
/// (aggregation, step sums, pricing) uses the same expressions.
fn run_software_population_scenarios_batched<C>(
    exec: &mut AnyExecutor,
    genomes: &[Genome],
    env_id: EnvId,
    spec: &ScenarioSpec,
    tracer: Tracer,
    cost: C,
) -> Result<SoftwareRun, EvalError>
where
    C: Fn(&NetPlan) -> f64 + Send + Sync + 'static,
{
    check_spec(genomes, spec);
    let pop: Arc<[Genome]> = genomes.into();
    let shared = SharedSpec::new(spec);
    let shard_size = batch_shard_size(genomes.len(), exec.workers());
    let run = exec.run_shards(genomes.len(), shard_size, move |scratch, range| {
        let mut shard_span = tracer.span("shard", "exec");
        shard_span.arg("start", range.start as f64);
        shard_span.arg("items", range.len() as f64);
        let base = range.start;
        let k = shared.scenarios();
        let mut plans = Vec::with_capacity(range.len());
        for i in range.clone() {
            match scratch.cache().get_or_plan(&pop[i]) {
                Ok(plan) => plans.push(plan.clone()),
                Err(reason) => {
                    return range
                        .map(|j| -> SoftwareRow {
                            if j == i {
                                Err((i, reason.clone()))
                            } else {
                                Ok((0.0, 0, 0.0))
                            }
                        })
                        .collect();
                }
            }
        }
        let shard_genomes = plans.len();
        let lanes = shard_genomes * k;
        let per_inference: Vec<f64> = plans.iter().map(&cost).collect();
        // Genome-major lane layout: lane = local_genome * K + scenario.
        let plan_refs: Vec<&NetPlan> = plans
            .iter()
            .flat_map(|plan| std::iter::repeat_n(plan, k))
            .collect();
        let batch = PlanBatch::build(&plan_refs);
        let lane_params: Vec<ScenarioParams> =
            (0..lanes).map(|lane| shared.params[lane % k]).collect();
        let lane_seeds: Vec<u64> = range
            .clone()
            .flat_map(|i| {
                let seeds = &shared.episode_seeds;
                (0..k).map(move |s| seeds[i * k + s])
            })
            .collect();
        let mut env = env_id.make_batch_scenarios(&lane_params);
        let space = env.action_space();
        let mut sb = StepBatch::new(lanes, env.observation_size());
        env.reset_batch(&lane_seeds, &mut sb);
        let mut values = vec![0.0; batch.value_buffer_slots()];
        let outputs_per_lane = batch.num_outputs();
        let mut outputs = vec![0.0; lanes * outputs_per_lane];
        let mut actions: Vec<Action> = vec![Action::Discrete(0); lanes];
        let mut was_active = vec![false; lanes];
        let mut fitness = vec![0.0f64; lanes];
        let mut steps = vec![0u64; lanes];
        let mut episode_timers: Vec<Option<e3_telemetry::SpanTimer>> = (0..lanes)
            .map(|lane| {
                let mut timer = tracer.start("episode", "env");
                timer.arg("genome_index", (base + lane / k) as f64);
                timer.arg("scenario", (lane % k) as f64);
                Some(timer)
            })
            .collect();
        while !sb.all_parked() {
            batch.activate_batch_into(&sb.observations, &sb.active, &mut values, &mut outputs);
            for b in 0..lanes {
                if sb.active[b] {
                    actions[b] = decode_action(
                        &outputs[b * outputs_per_lane..(b + 1) * outputs_per_lane],
                        &space,
                    );
                    steps[b] += 1;
                }
            }
            was_active.copy_from_slice(&sb.active);
            env.step_batch(&actions, &mut sb);
            for b in 0..lanes {
                if was_active[b] {
                    fitness[b] += sb.rewards[b];
                    if !sb.active[b] {
                        if let Some(mut timer) = episode_timers[b].take() {
                            timer.arg("steps", steps[b] as f64);
                            timer.finish();
                        }
                    }
                }
            }
        }
        (0..shard_genomes)
            .map(|g| {
                let fits = &fitness[g * k..(g + 1) * k];
                let genome_steps: u64 = steps[g * k..(g + 1) * k].iter().sum();
                Ok((
                    aggregate_fitness(fits, shared.aggregation),
                    genome_steps,
                    per_inference[g] * genome_steps as f64,
                ))
            })
            .collect()
    })?;
    let mut rows = Vec::with_capacity(run.results.len());
    for row in run.results {
        match row {
            Ok(values) => rows.push(values),
            Err((genome_index, reason)) => {
                return Err(EvalError::NotFeedForward {
                    genome_index,
                    reason,
                })
            }
        }
    }
    Ok((rows, run.stats))
}

/// Reduces software rows into an [`EvalOutcome`], accumulating modeled
/// seconds in population order (the serial summation order).
fn reduce_software_rows(rows: Vec<(f64, u64, f64)>, sec_per_env_step: f64) -> EvalOutcome {
    let mut fitnesses = Vec::with_capacity(rows.len());
    let mut steps_per_genome = Vec::with_capacity(rows.len());
    let mut eval_seconds = 0.0;
    let mut total_steps = 0u64;
    for (fitness, steps, seconds) in rows {
        fitnesses.push(fitness);
        steps_per_genome.push(steps);
        eval_seconds += seconds;
        total_steps += steps;
    }
    EvalOutcome {
        fitnesses,
        steps_per_genome,
        eval_seconds,
        env_seconds: total_steps as f64 * sec_per_env_step,
        total_steps,
        hw_report: None,
        hw_utilization: None,
    }
}

/// E3-CPU: software evaluation with the interpreted-runtime cost
/// model. Optionally evaluates genomes on multiple host threads —
/// NE's embarrassing parallelism is one of the properties the paper
/// cites ([35], [43]) — without changing the *modeled* single-CPU
/// time, so timing comparisons stay faithful to the baseline platform.
#[derive(Debug)]
pub struct CpuBackend {
    model: SwCostModel,
    exec: AnyExecutor,
    last_exec: Option<ExecStats>,
    tracer: Tracer,
}

impl CpuBackend {
    /// Creates the backend with the given cost model (single-threaded
    /// host execution).
    pub fn new(model: SwCostModel) -> Self {
        CpuBackend::with_threads(model, 1)
    }

    /// Creates the backend with host-side parallel evaluation across
    /// `threads` virtual PUs. Fitness values are bit-identical to the
    /// serial backend (see `e3-exec`); only the harness's wall-clock
    /// changes.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn with_threads(model: SwCostModel, threads: usize) -> Self {
        assert!(threads > 0, "need at least one worker thread");
        CpuBackend::with_executor(model, AnyExecutor::new(threads))
    }

    /// Creates the backend on a caller-supplied executor — typically an
    /// [`AnyExecutor::Shared`] handle so many concurrent runs (islands)
    /// time-slice one worker pool. Results are bit-identical to an
    /// exclusive executor of the same width.
    pub fn with_executor(model: SwCostModel, exec: AnyExecutor) -> Self {
        CpuBackend {
            model,
            exec,
            last_exec: None,
            tracer: Tracer::disabled(),
        }
    }

    /// Number of host worker threads.
    pub fn threads(&self) -> usize {
        self.exec.workers()
    }

    /// Evaluates every genome over the spec's K sampled scenarios with
    /// the scalar per-genome loop, aggregating per genome. The
    /// reference for the batched kernel.
    ///
    /// # Errors
    ///
    /// Same as [`EvalBackend::try_evaluate_population`].
    pub fn try_evaluate_population_scenarios(
        &mut self,
        genomes: &[Genome],
        env_id: EnvId,
        spec: &ScenarioSpec,
    ) -> Result<EvalOutcome, EvalError> {
        let model = self.model;
        let (rows, stats) = run_software_population_scenarios(
            &mut self.exec,
            genomes,
            env_id,
            spec,
            self.tracer.clone(),
            move |net| model.inference_seconds(net),
        )?;
        self.last_exec = Some(stats);
        Ok(reduce_software_rows(rows, self.model.sec_per_env_step))
    }

    /// Evaluates every genome over the spec's K sampled scenarios
    /// through the population-major batched pipeline (`genomes × K`
    /// lanes per shard). Bit-identical to
    /// [`CpuBackend::try_evaluate_population_scenarios`] with
    /// `fast-math` off.
    ///
    /// # Errors
    ///
    /// Same as [`EvalBackend::try_evaluate_population`].
    pub fn try_evaluate_population_scenarios_batched(
        &mut self,
        genomes: &[Genome],
        env_id: EnvId,
        spec: &ScenarioSpec,
    ) -> Result<EvalOutcome, EvalError> {
        let model = self.model;
        let (rows, stats) = run_software_population_scenarios_batched(
            &mut self.exec,
            genomes,
            env_id,
            spec,
            self.tracer.clone(),
            move |plan| model.inference_seconds_plan(plan),
        )?;
        self.last_exec = Some(stats);
        Ok(reduce_software_rows(rows, self.model.sec_per_env_step))
    }
}

impl Clone for CpuBackend {
    /// Clones the configuration and shares the installed tracer. An
    /// exclusive executor is re-created at the same width (private
    /// pools are never shared implicitly); a shared-pool handle stays
    /// attached to the same pool.
    fn clone(&self) -> Self {
        let mut clone = CpuBackend::with_executor(self.model, self.exec.fork());
        clone.tracer = self.tracer.clone();
        clone
    }
}

impl Default for CpuBackend {
    fn default() -> Self {
        CpuBackend::new(SwCostModel::default())
    }
}

impl EvalBackend for CpuBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Cpu
    }

    fn try_evaluate_population(
        &mut self,
        genomes: &[Genome],
        env_id: EnvId,
        episode_seed: u64,
    ) -> Result<EvalOutcome, EvalError> {
        let model = self.model;
        let (rows, stats) = run_software_population(
            &mut self.exec,
            genomes,
            env_id,
            episode_seed,
            self.tracer.clone(),
            move |net| model.inference_seconds(net),
        )?;
        self.last_exec = Some(stats);
        Ok(reduce_software_rows(rows, self.model.sec_per_env_step))
    }

    fn try_evaluate_population_batched(
        &mut self,
        genomes: &[Genome],
        env_id: EnvId,
        episode_seed: u64,
    ) -> Result<EvalOutcome, EvalError> {
        let model = self.model;
        let (rows, stats) = run_software_population_batched(
            &mut self.exec,
            genomes,
            env_id,
            episode_seed,
            self.tracer.clone(),
            move |plan| model.inference_seconds_plan(plan),
        )?;
        self.last_exec = Some(stats);
        Ok(reduce_software_rows(rows, self.model.sec_per_env_step))
    }

    fn take_exec_stats(&mut self) -> ExecStatsState {
        match self.last_exec.take() {
            Some(stats) => ExecStatsState::Ready(stats),
            None => ExecStatsState::Idle,
        }
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    fn set_jit(&mut self, config: JitConfig) {
        self.exec.set_jit(config);
    }
}

/// E3-GPU: functionally identical to software evaluation, but timed
/// with the launch-bound GPU cost model.
#[derive(Debug)]
pub struct GpuBackend {
    sw: SwCostModel,
    gpu: GpuCostModel,
    exec: AnyExecutor,
    last_exec: Option<ExecStats>,
    tracer: Tracer,
}

impl GpuBackend {
    /// Creates the backend with the given cost models (`sw` prices the
    /// CPU-side env stepping).
    pub fn new(sw: SwCostModel, gpu: GpuCostModel) -> Self {
        GpuBackend::with_threads(sw, gpu, 1)
    }

    /// Creates the backend with host-side parallel evaluation across
    /// `threads` virtual PUs; results are bit-identical to serial.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn with_threads(sw: SwCostModel, gpu: GpuCostModel, threads: usize) -> Self {
        assert!(threads > 0, "need at least one worker thread");
        GpuBackend::with_executor(sw, gpu, AnyExecutor::new(threads))
    }

    /// Creates the backend on a caller-supplied executor (see
    /// [`CpuBackend::with_executor`]).
    pub fn with_executor(sw: SwCostModel, gpu: GpuCostModel, exec: AnyExecutor) -> Self {
        GpuBackend {
            sw,
            gpu,
            exec,
            last_exec: None,
            tracer: Tracer::disabled(),
        }
    }

    /// Scalar multi-scenario evaluation (see
    /// [`CpuBackend::try_evaluate_population_scenarios`]), priced with
    /// the GPU cost model.
    ///
    /// # Errors
    ///
    /// Same as [`EvalBackend::try_evaluate_population`].
    pub fn try_evaluate_population_scenarios(
        &mut self,
        genomes: &[Genome],
        env_id: EnvId,
        spec: &ScenarioSpec,
    ) -> Result<EvalOutcome, EvalError> {
        let gpu = self.gpu;
        let (rows, stats) = run_software_population_scenarios(
            &mut self.exec,
            genomes,
            env_id,
            spec,
            self.tracer.clone(),
            move |net| gpu.inference_seconds(net),
        )?;
        self.last_exec = Some(stats);
        Ok(reduce_software_rows(rows, self.sw.sec_per_env_step))
    }

    /// Batched multi-scenario evaluation (see
    /// [`CpuBackend::try_evaluate_population_scenarios_batched`]),
    /// priced with the GPU cost model.
    ///
    /// # Errors
    ///
    /// Same as [`EvalBackend::try_evaluate_population`].
    pub fn try_evaluate_population_scenarios_batched(
        &mut self,
        genomes: &[Genome],
        env_id: EnvId,
        spec: &ScenarioSpec,
    ) -> Result<EvalOutcome, EvalError> {
        let gpu = self.gpu;
        let (rows, stats) = run_software_population_scenarios_batched(
            &mut self.exec,
            genomes,
            env_id,
            spec,
            self.tracer.clone(),
            move |plan| gpu.inference_seconds_plan(plan),
        )?;
        self.last_exec = Some(stats);
        Ok(reduce_software_rows(rows, self.sw.sec_per_env_step))
    }
}

impl Clone for GpuBackend {
    /// Clones the configuration and shares the installed tracer. An
    /// exclusive executor is re-created at the same width (private
    /// pools are never shared implicitly); a shared-pool handle stays
    /// attached to the same pool.
    fn clone(&self) -> Self {
        let mut clone = GpuBackend::with_executor(self.sw, self.gpu, self.exec.fork());
        clone.tracer = self.tracer.clone();
        clone
    }
}

impl Default for GpuBackend {
    fn default() -> Self {
        GpuBackend::new(SwCostModel::default(), GpuCostModel::default())
    }
}

impl EvalBackend for GpuBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Gpu
    }

    fn try_evaluate_population(
        &mut self,
        genomes: &[Genome],
        env_id: EnvId,
        episode_seed: u64,
    ) -> Result<EvalOutcome, EvalError> {
        let gpu = self.gpu;
        let (rows, stats) = run_software_population(
            &mut self.exec,
            genomes,
            env_id,
            episode_seed,
            self.tracer.clone(),
            move |net| gpu.inference_seconds(net),
        )?;
        self.last_exec = Some(stats);
        Ok(reduce_software_rows(rows, self.sw.sec_per_env_step))
    }

    fn try_evaluate_population_batched(
        &mut self,
        genomes: &[Genome],
        env_id: EnvId,
        episode_seed: u64,
    ) -> Result<EvalOutcome, EvalError> {
        let gpu = self.gpu;
        let (rows, stats) = run_software_population_batched(
            &mut self.exec,
            genomes,
            env_id,
            episode_seed,
            self.tracer.clone(),
            move |plan| gpu.inference_seconds_plan(plan),
        )?;
        self.last_exec = Some(stats);
        Ok(reduce_software_rows(rows, self.sw.sec_per_env_step))
    }

    fn take_exec_stats(&mut self) -> ExecStatsState {
        match self.last_exec.take() {
            Some(stats) => ExecStatsState::Ready(stats),
            None => ExecStatsState::Idle,
        }
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    fn set_jit(&mut self, config: JitConfig) {
        self.exec.set_jit(config);
    }
}

/// E3-INAX: batches the population onto the INAX simulator, one
/// individual per PU, and drives the closed CPU↔FPGA loop of paper
/// Fig. 5.
///
/// Under a parallel executor, each **wave** (one batch of `num_pu`
/// individuals) runs on its own simulated accelerator instance and the
/// per-wave [`EpisodeRunReport`]s are merged in wave order — every
/// counter is additive, so the accounting is bit-identical to one
/// accelerator executing all waves serially.
#[derive(Debug)]
pub struct InaxBackend {
    config: InaxConfig,
    sw: SwCostModel,
    exec: AnyExecutor,
    last_exec: Option<ExecStats>,
    tracer: Tracer,
}

/// Everything one INAX wave produces: per-resident fitness and episode
/// lengths, the wave's cycle accounting and utilization breakdown, and
/// its env-step count.
struct WaveResult {
    fitnesses: Vec<f64>,
    steps: Vec<u64>,
    report: EpisodeRunReport,
    util: UtilizationBreakdown,
    total_steps: u64,
}

impl InaxBackend {
    /// Creates the backend. `sw` prices the CPU-side env stepping (the
    /// env stays a CPU program in all settings).
    pub fn new(config: InaxConfig, sw: SwCostModel) -> Self {
        InaxBackend::with_threads(config, sw, 1)
    }

    /// Creates the backend with waves simulated across `threads`
    /// host workers; results and accounting are bit-identical to
    /// serial.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn with_threads(config: InaxConfig, sw: SwCostModel, threads: usize) -> Self {
        assert!(threads > 0, "need at least one worker thread");
        InaxBackend::with_executor(config, sw, AnyExecutor::new(threads))
    }

    /// Creates the backend on a caller-supplied executor (see
    /// [`CpuBackend::with_executor`]).
    pub fn with_executor(config: InaxConfig, sw: SwCostModel, exec: AnyExecutor) -> Self {
        InaxBackend {
            config,
            sw,
            exec,
            last_exec: None,
            tracer: Tracer::disabled(),
        }
    }

    /// The accelerator configuration.
    pub fn config(&self) -> &InaxConfig {
        &self.config
    }

    /// Evaluates every genome over the spec's K sampled scenarios on
    /// the accelerator: each wave loads its residents once, then runs
    /// the lock-step episode loop once per scenario against fresh
    /// scenario-parameterized environments — weights stream onto the
    /// PUs a single time however many worlds the wave faces.
    /// Per-resident fitnesses aggregate exactly like the software
    /// backends, so all backends agree on scenario fitness too.
    ///
    /// # Errors
    ///
    /// Same as [`EvalBackend::try_evaluate_population`].
    pub fn try_evaluate_population_scenarios(
        &mut self,
        genomes: &[Genome],
        env_id: EnvId,
        spec: &ScenarioSpec,
    ) -> Result<EvalOutcome, EvalError> {
        check_spec(genomes, spec);
        let num_pu = self.config.num_pu;
        let num_waves = genomes.len().div_ceil(num_pu.max(1));
        let pop: Arc<[Genome]> = genomes.into();
        let shared = SharedSpec::new(spec);
        let config = self.config.clone();
        let tracer = self.tracer.clone();

        let run = self.exec.run_shards(num_waves, 1, move |scratch, range| {
            let k = shared.scenarios();
            range
                .map(|wave| -> Result<WaveResult, (usize, DecodeError)> {
                    let base = wave * num_pu;
                    let end = (base + num_pu).min(pop.len());
                    let mut batch = Vec::with_capacity(end - base);
                    for i in base..end {
                        let plan = scratch
                            .cache()
                            .get_or_plan(&pop[i])
                            .map_err(|reason| (i, reason))?;
                        batch.push(IrregularNet::from_plan(plan));
                    }
                    let residents = batch.len();
                    let mut wave_span = tracer.span("shard", "exec");
                    wave_span.arg("wave", wave as f64);
                    wave_span.arg("items", residents as f64);
                    wave_span.arg("scenarios", k as f64);
                    let mut accelerator = InaxAccelerator::new(config.clone());
                    accelerator.load_batch(batch);
                    let mut per_scenario = vec![vec![0.0f64; k]; residents];
                    let mut steps_per_genome = vec![0u64; residents];
                    let mut total_steps = 0u64;
                    // `s` indexes three parallel per-scenario arrays,
                    // so a range loop reads better than zipping them.
                    #[allow(clippy::needless_range_loop)]
                    for s in 0..k {
                        let mut envs: Vec<Box<dyn Environment>> = (0..residents)
                            .map(|_| env_id.make_scenario(&shared.params[s]))
                            .collect();
                        let space = envs
                            .first()
                            .expect("waves are non-empty by construction")
                            .action_space();
                        let mut observations: Vec<Option<Vec<f64>>> = envs
                            .iter_mut()
                            .enumerate()
                            .map(|(i, e)| Some(e.reset(shared.episode_seeds[(base + i) * k + s])))
                            .collect();
                        let mut episode_timers: Vec<Option<e3_telemetry::SpanTimer>> = (0
                            ..residents)
                            .map(|i| {
                                let mut timer = tracer.start("episode", "env");
                                timer.arg("genome_index", (base + i) as f64);
                                timer.arg("scenario", s as f64);
                                Some(timer)
                            })
                            .collect();
                        let mut episode_steps = vec![0u64; residents];
                        while observations.iter().any(Option::is_some) {
                            let outputs = accelerator.step(&observations);
                            for (i, output) in outputs.into_iter().enumerate() {
                                let Some(out) = output else { continue };
                                let action = decode_action(&out, &space);
                                let step = envs[i].step(&action);
                                per_scenario[i][s] += step.reward;
                                episode_steps[i] += 1;
                                steps_per_genome[i] += 1;
                                total_steps += 1;
                                observations[i] = if step.terminated || step.truncated {
                                    if let Some(mut timer) = episode_timers[i].take() {
                                        timer.arg("steps", episode_steps[i] as f64);
                                        timer.finish();
                                    }
                                    None
                                } else {
                                    Some(step.observation)
                                };
                            }
                        }
                    }
                    accelerator.unload_batch();
                    let fitnesses = per_scenario
                        .iter()
                        .map(|fits| aggregate_fitness(fits, shared.aggregation))
                        .collect();
                    Ok(WaveResult {
                        fitnesses,
                        steps: steps_per_genome,
                        report: accelerator.report(),
                        util: accelerator.utilization().clone(),
                        total_steps,
                    })
                })
                .collect()
        })?;

        let mut fitnesses = Vec::with_capacity(genomes.len());
        let mut steps_per_genome = Vec::with_capacity(genomes.len());
        let mut total_steps = 0u64;
        let mut report = EpisodeRunReport::default();
        let mut util = UtilizationBreakdown::default();
        for wave in run.results {
            let wave = wave.map_err(|(genome_index, reason)| EvalError::NotFeedForward {
                genome_index,
                reason,
            })?;
            fitnesses.extend(wave.fitnesses);
            steps_per_genome.extend(wave.steps);
            total_steps += wave.total_steps;
            report.merge(&wave.report);
            util.merge(&wave.util);
        }
        self.last_exec = Some(run.stats);
        Ok(EvalOutcome {
            fitnesses,
            steps_per_genome,
            eval_seconds: self.config.cycles_to_seconds(report.total_cycles),
            env_seconds: total_steps as f64 * self.sw.sec_per_env_step,
            total_steps,
            hw_report: Some(report),
            hw_utilization: Some(util),
        })
    }
}

impl EvalBackend for InaxBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Inax
    }

    fn try_evaluate_population(
        &mut self,
        genomes: &[Genome],
        env_id: EnvId,
        episode_seed: u64,
    ) -> Result<EvalOutcome, EvalError> {
        let num_pu = self.config.num_pu;
        let num_waves = genomes.len().div_ceil(num_pu.max(1));
        let pop: Arc<[Genome]> = genomes.into();
        let config = self.config.clone();
        let tracer = self.tracer.clone();

        // One work item per wave: each runs its batch on a private
        // accelerator instance (a "virtual PU cluster"). Residents are
        // lowered inside the wave through the worker's plan cache —
        // genome→NetPlan compiles once per fingerprint and the
        // hardware view is a direct copy of the plan — so unchanged
        // elites skip CreateNet here exactly like on the software
        // backends.
        let run = self.exec.run_shards(num_waves, 1, move |scratch, range| {
            range
                .map(|wave| -> Result<WaveResult, (usize, DecodeError)> {
                    let base = wave * num_pu;
                    let end = (base + num_pu).min(pop.len());
                    let mut batch = Vec::with_capacity(end - base);
                    for i in base..end {
                        let plan = scratch
                            .cache()
                            .get_or_plan(&pop[i])
                            .map_err(|reason| (i, reason))?;
                        batch.push(IrregularNet::from_plan(plan));
                    }
                    let residents = batch.len();
                    let mut wave_span = tracer.span("shard", "exec");
                    wave_span.arg("wave", wave as f64);
                    wave_span.arg("items", residents as f64);
                    let mut accelerator = InaxAccelerator::new(config.clone());
                    accelerator.load_batch(batch);
                    // One environment instance per resident individual.
                    let mut envs: Vec<Box<dyn Environment>> =
                        (0..residents).map(|_| env_id.make()).collect();
                    let space = envs
                        .first()
                        .expect("waves are non-empty by construction")
                        .action_space();
                    let mut fitnesses = vec![0.0f64; residents];
                    let mut steps_per_genome = vec![0u64; residents];
                    let mut total_steps = 0u64;
                    let mut observations: Vec<Option<Vec<f64>>> = envs
                        .iter_mut()
                        .map(|e| Some(e.reset(episode_seed)))
                        .collect();
                    // Episodes in a wave interleave in lock-step, so
                    // their spans cannot nest lexically: one explicit
                    // timer per resident, finished when its episode
                    // terminates. Inert (no clock) when disabled.
                    let mut episode_timers: Vec<Option<e3_telemetry::SpanTimer>> = (0..residents)
                        .map(|i| {
                            let mut timer = tracer.start("episode", "env");
                            timer.arg("genome_index", (base + i) as f64);
                            Some(timer)
                        })
                        .collect();
                    while observations.iter().any(Option::is_some) {
                        let outputs = accelerator.step(&observations);
                        for (i, output) in outputs.into_iter().enumerate() {
                            let Some(out) = output else { continue };
                            let action = decode_action(&out, &space);
                            let step = envs[i].step(&action);
                            fitnesses[i] += step.reward;
                            steps_per_genome[i] += 1;
                            total_steps += 1;
                            observations[i] = if step.terminated || step.truncated {
                                if let Some(mut timer) = episode_timers[i].take() {
                                    timer.arg("steps", steps_per_genome[i] as f64);
                                    timer.finish();
                                }
                                None
                            } else {
                                Some(step.observation)
                            };
                        }
                    }
                    accelerator.unload_batch();
                    Ok(WaveResult {
                        fitnesses,
                        steps: steps_per_genome,
                        report: accelerator.report(),
                        util: accelerator.utilization().clone(),
                        total_steps,
                    })
                })
                .collect()
        })?;

        // Wave-ordered reduction: counters are additive, so this is
        // the accounting a single accelerator would have produced.
        // Waves are contiguous index ranges and each wave lowers its
        // residents in index order, so scanning results in order
        // reports the lowest-indexed non-feed-forward genome — the
        // same error the old serial pre-decode produced.
        let mut fitnesses = Vec::with_capacity(genomes.len());
        let mut steps_per_genome = Vec::with_capacity(genomes.len());
        let mut total_steps = 0u64;
        let mut report = EpisodeRunReport::default();
        let mut util = UtilizationBreakdown::default();
        for wave in run.results {
            let wave = wave.map_err(|(genome_index, reason)| EvalError::NotFeedForward {
                genome_index,
                reason,
            })?;
            fitnesses.extend(wave.fitnesses);
            steps_per_genome.extend(wave.steps);
            total_steps += wave.total_steps;
            report.merge(&wave.report);
            util.merge(&wave.util);
        }
        self.last_exec = Some(run.stats);
        Ok(EvalOutcome {
            fitnesses,
            steps_per_genome,
            eval_seconds: self.config.cycles_to_seconds(report.total_cycles),
            env_seconds: total_steps as f64 * self.sw.sec_per_env_step,
            total_steps,
            hw_report: Some(report),
            hw_utilization: Some(util),
        })
    }

    fn take_exec_stats(&mut self) -> ExecStatsState {
        match self.last_exec.take() {
            Some(stats) => ExecStatsState::Ready(stats),
            None => ExecStatsState::Idle,
        }
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }
}

/// A backend of any kind behind one concrete type.
///
/// This is what [`BackendBuilder::build`] produces and what
/// `E3Platform` runs on: enum dispatch instead of `Box<dyn>` keeps the
/// platform `Debug` and cheap to construct in sweeps.
#[derive(Debug)]
pub enum AnyBackend {
    /// Software baseline.
    Cpu(CpuBackend),
    /// GPU offload model.
    Gpu(GpuBackend),
    /// INAX accelerator simulator.
    Inax(InaxBackend),
}

impl AnyBackend {
    /// Evaluates every genome over the spec's K sampled scenarios,
    /// dispatching to the kind-appropriate kernel: the software
    /// backends run the batched SoA scenario kernel, INAX runs its
    /// scenario wave loop. All three agree bit-for-bit on fitness.
    ///
    /// # Errors
    ///
    /// Same as [`EvalBackend::try_evaluate_population`].
    pub fn try_evaluate_population_scenarios(
        &mut self,
        genomes: &[Genome],
        env: EnvId,
        spec: &ScenarioSpec,
    ) -> Result<EvalOutcome, EvalError> {
        match self {
            AnyBackend::Cpu(b) => b.try_evaluate_population_scenarios_batched(genomes, env, spec),
            AnyBackend::Gpu(b) => b.try_evaluate_population_scenarios_batched(genomes, env, spec),
            AnyBackend::Inax(b) => b.try_evaluate_population_scenarios(genomes, env, spec),
        }
    }

    /// Like [`AnyBackend::try_evaluate_population_scenarios`], but the
    /// software backends take the scalar per-genome loop — the route
    /// the platform picks when the JIT tier is enabled, since only the
    /// scalar loop consults the tiered decode cache. Bit-identical to
    /// the batched dispatch.
    ///
    /// # Errors
    ///
    /// Same as [`EvalBackend::try_evaluate_population`].
    pub fn try_evaluate_population_scenarios_scalar(
        &mut self,
        genomes: &[Genome],
        env: EnvId,
        spec: &ScenarioSpec,
    ) -> Result<EvalOutcome, EvalError> {
        match self {
            AnyBackend::Cpu(b) => b.try_evaluate_population_scenarios(genomes, env, spec),
            AnyBackend::Gpu(b) => b.try_evaluate_population_scenarios(genomes, env, spec),
            AnyBackend::Inax(b) => b.try_evaluate_population_scenarios(genomes, env, spec),
        }
    }
}

impl EvalBackend for AnyBackend {
    fn kind(&self) -> BackendKind {
        match self {
            AnyBackend::Cpu(_) => BackendKind::Cpu,
            AnyBackend::Gpu(_) => BackendKind::Gpu,
            AnyBackend::Inax(_) => BackendKind::Inax,
        }
    }

    fn try_evaluate_population(
        &mut self,
        genomes: &[Genome],
        env: EnvId,
        episode_seed: u64,
    ) -> Result<EvalOutcome, EvalError> {
        match self {
            AnyBackend::Cpu(b) => b.try_evaluate_population(genomes, env, episode_seed),
            AnyBackend::Gpu(b) => b.try_evaluate_population(genomes, env, episode_seed),
            AnyBackend::Inax(b) => b.try_evaluate_population(genomes, env, episode_seed),
        }
    }

    fn try_evaluate_population_batched(
        &mut self,
        genomes: &[Genome],
        env: EnvId,
        episode_seed: u64,
    ) -> Result<EvalOutcome, EvalError> {
        match self {
            AnyBackend::Cpu(b) => b.try_evaluate_population_batched(genomes, env, episode_seed),
            AnyBackend::Gpu(b) => b.try_evaluate_population_batched(genomes, env, episode_seed),
            // INAX already batches onto the accelerator's PUs; the
            // trait default routes it through its wave loop.
            AnyBackend::Inax(b) => b.try_evaluate_population_batched(genomes, env, episode_seed),
        }
    }

    fn take_exec_stats(&mut self) -> ExecStatsState {
        match self {
            AnyBackend::Cpu(b) => b.take_exec_stats(),
            AnyBackend::Gpu(b) => b.take_exec_stats(),
            AnyBackend::Inax(b) => b.take_exec_stats(),
        }
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        match self {
            AnyBackend::Cpu(b) => b.set_tracer(tracer),
            AnyBackend::Gpu(b) => b.set_tracer(tracer),
            AnyBackend::Inax(b) => b.set_tracer(tracer),
        }
    }

    fn set_jit(&mut self, config: JitConfig) {
        match self {
            AnyBackend::Cpu(b) => b.set_jit(config),
            AnyBackend::Gpu(b) => b.set_jit(config),
            // INAX lowers plans to hardware; it has no software scalar
            // path to tier (the trait default ignores the policy).
            AnyBackend::Inax(_) => {}
        }
    }
}

/// Unified builder for any evaluation backend, mirroring
/// `InaxConfig::builder()`.
///
/// # Example
///
/// ```
/// use e3_platform::{BackendBuilder, BackendKind, EvalBackend};
/// use e3_inax::InaxConfig;
///
/// let mut backend = BackendBuilder::new(BackendKind::Inax)
///     .inax(InaxConfig::builder().num_pu(8).num_pe(2).build())
///     .build();
/// assert_eq!(backend.kind(), BackendKind::Inax);
/// ```
#[derive(Debug, Clone)]
pub struct BackendBuilder {
    kind: BackendKind,
    sw: SwCostModel,
    gpu: GpuCostModel,
    inax: InaxConfig,
    threads: usize,
    executor: Option<SharedExecutor>,
    tracer: Tracer,
}

impl BackendBuilder {
    /// Starts a builder for `kind` with default cost models and
    /// single-threaded host execution.
    pub fn new(kind: BackendKind) -> Self {
        BackendBuilder {
            kind,
            sw: SwCostModel::default(),
            gpu: GpuCostModel::default(),
            inax: InaxConfig::default(),
            threads: 1,
            executor: None,
            tracer: Tracer::disabled(),
        }
    }

    /// Sets the software cost model (used by every backend for the
    /// CPU-side env stepping).
    pub fn sw(mut self, model: SwCostModel) -> Self {
        self.sw = model;
        self
    }

    /// Sets the GPU cost model (E3-GPU only).
    pub fn gpu(mut self, model: GpuCostModel) -> Self {
        self.gpu = model;
        self
    }

    /// Sets the INAX hardware configuration (E3-INAX only).
    pub fn inax(mut self, config: InaxConfig) -> Self {
        self.inax = config;
        self
    }

    /// Sets the number of host worker threads ("virtual PUs") the
    /// backend evaluates on. Applies to every backend kind; results
    /// are bit-identical to `threads = 1`.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Evaluates on a caller-supplied shared pool instead of a private
    /// executor — many concurrent runs (islands) time-slice one pool
    /// at population-evaluation granularity. Overrides
    /// [`BackendBuilder::threads`]. Results are bit-identical to a
    /// private executor of the same width.
    pub fn executor(mut self, shared: SharedExecutor) -> Self {
        self.executor = Some(shared);
        self
    }

    /// Installs a span tracer on the built backend (defaults to the
    /// zero-cost disabled tracer). Tracing is write-only: results are
    /// bit-identical with any tracer.
    pub fn tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Builds the backend.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn build(self) -> AnyBackend {
        assert!(self.threads > 0, "need at least one worker thread");
        let make_exec = || match &self.executor {
            Some(shared) => AnyExecutor::Shared(shared.clone()),
            None => AnyExecutor::new(self.threads),
        };
        let mut backend = match self.kind {
            BackendKind::Cpu => AnyBackend::Cpu(CpuBackend::with_executor(self.sw, make_exec())),
            BackendKind::Gpu => {
                AnyBackend::Gpu(GpuBackend::with_executor(self.sw, self.gpu, make_exec()))
            }
            BackendKind::Inax => {
                AnyBackend::Inax(InaxBackend::with_executor(self.inax, self.sw, make_exec()))
            }
        };
        backend.set_tracer(self.tracer);
        backend
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use e3_neat::{NeatConfig, Population};

    fn genomes(env: EnvId, n: usize) -> Vec<Genome> {
        let config = NeatConfig::builder(env.observation_size(), env.policy_outputs())
            .population_size(n)
            .build();
        Population::new(config, 3).genomes().to_vec()
    }

    fn eval(backend: &mut dyn EvalBackend, pop: &[Genome], env: EnvId, seed: u64) -> EvalOutcome {
        backend
            .try_evaluate_population(pop, env, seed)
            .expect("population is feed-forward")
    }

    #[test]
    fn all_backends_agree_on_fitness() {
        let pop = genomes(EnvId::CartPole, 12);
        let mut cpu = CpuBackend::default();
        let mut gpu = GpuBackend::default();
        let mut inax = InaxBackend::new(
            InaxConfig::builder().num_pu(5).num_pe(2).build(),
            SwCostModel::default(),
        );
        let a = eval(&mut cpu, &pop, EnvId::CartPole, 7);
        let b = eval(&mut gpu, &pop, EnvId::CartPole, 7);
        let c = eval(&mut inax, &pop, EnvId::CartPole, 7);
        assert_eq!(a.fitnesses, b.fitnesses);
        assert_eq!(a.fitnesses, c.fitnesses);
        assert_eq!(a.steps_per_genome, c.steps_per_genome);
    }

    #[test]
    fn gpu_eval_is_slower_and_inax_faster_than_cpu() {
        let pop = genomes(EnvId::CartPole, 12);
        let mut cpu = CpuBackend::default();
        let mut gpu = GpuBackend::default();
        let mut inax = InaxBackend::new(
            InaxConfig::builder().num_pu(12).num_pe(2).build(),
            SwCostModel::default(),
        );
        let a = eval(&mut cpu, &pop, EnvId::CartPole, 7);
        let b = eval(&mut gpu, &pop, EnvId::CartPole, 7);
        let c = eval(&mut inax, &pop, EnvId::CartPole, 7);
        assert!(b.eval_seconds > a.eval_seconds, "GPU must lose (Fig. 9(b))");
        assert!(c.eval_seconds < a.eval_seconds, "INAX must win (Fig. 9(b))");
    }

    #[test]
    fn inax_reports_hw_accounting() {
        let pop = genomes(EnvId::MountainCar, 6);
        let mut inax = InaxBackend::new(
            InaxConfig::builder().num_pu(3).num_pe(3).build(),
            SwCostModel::default(),
        );
        let out = eval(&mut inax, &pop, EnvId::MountainCar, 1);
        let report = out.hw_report.expect("INAX reports HW accounting");
        assert!(report.total_cycles > 0);
        assert!(report.steps > 0);
        assert!(report.pu_utilization.rate() <= 1.0);
        assert_eq!(out.total_steps, out.steps_per_genome.iter().sum::<u64>());
    }

    #[test]
    fn continuous_action_envs_work_on_all_backends() {
        let pop = genomes(EnvId::Pendulum, 4);
        let mut cpu = CpuBackend::default();
        let mut inax = InaxBackend::new(
            InaxConfig::builder().num_pu(4).num_pe(1).build(),
            SwCostModel::default(),
        );
        let a = eval(&mut cpu, &pop, EnvId::Pendulum, 2);
        let c = eval(&mut inax, &pop, EnvId::Pendulum, 2);
        assert_eq!(a.fitnesses, c.fitnesses);
        assert!(
            a.fitnesses.iter().all(|f| *f < 0.0),
            "pendulum rewards are negative"
        );
    }

    #[test]
    fn exec_stats_state_distinguishes_idle_from_ready() {
        let mut cpu = CpuBackend::default();
        assert_eq!(
            cpu.take_exec_stats(),
            ExecStatsState::Idle,
            "executor exists but nothing ran yet"
        );
        let pop = genomes(EnvId::CartPole, 4);
        let _ = eval(&mut cpu, &pop, EnvId::CartPole, 7);
        assert!(matches!(cpu.take_exec_stats(), ExecStatsState::Ready(_)));
        assert_eq!(
            cpu.take_exec_stats(),
            ExecStatsState::Idle,
            "take consumes the stats"
        );
    }

    /// A backend with no executor at all: the trait default must say
    /// so explicitly instead of masquerading as "nothing ran".
    struct StatlessBackend;

    impl EvalBackend for StatlessBackend {
        fn kind(&self) -> BackendKind {
            BackendKind::Cpu
        }

        fn try_evaluate_population(
            &mut self,
            genomes: &[Genome],
            _env: EnvId,
            _episode_seed: u64,
        ) -> Result<EvalOutcome, EvalError> {
            Ok(reduce_software_rows(
                vec![(0.0, 0, 0.0); genomes.len()],
                0.0,
            ))
        }
    }

    #[test]
    fn backend_without_executor_reports_unavailable() {
        let mut backend = StatlessBackend;
        let pop = genomes(EnvId::CartPole, 2);
        let _ = eval(&mut backend, &pop, EnvId::CartPole, 1);
        let state = backend.take_exec_stats();
        assert!(state.is_unavailable());
        assert_eq!(state.into_option(), None);
    }

    #[test]
    fn tracing_records_spans_without_changing_results() {
        let pop = genomes(EnvId::CartPole, 12);
        let config = InaxConfig::builder().num_pu(5).num_pe(2).build();
        let mut plain = InaxBackend::new(config.clone(), SwCostModel::default());
        let mut traced = InaxBackend::new(config, SwCostModel::default());
        let tracer = Tracer::enabled();
        traced.set_tracer(tracer.clone());
        let a = eval(&mut plain, &pop, EnvId::CartPole, 7);
        let b = eval(&mut traced, &pop, EnvId::CartPole, 7);
        assert_eq!(a, b, "tracing is write-only");
        let spans = tracer.spans();
        assert!(!spans.is_empty());
        let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"shard"), "wave spans recorded");
        assert!(names.contains(&"episode"), "episode spans recorded");
        assert_eq!(
            names.iter().filter(|n| **n == "episode").count(),
            pop.len(),
            "one episode span per genome"
        );
    }

    #[test]
    fn software_backends_trace_individual_spans() {
        let pop = genomes(EnvId::CartPole, 6);
        let mut cpu = CpuBackend::default();
        let tracer = Tracer::enabled();
        cpu.set_tracer(tracer.clone());
        let _ = eval(&mut cpu, &pop, EnvId::CartPole, 3);
        let names: Vec<String> = tracer.spans().into_iter().map(|s| s.name).collect();
        for expected in ["shard", "individual", "episode"] {
            assert!(names.iter().any(|n| n == expected), "missing {expected}");
        }
    }

    #[test]
    fn inax_utilization_reconciles_at_backend_level() {
        // 12 genomes on 5 PUs ⇒ 3 waves merged: the invariant must
        // survive the wave-ordered reduction.
        let pop = genomes(EnvId::CartPole, 12);
        let mut inax = InaxBackend::new(
            InaxConfig::builder().num_pu(5).num_pe(2).build(),
            SwCostModel::default(),
        );
        let out = eval(&mut inax, &pop, EnvId::CartPole, 7);
        let report = out.hw_report.expect("INAX reports HW accounting");
        let util = out.hw_utilization.expect("INAX reports utilization");
        assert_eq!(util.per_pu.len(), 5);
        assert_eq!(util.per_pe.len(), 2);
        for (pu, cycles) in util.per_pu.iter().enumerate() {
            assert_eq!(
                cycles.total(),
                report.total_cycles,
                "PU {pu} cycle states must partition the wall cycles"
            );
        }
        let lane_busy: u64 = util.per_pe.iter().map(|l| l.busy).sum();
        assert_eq!(lane_busy, report.breakdown.pe_active);
        assert!(util.dma_bytes > 0);
        assert!(util.weight_buffer_hwm_bytes > 0);
    }

    #[test]
    fn parallel_inax_utilization_matches_serial() {
        let pop = genomes(EnvId::CartPole, 13);
        let config = InaxConfig::builder().num_pu(3).num_pe(2).build();
        let mut serial = InaxBackend::new(config.clone(), SwCostModel::default());
        let mut parallel = InaxBackend::with_threads(config, SwCostModel::default(), 4);
        let a = eval(&mut serial, &pop, EnvId::CartPole, 9);
        let b = eval(&mut parallel, &pop, EnvId::CartPole, 9);
        assert_eq!(
            a.hw_utilization, b.hw_utilization,
            "accounting is deterministic"
        );
        assert_eq!(a.hw_report, b.hw_report);
    }

    #[test]
    fn parallel_cpu_evaluation_matches_sequential() {
        let pop = genomes(EnvId::CartPole, 17); // odd size exercises chunk remainders
        let mut sequential = CpuBackend::default();
        let mut parallel = CpuBackend::with_threads(SwCostModel::default(), 4);
        let a = eval(&mut sequential, &pop, EnvId::CartPole, 9);
        let b = eval(&mut parallel, &pop, EnvId::CartPole, 9);
        assert_eq!(a.fitnesses, b.fitnesses, "order and values preserved");
        assert_eq!(a.steps_per_genome, b.steps_per_genome);
        assert!(
            (a.eval_seconds - b.eval_seconds).abs() < 1e-12,
            "modeled time unchanged"
        );
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        let _ = CpuBackend::with_threads(SwCostModel::default(), 0);
    }

    #[test]
    fn backend_names_match_paper() {
        assert_eq!(BackendKind::Cpu.name(), "E3-CPU");
        assert_eq!(BackendKind::Gpu.name(), "E3-GPU");
        assert_eq!(BackendKind::Inax.name(), "E3-INAX");
        assert_eq!(BackendKind::Inax.to_string(), "E3-INAX");
    }

    #[test]
    fn backend_kind_round_trips_through_strings() {
        for kind in BackendKind::ALL {
            assert_eq!(kind.name().parse::<BackendKind>().unwrap(), kind);
        }
        assert_eq!("cpu".parse::<BackendKind>().unwrap(), BackendKind::Cpu);
        assert_eq!("INAX".parse::<BackendKind>().unwrap(), BackendKind::Inax);
        let err = "tpu".parse::<BackendKind>().unwrap_err();
        assert!(err.to_string().contains("tpu"));
    }

    #[test]
    fn builder_constructs_each_kind() {
        for kind in BackendKind::ALL {
            let backend = kind.builder().build();
            assert_eq!(backend.kind(), kind);
        }
    }

    #[test]
    fn builder_backends_match_direct_construction() {
        let pop = genomes(EnvId::CartPole, 8);
        let mut direct = CpuBackend::default();
        let mut built = BackendKind::Cpu.builder().threads(2).build();
        let a = eval(&mut direct, &pop, EnvId::CartPole, 5);
        let b = eval(&mut built, &pop, EnvId::CartPole, 5);
        assert_eq!(a.fitnesses, b.fitnesses);
    }

    #[cfg(not(feature = "fast-math"))]
    #[test]
    fn batched_eval_is_bit_identical_to_scalar() {
        // Odd population sizes exercise shard remainders; 1/4/8
        // threads exercise single-batch and multi-batch sharding.
        for env in [EnvId::CartPole, EnvId::LunarLander, EnvId::Pendulum] {
            let pop = genomes(env, 13);
            for threads in [1usize, 4, 8] {
                let mut scalar = CpuBackend::default();
                let mut batched = CpuBackend::with_threads(SwCostModel::default(), threads);
                let a = scalar
                    .try_evaluate_population(&pop, env, 7)
                    .expect("scalar eval succeeds");
                let b = batched
                    .try_evaluate_population_batched(&pop, env, 7)
                    .expect("batched eval succeeds");
                assert_eq!(
                    a, b,
                    "{env:?} batched@{threads} threads diverged from scalar"
                );
            }
        }
    }

    #[cfg(not(feature = "fast-math"))]
    #[test]
    fn batched_gpu_pricing_matches_scalar_gpu() {
        let pop = genomes(EnvId::CartPole, 9);
        let mut scalar = GpuBackend::default();
        let mut batched = GpuBackend::default();
        let a = scalar
            .try_evaluate_population(&pop, EnvId::CartPole, 11)
            .expect("scalar eval succeeds");
        let b = batched
            .try_evaluate_population_batched(&pop, EnvId::CartPole, 11)
            .expect("batched eval succeeds");
        assert_eq!(a, b, "GPU cost model must price plans identically");
    }

    #[test]
    fn batched_entry_point_works_on_every_backend_kind() {
        let pop = genomes(EnvId::CartPole, 6);
        for kind in BackendKind::ALL {
            let mut scalar = kind.builder().build();
            let mut batched = kind.builder().build();
            let a = scalar
                .try_evaluate_population(&pop, EnvId::CartPole, 7)
                .expect("scalar eval succeeds");
            let b = batched
                .try_evaluate_population_batched(&pop, EnvId::CartPole, 7)
                .expect("batched eval succeeds");
            assert_eq!(a.fitnesses, b.fitnesses, "{kind} batched fitness diverged");
            assert_eq!(a.steps_per_genome, b.steps_per_genome);
        }
    }

    #[test]
    fn batched_recurrent_genome_reports_lowest_index() {
        let mut pop = genomes(EnvId::CartPole, 5);
        pop[1] = make_cyclic(&pop[1]);
        pop[3] = make_cyclic(&pop[3]);
        for threads in [1usize, 4] {
            let mut backend = CpuBackend::with_threads(SwCostModel::default(), threads);
            let err = backend
                .try_evaluate_population_batched(&pop, EnvId::CartPole, 7)
                .expect_err("cyclic genome must be rejected");
            match err {
                EvalError::NotFeedForward { genome_index, .. } => {
                    assert_eq!(genome_index, 1, "lowest-indexed failure wins")
                }
                other => panic!("expected NotFeedForward, got {other:?}"),
            }
        }
    }

    #[test]
    fn batched_eval_traces_shard_and_episode_spans() {
        let pop = genomes(EnvId::CartPole, 6);
        let mut cpu = CpuBackend::default();
        let tracer = Tracer::enabled();
        cpu.set_tracer(tracer.clone());
        cpu.try_evaluate_population_batched(&pop, EnvId::CartPole, 3)
            .expect("batched eval succeeds");
        let spans = tracer.spans();
        let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"shard"), "shard spans recorded");
        assert_eq!(
            names.iter().filter(|n| **n == "episode").count(),
            pop.len(),
            "one episode span per genome"
        );
    }

    /// Adds a recurrent self-loop on an output node, producing a
    /// genome only `RecurrentNetwork` could execute.
    fn make_cyclic(genome: &Genome) -> Genome {
        use e3_neat::{InnovationTracker, NodeKind};
        let mut cyclic = genome.clone();
        let mut tracker = InnovationTracker::with_reserved_nodes(cyclic.nodes().len());
        let output = cyclic
            .nodes()
            .iter()
            .find(|n| n.kind == NodeKind::Output)
            .expect("genome has an output node")
            .id;
        cyclic
            .add_connection_unchecked(output, output, 0.5, &mut tracker)
            .expect("self-loop is structurally new");
        cyclic
    }

    #[test]
    fn recurrent_genome_reports_not_feed_forward() {
        // Build a genome with a cycle: a feed-forward decode must fail
        // with EvalError::NotFeedForward rather than panic.
        let mut pop = genomes(EnvId::CartPole, 3);
        pop[1] = make_cyclic(&pop[1]);
        for kind in BackendKind::ALL {
            let mut backend = kind.builder().build();
            let err = backend
                .try_evaluate_population(&pop, EnvId::CartPole, 7)
                .expect_err("cyclic genome must be rejected");
            match err {
                EvalError::NotFeedForward { genome_index, .. } => {
                    assert_eq!(
                        genome_index, 1,
                        "index points at the cyclic genome ({kind})"
                    )
                }
                other => panic!("expected NotFeedForward, got {other:?}"),
            }
        }
    }

    /// A non-vanilla spec: K worlds from the moderate distribution
    /// with genome-major episode seeds, exactly as the platform
    /// resolves one generation.
    fn spec(k: usize, population: usize) -> ScenarioSpec {
        use crate::scenario::ScenarioConfig;
        use e3_envs::ScenarioDistribution;
        let config = ScenarioConfig::default()
            .train(ScenarioDistribution::moderate())
            .scenarios_per_eval(k);
        ScenarioSpec::for_generation(&config, 42, 3, population)
    }

    #[test]
    fn all_backends_agree_on_scenario_fitness() {
        let pop = genomes(EnvId::CartPole, 9);
        let spec = spec(3, pop.len());
        let mut cpu = CpuBackend::default();
        let mut gpu = GpuBackend::default();
        let mut inax = InaxBackend::new(
            InaxConfig::builder().num_pu(4).num_pe(2).build(),
            SwCostModel::default(),
        );
        let a = cpu
            .try_evaluate_population_scenarios(&pop, EnvId::CartPole, &spec)
            .expect("cpu scenario eval succeeds");
        let b = gpu
            .try_evaluate_population_scenarios(&pop, EnvId::CartPole, &spec)
            .expect("gpu scenario eval succeeds");
        let c = inax
            .try_evaluate_population_scenarios(&pop, EnvId::CartPole, &spec)
            .expect("inax scenario eval succeeds");
        assert_eq!(a.fitnesses, b.fitnesses);
        assert_eq!(a.fitnesses, c.fitnesses);
        assert_eq!(a.steps_per_genome, c.steps_per_genome);
        assert_eq!(a.total_steps, c.total_steps);
    }

    #[cfg(not(feature = "fast-math"))]
    #[test]
    fn batched_scenario_eval_is_bit_identical_to_scalar() {
        // Odd population exercises shard remainders; 1/4/8 threads
        // exercise single- and multi-shard lane packing.
        for env in [EnvId::CartPole, EnvId::Pendulum] {
            let pop = genomes(env, 7);
            let sp = spec(3, pop.len());
            let mut scalar = CpuBackend::default();
            let a = scalar
                .try_evaluate_population_scenarios(&pop, env, &sp)
                .expect("scalar scenario eval succeeds");
            for threads in [1usize, 4, 8] {
                let mut batched = CpuBackend::with_threads(SwCostModel::default(), threads);
                let b = batched
                    .try_evaluate_population_scenarios_batched(&pop, env, &sp)
                    .expect("batched scenario eval succeeds");
                assert_eq!(
                    a.fitnesses, b.fitnesses,
                    "{env:?} scenario batched@{threads} threads diverged from scalar"
                );
                assert_eq!(a.steps_per_genome, b.steps_per_genome);
                assert_eq!(a.total_steps, b.total_steps);
            }
        }
    }

    #[cfg(not(feature = "fast-math"))]
    #[test]
    fn single_default_scenario_with_shared_seed_matches_legacy_kernel() {
        // Hand-build a K=1 spec that replays the legacy schedule
        // exactly (default params, one shared episode seed): the
        // scenario kernels must reproduce the legacy kernel
        // bit-for-bit. The platform's real K=1 spec uses per-genome
        // scenario_seed streams instead, which is why the vanilla
        // gate bypasses the scenario path rather than running K=1
        // through it.
        use e3_envs::ScenarioParams;
        let pop = genomes(EnvId::CartPole, 5);
        let sp = ScenarioSpec {
            params: vec![ScenarioParams::default()],
            episode_seeds: vec![7; pop.len()],
            aggregation: FitnessAggregation::Mean,
        };
        let mut scenario = CpuBackend::default();
        let mut legacy = CpuBackend::default();
        let a = scenario
            .try_evaluate_population_scenarios(&pop, EnvId::CartPole, &sp)
            .expect("scenario eval succeeds");
        let b = legacy
            .try_evaluate_population(&pop, EnvId::CartPole, 7)
            .expect("legacy eval succeeds");
        assert_eq!(a.fitnesses, b.fitnesses);
        assert_eq!(a.steps_per_genome, b.steps_per_genome);
    }

    #[test]
    fn scenario_eval_rejects_recurrent_genomes_with_lowest_index() {
        let mut pop = genomes(EnvId::CartPole, 5);
        pop[1] = make_cyclic(&pop[1]);
        pop[3] = make_cyclic(&pop[3]);
        let sp = spec(2, pop.len());
        let mut backend = CpuBackend::with_threads(SwCostModel::default(), 2);
        let err = backend
            .try_evaluate_population_scenarios_batched(&pop, EnvId::CartPole, &sp)
            .expect_err("cyclic genome must be rejected");
        match err {
            EvalError::NotFeedForward { genome_index, .. } => {
                assert_eq!(genome_index, 1, "lowest-indexed failure wins")
            }
            other => panic!("expected NotFeedForward, got {other:?}"),
        }
    }
}
