//! Evaluation backends: E3-CPU, E3-GPU, and E3-INAX.
//!
//! A backend owns the paper's "evaluate" phase: run every genome of a
//! generation through its environment episode and report fitness plus
//! modeled time. All backends are **functionally identical** — same
//! fitness for the same seed — and differ only in how the inference is
//! executed and therefore how long it takes (paper §VI-A's three
//! settings).

use crate::timing::{GpuCostModel, SwCostModel};
use e3_envs::{decode_action, EnvId, Environment};
use e3_inax::{EpisodeRunReport, InaxAccelerator, InaxConfig, IrregularNet};
use e3_neat::Genome;
use serde::{Deserialize, Serialize};

/// Which backend executes "evaluate".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BackendKind {
    /// Software-only baseline (paper: E3-CPU).
    Cpu,
    /// GPU offload model (paper: E3-GPU).
    Gpu,
    /// INAX accelerator simulator (paper: E3-INAX).
    Inax,
}

impl BackendKind {
    /// All backends in the paper's comparison order.
    pub const ALL: [BackendKind; 3] = [BackendKind::Cpu, BackendKind::Gpu, BackendKind::Inax];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Cpu => "E3-CPU",
            BackendKind::Gpu => "E3-GPU",
            BackendKind::Inax => "E3-INAX",
        }
    }
}

/// Result of evaluating one generation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalOutcome {
    /// Fitness per genome, in population order.
    pub fitnesses: Vec<f64>,
    /// Episode length per genome.
    pub steps_per_genome: Vec<u64>,
    /// Modeled seconds spent on NN inference (the backend's share).
    pub eval_seconds: f64,
    /// Modeled seconds of CPU-side environment stepping.
    pub env_seconds: f64,
    /// Total environment steps across the generation.
    pub total_steps: u64,
    /// Accelerator accounting (INAX backend only).
    pub hw_report: Option<EpisodeRunReport>,
}

/// The "evaluate" phase executor.
pub trait EvalBackend {
    /// Backend identity.
    fn kind(&self) -> BackendKind;

    /// Evaluates every genome on one episode of `env` started from
    /// `episode_seed`, returning fitnesses and modeled timing.
    fn evaluate_population(
        &mut self,
        genomes: &[Genome],
        env: EnvId,
        episode_seed: u64,
    ) -> EvalOutcome;
}

/// Runs one genome's episode in software, returning
/// `(fitness, steps, inference_seconds_accumulator_input)`.
fn run_software_episode(
    genome: &Genome,
    env: &mut dyn Environment,
    episode_seed: u64,
) -> (f64, u64) {
    let mut net = genome.decode().expect("population genomes are feed-forward");
    let space = env.action_space();
    let mut obs = env.reset(episode_seed);
    let mut fitness = 0.0;
    let mut steps = 0u64;
    loop {
        let outputs = net.activate(&obs);
        let action = decode_action(&outputs, &space);
        let step = env.step(&action);
        fitness += step.reward;
        steps += 1;
        obs = step.observation;
        if step.terminated || step.truncated {
            return (fitness, steps);
        }
    }
}

/// E3-CPU: software evaluation with the interpreted-runtime cost
/// model. Optionally evaluates genomes on multiple host threads —
/// NE's embarrassing parallelism is one of the properties the paper
/// cites ([35], [43]) — without changing the *modeled* single-CPU
/// time, so timing comparisons stay faithful to the baseline platform.
#[derive(Debug, Clone, Default)]
pub struct CpuBackend {
    model: SwCostModel,
    threads: usize,
}

impl CpuBackend {
    /// Creates the backend with the given cost model (single-threaded
    /// host execution).
    pub fn new(model: SwCostModel) -> Self {
        CpuBackend { model, threads: 1 }
    }

    /// Creates the backend with host-side parallel evaluation across
    /// `threads` worker threads. Fitness values are identical to the
    /// sequential backend (each genome's episode is independent and
    /// deterministic); only the harness's wall-clock changes.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn with_threads(model: SwCostModel, threads: usize) -> Self {
        assert!(threads > 0, "need at least one worker thread");
        CpuBackend { model, threads }
    }

    /// Evaluates a chunk of genomes sequentially, returning per-genome
    /// `(fitness, steps)`.
    fn run_chunk(
        model: &SwCostModel,
        genomes: &[Genome],
        env_id: EnvId,
        episode_seed: u64,
    ) -> Vec<(f64, u64, f64)> {
        let mut env = env_id.make();
        genomes
            .iter()
            .map(|genome| {
                let net = genome.decode().expect("population genomes are feed-forward");
                let per_inference = model.inference_seconds(&net);
                let (fitness, steps) = run_software_episode(genome, env.as_mut(), episode_seed);
                (fitness, steps, per_inference * steps as f64)
            })
            .collect()
    }
}

impl EvalBackend for CpuBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Cpu
    }

    fn evaluate_population(
        &mut self,
        genomes: &[Genome],
        env_id: EnvId,
        episode_seed: u64,
    ) -> EvalOutcome {
        let results: Vec<(f64, u64, f64)> = if self.threads <= 1 || genomes.len() < 2 {
            Self::run_chunk(&self.model, genomes, env_id, episode_seed)
        } else {
            let chunk_len = genomes.len().div_ceil(self.threads);
            let model = self.model;
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = genomes
                    .chunks(chunk_len)
                    .map(|chunk| {
                        scope.spawn(move |_| Self::run_chunk(&model, chunk, env_id, episode_seed))
                    })
                    .collect();
                handles.into_iter().flat_map(|h| h.join().expect("worker panicked")).collect()
            })
            .expect("evaluation scope panicked")
        };
        let mut fitnesses = Vec::with_capacity(genomes.len());
        let mut steps_per_genome = Vec::with_capacity(genomes.len());
        let mut eval_seconds = 0.0;
        let mut total_steps = 0u64;
        for (fitness, steps, seconds) in results {
            fitnesses.push(fitness);
            steps_per_genome.push(steps);
            eval_seconds += seconds;
            total_steps += steps;
        }
        EvalOutcome {
            fitnesses,
            steps_per_genome,
            eval_seconds,
            env_seconds: total_steps as f64 * self.model.sec_per_env_step,
            total_steps,
            hw_report: None,
        }
    }
}

/// E3-GPU: functionally identical to software evaluation, but timed
/// with the launch-bound GPU cost model.
#[derive(Debug, Clone, Default)]
pub struct GpuBackend {
    sw: SwCostModel,
    gpu: GpuCostModel,
}

impl GpuBackend {
    /// Creates the backend with the given cost models (`sw` prices the
    /// CPU-side env stepping).
    pub fn new(sw: SwCostModel, gpu: GpuCostModel) -> Self {
        GpuBackend { sw, gpu }
    }
}

impl EvalBackend for GpuBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Gpu
    }

    fn evaluate_population(
        &mut self,
        genomes: &[Genome],
        env_id: EnvId,
        episode_seed: u64,
    ) -> EvalOutcome {
        let mut env = env_id.make();
        let mut fitnesses = Vec::with_capacity(genomes.len());
        let mut steps_per_genome = Vec::with_capacity(genomes.len());
        let mut eval_seconds = 0.0;
        let mut total_steps = 0u64;
        for genome in genomes {
            let net = genome.decode().expect("population genomes are feed-forward");
            let per_inference = self.gpu.inference_seconds(&net);
            let (fitness, steps) = run_software_episode(genome, env.as_mut(), episode_seed);
            fitnesses.push(fitness);
            steps_per_genome.push(steps);
            eval_seconds += per_inference * steps as f64;
            total_steps += steps;
        }
        EvalOutcome {
            fitnesses,
            steps_per_genome,
            eval_seconds,
            env_seconds: total_steps as f64 * self.sw.sec_per_env_step,
            total_steps,
            hw_report: None,
        }
    }
}

/// E3-INAX: batches the population onto the INAX simulator, one
/// individual per PU, and drives the closed CPU↔FPGA loop of paper
/// Fig. 5.
#[derive(Debug)]
pub struct InaxBackend {
    config: InaxConfig,
    sw: SwCostModel,
}

impl InaxBackend {
    /// Creates the backend. `sw` prices the CPU-side env stepping (the
    /// env stays a CPU program in all settings).
    pub fn new(config: InaxConfig, sw: SwCostModel) -> Self {
        InaxBackend { config, sw }
    }

    /// The accelerator configuration.
    pub fn config(&self) -> &InaxConfig {
        &self.config
    }
}

impl EvalBackend for InaxBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Inax
    }

    fn evaluate_population(
        &mut self,
        genomes: &[Genome],
        env_id: EnvId,
        episode_seed: u64,
    ) -> EvalOutcome {
        let nets: Vec<IrregularNet> = genomes
            .iter()
            .map(|g| IrregularNet::try_from(g).expect("population genomes are feed-forward"))
            .collect();
        let mut accelerator = InaxAccelerator::new(self.config.clone());
        let num_pu = self.config.num_pu;
        let mut fitnesses = vec![0.0f64; genomes.len()];
        let mut steps_per_genome = vec![0u64; genomes.len()];
        let mut total_steps = 0u64;

        for (batch_idx, batch) in nets.chunks(num_pu).enumerate() {
            let base = batch_idx * num_pu;
            accelerator.load_batch(batch.to_vec());
            // One environment instance per resident individual.
            let mut envs: Vec<Box<dyn Environment>> =
                (0..batch.len()).map(|_| env_id.make()).collect();
            let space = envs[0].action_space();
            let mut observations: Vec<Option<Vec<f64>>> =
                envs.iter_mut().map(|e| Some(e.reset(episode_seed))).collect();
            while observations.iter().any(Option::is_some) {
                let outputs = accelerator.step(&observations);
                for (i, output) in outputs.into_iter().enumerate() {
                    let Some(out) = output else { continue };
                    let action = decode_action(&out, &space);
                    let step = envs[i].step(&action);
                    fitnesses[base + i] += step.reward;
                    steps_per_genome[base + i] += 1;
                    total_steps += 1;
                    observations[i] = if step.terminated || step.truncated {
                        None
                    } else {
                        Some(step.observation)
                    };
                }
            }
            accelerator.unload_batch();
        }

        let report = accelerator.report();
        EvalOutcome {
            fitnesses,
            steps_per_genome,
            eval_seconds: self.config.cycles_to_seconds(report.total_cycles),
            env_seconds: total_steps as f64 * self.sw.sec_per_env_step,
            total_steps,
            hw_report: Some(report),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use e3_neat::{NeatConfig, Population};

    fn genomes(env: EnvId, n: usize) -> Vec<Genome> {
        let config = NeatConfig::builder(env.observation_size(), env.policy_outputs())
            .population_size(n)
            .build();
        Population::new(config, 3).genomes().to_vec()
    }

    #[test]
    fn all_backends_agree_on_fitness() {
        let pop = genomes(EnvId::CartPole, 12);
        let mut cpu = CpuBackend::default();
        let mut gpu = GpuBackend::default();
        let mut inax =
            InaxBackend::new(InaxConfig::builder().num_pu(5).num_pe(2).build(), SwCostModel::default());
        let a = cpu.evaluate_population(&pop, EnvId::CartPole, 7);
        let b = gpu.evaluate_population(&pop, EnvId::CartPole, 7);
        let c = inax.evaluate_population(&pop, EnvId::CartPole, 7);
        assert_eq!(a.fitnesses, b.fitnesses);
        assert_eq!(a.fitnesses, c.fitnesses);
        assert_eq!(a.steps_per_genome, c.steps_per_genome);
    }

    #[test]
    fn gpu_eval_is_slower_and_inax_faster_than_cpu() {
        let pop = genomes(EnvId::CartPole, 12);
        let mut cpu = CpuBackend::default();
        let mut gpu = GpuBackend::default();
        let mut inax =
            InaxBackend::new(InaxConfig::builder().num_pu(12).num_pe(2).build(), SwCostModel::default());
        let a = cpu.evaluate_population(&pop, EnvId::CartPole, 7);
        let b = gpu.evaluate_population(&pop, EnvId::CartPole, 7);
        let c = inax.evaluate_population(&pop, EnvId::CartPole, 7);
        assert!(b.eval_seconds > a.eval_seconds, "GPU must lose (Fig. 9(b))");
        assert!(c.eval_seconds < a.eval_seconds, "INAX must win (Fig. 9(b))");
    }

    #[test]
    fn inax_reports_hw_accounting() {
        let pop = genomes(EnvId::MountainCar, 6);
        let mut inax =
            InaxBackend::new(InaxConfig::builder().num_pu(3).num_pe(3).build(), SwCostModel::default());
        let out = inax.evaluate_population(&pop, EnvId::MountainCar, 1);
        let report = out.hw_report.expect("INAX reports HW accounting");
        assert!(report.total_cycles > 0);
        assert!(report.steps > 0);
        assert!(report.pu_utilization.rate() <= 1.0);
        assert_eq!(out.total_steps, out.steps_per_genome.iter().sum::<u64>());
    }

    #[test]
    fn continuous_action_envs_work_on_all_backends() {
        let pop = genomes(EnvId::Pendulum, 4);
        let mut cpu = CpuBackend::default();
        let mut inax =
            InaxBackend::new(InaxConfig::builder().num_pu(4).num_pe(1).build(), SwCostModel::default());
        let a = cpu.evaluate_population(&pop, EnvId::Pendulum, 2);
        let c = inax.evaluate_population(&pop, EnvId::Pendulum, 2);
        assert_eq!(a.fitnesses, c.fitnesses);
        assert!(a.fitnesses.iter().all(|f| *f < 0.0), "pendulum rewards are negative");
    }

    #[test]
    fn parallel_cpu_evaluation_matches_sequential() {
        let pop = genomes(EnvId::CartPole, 17); // odd size exercises chunk remainders
        let mut sequential = CpuBackend::default();
        let mut parallel = CpuBackend::with_threads(SwCostModel::default(), 4);
        let a = sequential.evaluate_population(&pop, EnvId::CartPole, 9);
        let b = parallel.evaluate_population(&pop, EnvId::CartPole, 9);
        assert_eq!(a.fitnesses, b.fitnesses, "order and values preserved");
        assert_eq!(a.steps_per_genome, b.steps_per_genome);
        assert!((a.eval_seconds - b.eval_seconds).abs() < 1e-12, "modeled time unchanged");
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        let _ = CpuBackend::with_threads(SwCostModel::default(), 0);
    }

    #[test]
    fn backend_names_match_paper() {
        assert_eq!(BackendKind::Cpu.name(), "E3-CPU");
        assert_eq!(BackendKind::Gpu.name(), "E3-GPU");
        assert_eq!(BackendKind::Inax.name(), "E3-INAX");
    }
}
