//! FPGA resource model (paper Fig. 10(b)).
//!
//! The paper reports post-route resource utilization of two INAX
//! configurations (`E3_a` and `E3_b`) on the Xilinx ZCU104 (Zynq
//! UltraScale+ XCZU7EV). The reproduction substitutes an analytical
//! per-block cost model: each PE consumes one DSP slice plus LUT/FF
//! datapath, each PU adds buffer BRAM and control logic, and a fixed
//! base covers the controller and DMA.

use e3_inax::InaxConfig;
use serde::{Deserialize, Serialize};

/// Absolute resource counts of a design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FpgaResources {
    /// Look-up tables.
    pub lut: u64,
    /// Flip-flops.
    pub ff: u64,
    /// DSP slices.
    pub dsp: u64,
    /// 36Kb block RAMs.
    pub bram: u64,
}

impl FpgaResources {
    /// Estimated resources of an INAX configuration: per-PE datapath,
    /// per-PU buffers/control, and a fixed controller/DMA base.
    pub fn of_inax(config: &InaxConfig) -> Self {
        let pes = (config.num_pu * config.num_pe) as u64;
        let pus = config.num_pu as u64;
        FpgaResources {
            lut: 15_000 + 1_200 * pus + 300 * pes,
            ff: 10_000 + 900 * pus + 250 * pes,
            dsp: pes,
            bram: 10 + 2 * pus,
        }
    }
}

/// A device's resource budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FpgaBudget {
    /// Total LUTs available.
    pub lut: u64,
    /// Total FFs available.
    pub ff: u64,
    /// Total DSP slices available.
    pub dsp: u64,
    /// Total 36Kb BRAMs available.
    pub bram: u64,
}

impl FpgaBudget {
    /// The ZCU104's XCZU7EV device.
    pub fn zcu104() -> Self {
        FpgaBudget {
            lut: 230_400,
            ff: 460_800,
            dsp: 1_728,
            bram: 312,
        }
    }

    /// Utilization fractions `(lut, ff, dsp, bram)` of a design on this
    /// budget.
    pub fn utilization(&self, used: &FpgaResources) -> (f64, f64, f64, f64) {
        (
            used.lut as f64 / self.lut as f64,
            used.ff as f64 / self.ff as f64,
            used.dsp as f64 / self.dsp as f64,
            used.bram as f64 / self.bram as f64,
        )
    }

    /// Whether the design fits the device.
    pub fn fits(&self, used: &FpgaResources) -> bool {
        used.lut <= self.lut && used.ff <= self.ff && used.dsp <= self.dsp && used.bram <= self.bram
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_e3a_fits_zcu104() {
        // E3_a: PU=50, PE≈4 (output-node heuristic, §VI-C).
        let config = InaxConfig::builder().num_pu(50).num_pe(4).build();
        let used = FpgaResources::of_inax(&config);
        let budget = FpgaBudget::zcu104();
        assert!(budget.fits(&used), "E3_a must fit: {used:?}");
        let (lut, _, dsp, bram) = budget.utilization(&used);
        assert!(lut > 0.3 && lut < 0.9, "LUT utilization {lut}");
        assert!(dsp > 0.05 && dsp < 0.5, "DSP utilization {dsp}");
        assert!(bram < 0.6, "BRAM utilization {bram}");
    }

    #[test]
    fn bigger_config_e3b_uses_more_resources() {
        let a = FpgaResources::of_inax(&InaxConfig::builder().num_pu(50).num_pe(4).build());
        let b = FpgaResources::of_inax(&InaxConfig::builder().num_pu(50).num_pe(8).build());
        assert!(b.lut > a.lut && b.dsp > a.dsp);
        assert!(FpgaBudget::zcu104().fits(&b), "E3_b still fits");
    }

    #[test]
    fn utilization_can_exceed_budget() {
        let huge = FpgaResources::of_inax(&InaxConfig::builder().num_pu(500).num_pe(8).build());
        let budget = FpgaBudget::zcu104();
        assert!(!budget.fits(&huge));
        assert!(budget.utilization(&huge).0 > 1.0);
    }
}
