//! Platform cost models: modeled time for software and GPU execution.
//!
//! The paper measures wall-clock on a desktop i7 running `neat-python`
//! (interpreted Python), a GTX 1080 GPU, and the ZCU104 FPGA. This
//! reproduction replaces the first two with deterministic **cost
//! models** calibrated to those platform classes, because a Rust
//! reimplementation's raw wall-clock would not be comparable to the
//! interpreted baseline the paper speeds up (see DESIGN.md,
//! substitutions). The INAX side needs no model — its simulator counts
//! cycles directly.
//!
//! The calibration constants reproduce the paper's magnitude classes:
//! interpreted per-inference cost in the hundreds of microseconds,
//! cheap classic-control env steps, "evolve" a few percent of NEAT
//! runtime (Fig. 1(b)), and a GPU that *loses* to the CPU on small
//! irregular workloads (Fig. 9(b)).

use e3_neat::{Genome, NetPlan, Network};
use serde::{Deserialize, Serialize};

/// Cost model of the interpreted software runtime (CPU-side NEAT).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SwCostModel {
    /// Seconds per node evaluated in software inference.
    pub sec_per_node_eval: f64,
    /// Seconds per connection (MAC) in software inference.
    pub sec_per_conn_eval: f64,
    /// Fixed per-inference interpreter overhead (function dispatch,
    /// list building).
    pub sec_per_inference: f64,
    /// Seconds per environment step (classic-control physics).
    pub sec_per_env_step: f64,
    /// Seconds to mutate one genome.
    pub sec_mutate_per_genome: f64,
    /// Seconds to crossover one child.
    pub sec_crossover_per_child: f64,
    /// Seconds per genome-to-representative distance computation
    /// during speciation.
    pub sec_speciate_per_comparison: f64,
    /// Seconds of fixed CreateNet cost per genome.
    ///
    /// Provenance: neat-python's `FeedForwardNetwork.create` pays a
    /// fixed interpreter cost per genome (required-node discovery,
    /// layer computation entry) before touching any gene; 50 µs is the
    /// same magnitude class as [`SwCostModel::sec_per_inference`],
    /// which models the analogous fixed dispatch cost of one forward
    /// pass.
    pub sec_createnet_per_genome: f64,
    /// Seconds of CreateNet cost per gene (node or connection).
    ///
    /// Provenance: every decode — neat-python's `create` and this
    /// repo's [`e3_neat::NetPlan::compile`] alike — reads each node
    /// and each connection gene a small constant number of times
    /// (topological sort, per-node fan-in grouping), so CreateNet is
    /// affine in total gene count. 1 µs/gene is the interpreted
    /// per-item loop cost, matching
    /// [`SwCostModel::sec_speciate_per_comparison`].
    pub sec_createnet_per_gene: f64,
}

impl SwCostModel {
    /// Modeled software time for one inference of `net`.
    pub fn inference_seconds(&self, net: &Network) -> f64 {
        self.inference_seconds_plan(net.plan())
    }

    /// Modeled software time for one inference of a compiled `plan` —
    /// the same cost, priced without decoding a [`Network`], so the
    /// batched eval path charges bit-identically to the scalar path.
    pub fn inference_seconds_plan(&self, plan: &NetPlan) -> f64 {
        self.sec_per_inference
            + plan.num_nodes() as f64 * self.sec_per_node_eval
            + plan.num_connections() as f64 * self.sec_per_conn_eval
    }

    /// Modeled CreateNet (genome → network decode) time.
    ///
    /// CreateNet in this repo is [`e3_neat::NetPlan::compile`]: a Kahn
    /// topological sort over all genes followed by CSR packing, both
    /// linear in `nodes + connections`. The model is therefore affine
    /// in total gene count — a fixed per-genome dispatch term plus a
    /// per-gene term (see the field docs for constant provenance).
    pub fn createnet_seconds(&self, nodes: usize, connections: usize) -> f64 {
        self.sec_createnet_per_genome + (nodes + connections) as f64 * self.sec_createnet_per_gene
    }

    /// Modeled CreateNet time for compiling `genome` into a
    /// [`e3_neat::NetPlan`].
    ///
    /// Convenience over [`SwCostModel::createnet_seconds`] that makes
    /// the convention explicit: plan compilation reads *every* gene of
    /// the genome (enabled or not, the sort still visits them), so the
    /// cost is charged on the full gene counts, not the decoded
    /// network's.
    pub fn createnet_seconds_for(&self, genome: &Genome) -> f64 {
        self.createnet_seconds(genome.nodes().len(), genome.connections().len())
    }
}

impl Default for SwCostModel {
    /// Calibration for the paper's desktop-Python software stack.
    fn default() -> Self {
        SwCostModel {
            sec_per_node_eval: 10.0e-6,
            sec_per_conn_eval: 2.0e-6,
            sec_per_inference: 50.0e-6,
            sec_per_env_step: 5.0e-6,
            sec_mutate_per_genome: 60.0e-6,
            sec_crossover_per_child: 40.0e-6,
            sec_speciate_per_comparison: 1.0e-6,
            sec_createnet_per_genome: 50.0e-6,
            sec_createnet_per_gene: 1.0e-6,
        }
    }
}

/// Cost model of GPU offload for irregular per-individual inference.
///
/// NEAT on a GPU is launch-bound (paper §VI-A: "NEAT algorithm is
/// generally not efficient on GPUs because of small batch size and
/// dynamic topology"): each individual's irregular topology compiles
/// to a chain of tiny per-level kernels, plus host↔device transfers
/// every environment step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuCostModel {
    /// Seconds per kernel launch (driver + scheduling).
    pub sec_per_kernel_launch: f64,
    /// Kernels per network level (GEMM + activation).
    pub kernels_per_level: f64,
    /// Host↔device transfer time per inference (observation up,
    /// action down, small packets dominated by latency).
    pub sec_transfer_per_inference: f64,
    /// Seconds per dense MAC once a kernel runs (throughput term;
    /// negligible for these sizes but kept for completeness).
    pub sec_per_dense_conn: f64,
}

impl GpuCostModel {
    /// Modeled GPU time for one inference of `net`: the irregular
    /// network executes as its dense per-level counterpart.
    pub fn inference_seconds(&self, net: &Network) -> f64 {
        self.inference_seconds_plan(net.plan())
    }

    /// Modeled GPU time for one inference of a compiled `plan` (see
    /// [`GpuCostModel::inference_seconds`]); bit-identical to pricing
    /// the decoded network.
    pub fn inference_seconds_plan(&self, plan: &NetPlan) -> f64 {
        let levels = plan.num_compute_levels() as f64;
        let widths = plan.level_widths();
        let mut dense_macs = 0.0;
        let mut prev = plan.num_inputs() as f64;
        for w in widths {
            dense_macs += prev * w as f64;
            prev = w as f64;
        }
        levels * self.kernels_per_level * self.sec_per_kernel_launch
            + self.sec_transfer_per_inference
            + dense_macs * self.sec_per_dense_conn
    }
}

impl Default for GpuCostModel {
    /// Calibration for a GTX-1080-class discrete GPU.
    fn default() -> Self {
        GpuCostModel {
            sec_per_kernel_launch: 1.0e-3,
            kernels_per_level: 2.0,
            sec_transfer_per_inference: 2.0e-3,
            sec_per_dense_conn: 1.0e-9,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use e3_neat::{Genome, InnovationTracker};

    fn tiny_net() -> Network {
        let mut tracker = InnovationTracker::with_reserved_nodes(3);
        let mut g = Genome::bare(2, 1);
        g.add_connection(0, 2, 1.0, &mut tracker).unwrap();
        g.add_connection(1, 2, 1.0, &mut tracker).unwrap();
        g.decode().unwrap()
    }

    #[test]
    fn sw_inference_scales_with_size() {
        let model = SwCostModel::default();
        let net = tiny_net();
        let t = model.inference_seconds(&net);
        assert!(t > model.sec_per_inference);
        assert!(t < 1e-3, "a tiny net is fast even interpreted");
    }

    #[test]
    fn gpu_is_slower_than_sw_for_tiny_irregular_nets() {
        // The inversion that makes E3-GPU lose (Fig. 9(b)).
        let net = tiny_net();
        let sw = SwCostModel::default().inference_seconds(&net);
        let gpu = GpuCostModel::default().inference_seconds(&net);
        assert!(gpu > 10.0 * sw, "GPU {gpu} must be launch-bound vs SW {sw}");
    }

    #[test]
    fn plan_pricing_is_bit_identical_to_network_pricing() {
        let net = tiny_net();
        let sw = SwCostModel::default();
        let gpu = GpuCostModel::default();
        assert_eq!(
            sw.inference_seconds(&net).to_bits(),
            sw.inference_seconds_plan(net.plan()).to_bits()
        );
        assert_eq!(
            gpu.inference_seconds(&net).to_bits(),
            gpu.inference_seconds_plan(net.plan()).to_bits()
        );
    }

    #[test]
    fn createnet_cost_grows_with_genome() {
        let model = SwCostModel::default();
        assert!(model.createnet_seconds(100, 500) > model.createnet_seconds(5, 5));
    }

    #[test]
    fn createnet_for_genome_charges_full_gene_count() {
        let mut tracker = InnovationTracker::with_reserved_nodes(3);
        let mut g = Genome::bare(2, 1);
        g.add_connection(0, 2, 1.0, &mut tracker).unwrap();
        g.add_connection(1, 2, 1.0, &mut tracker).unwrap();
        let model = SwCostModel::default();
        assert_eq!(
            model.createnet_seconds_for(&g),
            model.createnet_seconds(g.nodes().len(), g.connections().len())
        );
    }
}
