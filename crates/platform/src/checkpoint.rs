//! Whole-run state capture for crash-safe, bit-identical resume.
//!
//! A [`RunState`] is everything [`crate::E3Platform`] accumulates
//! while running: the population snapshot (including the evolve-phase
//! RNG stream), the per-function time profile, complexity statistics,
//! accelerator accounting, the convergence trace, the episode-seed
//! schedule position, and the generation counter. Restoring one into
//! a fresh platform makes the continuation **bit-identical** to a run
//! that was never interrupted: same fitness trajectory, same modeled
//! seconds, same end-of-run telemetry `Summary`, at any thread count.
//!
//! `e3-store` persists these states generically; this module supplies
//! the platform-specific payload and the [`fingerprint`] that ties a
//! checkpoint directory to one `(config, backend, seed)` triple so a
//! snapshot can never be resumed into a different run.

use crate::backend::BackendKind;
use crate::platform::{E3Config, FunctionProfile};
use e3_inax::{EpisodeRunReport, UtilizationBreakdown};
use e3_neat::checkpoint::PopulationSnapshot;
use e3_neat::stats::ComplexityStats;
use e3_store::format::fnv1a;
use e3_store::RunFingerprint;
use serde::{Deserialize, Serialize};

/// Complete resumable state of an [`crate::E3Platform`] between two
/// generations.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunState {
    /// Population, species, innovation counters, and the evolve-phase
    /// RNG stream.
    pub population: PopulationSnapshot,
    /// Accumulated per-function modeled seconds.
    pub profile: FunctionProfile,
    /// Accumulated structural statistics.
    pub complexity: ComplexityStats,
    /// Accumulated accelerator cycle accounting (INAX runs).
    pub hw_report: Option<EpisodeRunReport>,
    /// Accumulated per-PU/per-PE utilization accounting (INAX runs).
    pub hw_utilization: Option<UtilizationBreakdown>,
    /// Convergence trace so far.
    pub trace: Vec<(f64, f64)>,
    /// Next value of the deterministic episode-seed schedule.
    pub episode_seed: u64,
    /// Generations completed.
    pub generation: usize,
    /// Best fitness returned by the most recent step, used to decide
    /// whether a resumed run already hit its target.
    pub last_step_best: Option<f64>,
}

/// The identity a checkpoint directory is bound to.
///
/// Hashes the canonical configuration JSON with the
/// result-irrelevant fields neutralized: `threads` (results are
/// bit-identical at any thread count), the checkpoint policy itself
/// (tuning retention or cadence must not orphan existing snapshots),
/// and the held-out scenario pass (strictly read-only telemetry —
/// toggling it must not orphan snapshots either). Everything else —
/// env, NEAT hyperparameters, cost models, INAX geometry, generation
/// cap, target, the *train* scenario distribution — participates, so
/// a snapshot from a differently configured run is refused at
/// recovery.
pub fn fingerprint(config: &E3Config, backend: BackendKind, seed: u64) -> RunFingerprint {
    let mut canonical = config.clone();
    canonical.threads = 1;
    canonical.checkpoint = None;
    canonical.scenario.holdout = None;
    let json = serde_json::to_string(&canonical).expect("E3Config serializes");
    RunFingerprint {
        config_hash: fnv1a(json.as_bytes()),
        backend: backend.name().to_string(),
        seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use e3_envs::EnvId;
    use e3_store::CheckpointPolicy;

    fn config() -> E3Config {
        E3Config::builder(EnvId::CartPole)
            .population_size(20)
            .max_generations(3)
            .build()
    }

    #[test]
    fn fingerprint_ignores_threads_and_checkpoint_policy() {
        let base = fingerprint(&config(), BackendKind::Cpu, 7);
        let mut threaded = config();
        threaded.threads = 8;
        threaded.checkpoint = Some(CheckpointPolicy::new("/tmp/ckpt").every(5));
        assert_eq!(fingerprint(&threaded, BackendKind::Cpu, 7), base);
    }

    #[test]
    fn fingerprint_distinguishes_run_identity() {
        let base = fingerprint(&config(), BackendKind::Cpu, 7);
        assert_ne!(fingerprint(&config(), BackendKind::Cpu, 8), base);
        assert_ne!(fingerprint(&config(), BackendKind::Inax, 7), base);
        let mut bigger = config();
        bigger.neat.population_size = 21;
        assert_ne!(fingerprint(&bigger, BackendKind::Cpu, 7), base);
    }

    #[test]
    fn run_state_round_trips_through_json() {
        let platform = crate::E3Platform::new(config(), BackendKind::Cpu, 7);
        let state = platform.capture_state();
        let json = serde_json::to_string(&state).unwrap();
        let back: RunState = serde_json::from_str(&json).unwrap();
        assert_eq!(back.generation, state.generation);
        assert_eq!(back.episode_seed, state.episode_seed);
        assert_eq!(back.population.genomes, state.population.genomes);
        assert_eq!(back.trace, state.trace);
    }
}
