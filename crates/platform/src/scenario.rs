//! Scenario-distribution evaluation: the contract that turns "one env
//! per [`EnvId`]" into "a seeded distribution of envs per [`EnvId`]".
//!
//! A [`ScenarioConfig`] describes how a run samples environment
//! physics: a *training* [`ScenarioDistribution`] evaluated on `K`
//! scenarios per genome per generation (aggregated by a
//! [`FitnessAggregation`]), and optionally a *held-out* distribution
//! the incumbent best genome is probed against to measure
//! generalization (emitted as `TelemetryEvent::Generalization`).
//!
//! ## Seeding scheme
//!
//! Everything derives from [`e3_exec::scenario_seed`], the
//! four-coordinate mix `hash(run_seed, generation, genome_index,
//! scenario_index)`:
//!
//! * **Training scenario parameters** are shared across the population
//!   (every genome faces the same K worlds, so fitnesses are
//!   comparable): the genome coordinate is pinned to the reserved
//!   [`PARAM_STREAM`] salt —
//!   `sample(scenario_seed(run_seed, generation, PARAM_STREAM, s))`.
//! * **Training episode seeds** are per `(genome, scenario)`:
//!   `scenario_seed(run_seed, generation, genome_index, s)`.
//! * **Held-out scenario parameters** pin the genome coordinate to
//!   [`HOLDOUT_PARAM_STREAM`] and **held-out episode seeds** to
//!   [`HOLDOUT_EPISODE_STREAM`], so the held-out worlds never collide
//!   with training worlds at any coordinate.
//!
//! The three salts sit at the top of the `u64` range, far above any
//! real genome index, so reserved streams and per-genome streams can
//! never alias.
//!
//! ## The vanilla gate
//!
//! [`ScenarioConfig::is_vanilla`] is the bit-identity switch: with one
//! scenario, default train parameters, and mean aggregation, the
//! platform takes the legacy fixed-env evaluation path verbatim —
//! same episode-seed schedule, same FP operation order, bit-identical
//! populations and telemetry to the pre-scenario platform. The
//! held-out pass is deliberately **excluded** from the gate: it is
//! read-only (it never touches the population, the episode-seed
//! schedule, or the modeled-time profile), so enabling holdout alone
//! keeps training on the legacy path.

use e3_envs::{ScenarioDistribution, ScenarioParams};
use e3_exec::rng::scenario_seed;
use serde::{Deserialize, Serialize};

/// Genome-coordinate salt for sampling *training* scenario parameters
/// (shared by the whole population).
pub const PARAM_STREAM: u64 = u64::MAX;

/// Genome-coordinate salt for sampling *held-out* scenario parameters.
pub const HOLDOUT_PARAM_STREAM: u64 = u64::MAX - 1;

/// Genome-coordinate salt for *held-out* episode seeds.
pub const HOLDOUT_EPISODE_STREAM: u64 = u64::MAX - 2;

/// How per-scenario fitnesses collapse into one genome fitness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub enum FitnessAggregation {
    /// Arithmetic mean over the K scenarios (summed in scenario
    /// order).
    #[default]
    Mean,
    /// Conditional value-at-risk: the mean of the worst
    /// `ceil(alpha * K)` scenarios — optimizes for robustness under
    /// the hardest sampled worlds instead of the average one.
    CVaR {
        /// Tail fraction in `(0, 1]`; `1.0` degenerates to the mean.
        alpha: f64,
    },
}

/// Collapses per-scenario fitnesses into one value.
///
/// `Mean` sums in scenario order (the exact FP sequence both the
/// scalar and batched kernels produce). `CVaR` sorts a copy ascending
/// by `total_cmp` and averages the worst `ceil(alpha * K)` entries
/// (at least one).
///
/// # Panics
///
/// Panics if `per_scenario` is empty.
pub fn aggregate_fitness(per_scenario: &[f64], aggregation: FitnessAggregation) -> f64 {
    assert!(
        !per_scenario.is_empty(),
        "cannot aggregate zero scenario fitnesses"
    );
    match aggregation {
        FitnessAggregation::Mean => per_scenario.iter().sum::<f64>() / per_scenario.len() as f64,
        FitnessAggregation::CVaR { alpha } => {
            let mut sorted = per_scenario.to_vec();
            sorted.sort_by(f64::total_cmp);
            let tail =
                ((alpha * per_scenario.len() as f64).ceil() as usize).clamp(1, per_scenario.len());
            sorted[..tail].iter().sum::<f64>() / tail as f64
        }
    }
}

/// Held-out generalization probing: every `every` generations the
/// incumbent best genome is evaluated on `scenarios` worlds sampled
/// from a distribution the training loop never sees.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct HoldoutConfig {
    /// The held-out scenario distribution.
    pub distribution: ScenarioDistribution,
    /// Worlds sampled per pass.
    pub scenarios: usize,
    /// Generation cadence (a pass runs when `generation % every == 0`;
    /// `0` is treated as `1`).
    pub every: usize,
}

// Manual impl: `scenarios` and `every` fall back to their defaults
// when omitted (the derive has no notion of field defaults).
impl serde::Deserialize for HoldoutConfig {
    fn from_value(value: &serde::Value) -> Result<Self, serde::DeError> {
        if !matches!(value, serde::Value::Object(_)) {
            return Err(serde::DeError::expected("object (HoldoutConfig)", value));
        }
        let mut config = HoldoutConfig::new(serde::Deserialize::from_value(serde::field_or_null(
            value,
            "distribution",
        ))?);
        let scenarios = serde::field_or_null(value, "scenarios");
        if !matches!(scenarios, serde::Value::Null) {
            config.scenarios = serde::Deserialize::from_value(scenarios)?;
        }
        let every = serde::field_or_null(value, "every");
        if !matches!(every, serde::Value::Null) {
            config.every = serde::Deserialize::from_value(every)?;
        }
        Ok(config)
    }
}

fn default_holdout_scenarios() -> usize {
    8
}

fn default_holdout_every() -> usize {
    1
}

impl HoldoutConfig {
    /// A pass over `distribution` with the default cadence (8 worlds,
    /// every generation).
    pub fn new(distribution: ScenarioDistribution) -> Self {
        HoldoutConfig {
            distribution,
            scenarios: default_holdout_scenarios(),
            every: default_holdout_every(),
        }
    }

    /// Sets the number of worlds sampled per pass.
    pub fn scenarios(mut self, scenarios: usize) -> Self {
        self.scenarios = scenarios;
        self
    }

    /// Sets the generation cadence.
    pub fn every(mut self, every: usize) -> Self {
        self.every = every;
        self
    }
}

/// Scenario-distribution configuration of one run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ScenarioConfig {
    /// The training distribution scenario parameters are sampled from.
    pub train: ScenarioDistribution,
    /// Scenarios evaluated per genome per generation (`K`).
    pub scenarios_per_eval: usize,
    /// How per-scenario fitnesses collapse into one genome fitness.
    pub aggregation: FitnessAggregation,
    /// Optional held-out generalization probing.
    pub holdout: Option<HoldoutConfig>,
}

// Manual impl: every field falls back to its vanilla default when
// omitted, and `Null` (a containing struct that predates scenario
// distributions, e.g. an old `E3Config` JSON) deserializes to the
// vanilla default wholesale — old configs load unchanged.
impl serde::Deserialize for ScenarioConfig {
    fn from_value(value: &serde::Value) -> Result<Self, serde::DeError> {
        if matches!(value, serde::Value::Null) {
            return Ok(ScenarioConfig::default());
        }
        if !matches!(value, serde::Value::Object(_)) {
            return Err(serde::DeError::expected("object (ScenarioConfig)", value));
        }
        let mut config = ScenarioConfig::default();
        let train = serde::field_or_null(value, "train");
        if !matches!(train, serde::Value::Null) {
            config.train = serde::Deserialize::from_value(train)?;
        }
        let k = serde::field_or_null(value, "scenarios_per_eval");
        if !matches!(k, serde::Value::Null) {
            config.scenarios_per_eval = serde::Deserialize::from_value(k)?;
        }
        let aggregation = serde::field_or_null(value, "aggregation");
        if !matches!(aggregation, serde::Value::Null) {
            config.aggregation = serde::Deserialize::from_value(aggregation)?;
        }
        config.holdout = serde::Deserialize::from_value(serde::field_or_null(value, "holdout"))?;
        Ok(config)
    }
}

fn default_scenarios_per_eval() -> usize {
    1
}

impl Default for ScenarioConfig {
    /// The vanilla contract: one scenario, default train parameters,
    /// mean aggregation, no holdout (matches the serde field
    /// defaults, so `{}` deserializes to this).
    fn default() -> Self {
        ScenarioConfig {
            train: ScenarioDistribution::default(),
            scenarios_per_eval: default_scenarios_per_eval(),
            aggregation: FitnessAggregation::default(),
            holdout: None,
        }
    }
}

impl ScenarioConfig {
    /// The legacy fixed-env contract: one scenario, default train
    /// parameters, mean aggregation — the platform takes the
    /// pre-scenario evaluation path verbatim and results are
    /// bit-identical to it. Holdout is deliberately not consulted: the
    /// held-out pass is read-only, so it never moves training off the
    /// legacy path.
    pub fn is_vanilla(&self) -> bool {
        self.scenarios_per_eval <= 1
            && self.train.is_default()
            && self.aggregation == FitnessAggregation::Mean
    }

    /// Sets the training distribution.
    pub fn train(mut self, train: ScenarioDistribution) -> Self {
        self.train = train;
        self
    }

    /// Sets the number of scenarios per evaluation (`K`, must be ≥ 1
    /// by the time the config is built into an `E3Config`).
    pub fn scenarios_per_eval(mut self, k: usize) -> Self {
        self.scenarios_per_eval = k;
        self
    }

    /// Sets the fitness aggregation.
    pub fn aggregation(mut self, aggregation: FitnessAggregation) -> Self {
        self.aggregation = aggregation;
        self
    }

    /// Installs a held-out generalization pass.
    pub fn holdout(mut self, holdout: HoldoutConfig) -> Self {
        self.holdout = Some(holdout);
        self
    }
}

impl ScenarioConfig {
    /// Sampled training parameters for one generation: K worlds shared
    /// by every genome, drawn from the reserved [`PARAM_STREAM`].
    pub fn train_params(&self, run_seed: u64, generation: u64) -> Vec<ScenarioParams> {
        (0..self.scenarios_per_eval.max(1))
            .map(|s| {
                self.train
                    .sample(scenario_seed(run_seed, generation, PARAM_STREAM, s as u64))
            })
            .collect()
    }
}

/// One generation's fully resolved evaluation plan under a scenario
/// distribution: the K sampled worlds, the genome-major episode-seed
/// matrix, and the aggregation — everything a backend needs to run a
/// multi-scenario evaluation deterministically.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Sampled scenario parameters, one per scenario (shared across
    /// genomes).
    pub params: Vec<ScenarioParams>,
    /// Episode seeds in genome-major order:
    /// `episode_seeds[genome * K + scenario]`.
    pub episode_seeds: Vec<u64>,
    /// How per-scenario fitnesses collapse per genome.
    pub aggregation: FitnessAggregation,
}

impl ScenarioSpec {
    /// Resolves `config` for one generation of a `population`-sized
    /// run: samples the K training worlds and derives every
    /// `(genome, scenario)` episode seed. Identical inputs produce an
    /// identical spec regardless of thread count or backend.
    pub fn for_generation(
        config: &ScenarioConfig,
        run_seed: u64,
        generation: u64,
        population: usize,
    ) -> Self {
        let k = config.scenarios_per_eval.max(1);
        let params = config.train_params(run_seed, generation);
        let mut episode_seeds = Vec::with_capacity(population * k);
        for genome in 0..population {
            for s in 0..k {
                episode_seeds.push(scenario_seed(run_seed, generation, genome as u64, s as u64));
            }
        }
        ScenarioSpec {
            params,
            episode_seeds,
            aggregation: config.aggregation,
        }
    }

    /// Number of scenarios per genome.
    pub fn scenarios(&self) -> usize {
        self.params.len()
    }
}

/// Sampled held-out worlds and episode seeds for one generalization
/// pass, from the reserved holdout streams.
pub fn holdout_plan(
    holdout: &HoldoutConfig,
    run_seed: u64,
    generation: u64,
) -> Vec<(ScenarioParams, u64)> {
    (0..holdout.scenarios)
        .map(|s| {
            let params = holdout.distribution.sample(scenario_seed(
                run_seed,
                generation,
                HOLDOUT_PARAM_STREAM,
                s as u64,
            ));
            let seed = scenario_seed(run_seed, generation, HOLDOUT_EPISODE_STREAM, s as u64);
            (params, seed)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_vanilla_and_matches_serde_defaults() {
        let config = ScenarioConfig::default();
        assert!(config.is_vanilla());
        assert_eq!(config.scenarios_per_eval, 1);
        assert_eq!(config.aggregation, FitnessAggregation::Mean);
        assert!(config.holdout.is_none());
        // An empty JSON object deserializes to the same config, so
        // pre-scenario configs load unchanged.
        let from_empty: ScenarioConfig = serde_json::from_str("{}").unwrap();
        assert_eq!(from_empty, config);
    }

    #[test]
    fn non_default_knobs_leave_vanilla() {
        let k4 = ScenarioConfig::default().scenarios_per_eval(4);
        assert!(!k4.is_vanilla());
        let shifted = ScenarioConfig::default().train(ScenarioDistribution::moderate());
        assert!(!shifted.is_vanilla());
        let cvar = ScenarioConfig::default().aggregation(FitnessAggregation::CVaR { alpha: 0.5 });
        assert!(!cvar.is_vanilla());
        // Holdout alone stays vanilla: the pass is read-only.
        let holdout =
            ScenarioConfig::default().holdout(HoldoutConfig::new(ScenarioDistribution::shifted()));
        assert!(holdout.is_vanilla());
    }

    #[test]
    fn mean_aggregation_is_the_scenario_order_sum() {
        let fits = [3.0, 1.0, 2.0];
        let expected: f64 = (3.0 + 1.0 + 2.0) / 3.0;
        assert_eq!(
            aggregate_fitness(&fits, FitnessAggregation::Mean).to_bits(),
            expected.to_bits()
        );
    }

    #[test]
    fn cvar_averages_the_worst_tail() {
        let fits = [10.0, -5.0, 3.0, 0.0];
        // alpha 0.5 ⇒ worst 2 of 4: -5 and 0.
        let half = aggregate_fitness(&fits, FitnessAggregation::CVaR { alpha: 0.5 });
        assert_eq!(half, -2.5);
        // alpha 0.1 ⇒ ceil(0.4) = 1: the single worst.
        let worst = aggregate_fitness(&fits, FitnessAggregation::CVaR { alpha: 0.1 });
        assert_eq!(worst, -5.0);
        // alpha 1.0 degenerates to the mean.
        let all = aggregate_fitness(&fits, FitnessAggregation::CVaR { alpha: 1.0 });
        assert_eq!(all, fits.iter().sum::<f64>() / 4.0);
    }

    #[test]
    fn spec_is_deterministic_and_genome_major() {
        let config = ScenarioConfig::default()
            .train(ScenarioDistribution::moderate())
            .scenarios_per_eval(3);
        let a = ScenarioSpec::for_generation(&config, 42, 7, 5);
        let b = ScenarioSpec::for_generation(&config, 42, 7, 5);
        assert_eq!(a, b);
        assert_eq!(a.params.len(), 3);
        assert_eq!(a.episode_seeds.len(), 15);
        // Every (genome, scenario) cell is distinct.
        let mut seeds = a.episode_seeds.clone();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 15, "episode seeds collide");
        // Different generation ⇒ different worlds and seeds.
        let c = ScenarioSpec::for_generation(&config, 42, 8, 5);
        assert_ne!(a.params, c.params);
        assert_ne!(a.episode_seeds, c.episode_seeds);
    }

    #[test]
    fn train_and_holdout_streams_never_alias() {
        let config = ScenarioConfig::default()
            .train(ScenarioDistribution::moderate())
            .scenarios_per_eval(4);
        let spec = ScenarioSpec::for_generation(&config, 42, 3, 8);
        let holdout = HoldoutConfig::new(ScenarioDistribution::moderate()).scenarios(4);
        let plan = holdout_plan(&holdout, 42, 3);
        for (_, holdout_seed) in &plan {
            assert!(
                !spec.episode_seeds.contains(holdout_seed),
                "holdout episode seed collided with a training seed"
            );
        }
    }

    #[test]
    fn holdout_plan_is_deterministic() {
        let holdout = HoldoutConfig::new(ScenarioDistribution::shifted())
            .scenarios(6)
            .every(3);
        let a = holdout_plan(&holdout, 1, 2);
        let b = holdout_plan(&holdout, 1, 2);
        assert_eq!(a, b);
        assert_eq!(a.len(), 6);
        let other_gen = holdout_plan(&holdout, 1, 3);
        assert_ne!(a, other_gen);
    }

    #[test]
    fn scenario_config_round_trips_through_json() {
        let config = ScenarioConfig::default()
            .train(ScenarioDistribution::moderate())
            .scenarios_per_eval(4)
            .aggregation(FitnessAggregation::CVaR { alpha: 0.25 })
            .holdout(HoldoutConfig::new(ScenarioDistribution::shifted()).scenarios(12));
        let json = serde_json::to_string(&config).unwrap();
        let back: ScenarioConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, config);
    }
}
