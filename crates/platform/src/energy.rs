//! Energy model (paper Fig. 10(a)).
//!
//! The paper measures CPU power with Intel Power Gadget, GPU power
//! with `nvidia-smi`, and FPGA power with Vivado post-route analysis.
//! The reproduction substitutes representative power envelopes for
//! those platform classes and multiplies by modeled runtime:
//! `E = Σ_phase P(devices active in phase) × t(phase)`.

use crate::backend::BackendKind;
use crate::platform::FunctionProfile;
use serde::{Deserialize, Serialize};

/// Power envelopes of the three platforms (watts).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Desktop CPU package power while computing.
    pub cpu_active_w: f64,
    /// CPU package power while waiting on an offload.
    pub cpu_idle_w: f64,
    /// Discrete GPU board power while computing.
    pub gpu_active_w: f64,
    /// FPGA (INAX) power while computing (ZCU104-class design).
    pub fpga_active_w: f64,
}

impl Default for PowerModel {
    /// i7-class CPU, GTX-1080-class GPU, ZCU104-class FPGA.
    fn default() -> Self {
        PowerModel {
            cpu_active_w: 45.0,
            cpu_idle_w: 8.0,
            gpu_active_w: 180.0,
            fpga_active_w: 5.0,
        }
    }
}

/// Energy of one run, split by phase.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Joules spent in the evaluate (inference) phase.
    pub evaluate_joules: f64,
    /// Joules spent stepping the environment (always CPU).
    pub env_joules: f64,
    /// Joules spent in the evolve phase (always CPU).
    pub evolve_joules: f64,
}

impl EnergyReport {
    /// Total joules.
    pub fn total(&self) -> f64 {
        self.evaluate_joules + self.env_joules + self.evolve_joules
    }
}

impl PowerModel {
    /// Energy of a run with the given per-function profile on the
    /// given backend. The env and evolve phases always run on the
    /// CPU; the evaluate phase runs on the backend's device, with the
    /// CPU idling when offloaded.
    pub fn energy(&self, backend: BackendKind, profile: &FunctionProfile) -> EnergyReport {
        let evolve_seconds =
            profile.createnet + profile.mutate + profile.crossover + profile.speciate;
        let evaluate_power = match backend {
            BackendKind::Cpu => self.cpu_active_w,
            BackendKind::Gpu => self.gpu_active_w + self.cpu_idle_w,
            BackendKind::Inax => self.fpga_active_w + self.cpu_idle_w,
        };
        EnergyReport {
            evaluate_joules: profile.evaluate * evaluate_power,
            env_joules: profile.env * self.cpu_active_w,
            evolve_joules: evolve_seconds * self.cpu_active_w,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(evaluate: f64) -> FunctionProfile {
        FunctionProfile {
            evaluate,
            env: 1.0,
            createnet: 0.2,
            mutate: 0.2,
            crossover: 0.1,
            speciate: 0.1,
        }
    }

    #[test]
    fn energy_is_power_times_time() {
        let model = PowerModel::default();
        let report = model.energy(BackendKind::Cpu, &profile(10.0));
        assert!((report.evaluate_joules - 450.0).abs() < 1e-9);
        assert!((report.env_joules - 45.0).abs() < 1e-9);
        assert!((report.total() - (450.0 + 45.0 + 0.6 * 45.0)).abs() < 1e-9);
    }

    #[test]
    fn gpu_offload_pays_gpu_power_cpu_idles() {
        let model = PowerModel::default();
        let gpu = model.energy(BackendKind::Gpu, &profile(10.0));
        let cpu = model.energy(BackendKind::Cpu, &profile(10.0));
        assert!(gpu.evaluate_joules > 4.0 * cpu.evaluate_joules);
    }

    #[test]
    fn inax_offload_is_cheap() {
        let model = PowerModel::default();
        // INAX shrinks evaluate time *and* runs at FPGA power.
        let inax = model.energy(BackendKind::Inax, &profile(0.1));
        let cpu = model.energy(BackendKind::Cpu, &profile(10.0));
        let reduction = 1.0 - inax.total() / cpu.total();
        assert!(
            reduction > 0.8,
            "INAX energy reduction {reduction} (paper: 97%)"
        );
    }
}
