//! jit — tiered NetPlan execution: native-code speedup and the
//! interpreter-oracle parity gate.
//!
//! Reproduction-specific companion to [`crate::experiments::plan`]:
//! measures the `e3-jit` straight-line x86-64 compilation of evolved
//! [`e3_neat::NetPlan`]s against the interpreter they were compiled
//! from, on genomes evolved to every environment's size class, and
//! then re-runs the seeded repro end to end with the tier on and off
//! at 1 and 4 worker threads — the [`crate::platform::RunOutcome`]s
//! must match **exactly** (fitness bits, modeled seconds, traces),
//! because the native tier is contractually bit-identical to the
//! interpreter.
//!
//! On targets the emitter cannot serve (non-x86-64, non-Linux) the
//! benchmark does not silently skip: it asserts the fallback engaged
//! (compile attempts counted, zero plans compiled, zero native
//! activations) and that the end-to-end runs still agree — the
//! disabled tier must be a perfect no-op everywhere.

use crate::backend::BackendKind;
use crate::experiments::plan::{evolved_genome_for, probe_inputs};
use crate::experiments::Scale;
use crate::platform::{E3Config, E3Platform, RunError};
use crate::JitConfig;
use e3_envs::EnvId;
use e3_jit::CompiledPlan;
use e3_neat::Network;
use e3_telemetry::MemoryCollector;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::hint::black_box;
use std::time::Instant;

/// Thread counts the end-to-end parity gate visits.
pub const THREAD_PARITY: [usize; 2] = [1, 4];

/// Hot-threshold used by the parity runs: 1, so every genome promotes
/// on first decode and the whole run executes natively — the harshest
/// possible setting for the bit-identity gate (work stealing means a
/// genome may visit a different worker's cache each generation, so
/// higher thresholds leave most of the population interpreted).
pub const PARITY_HOT_THRESHOLD: u64 = 1;

/// The ns/activate improvement `BENCH_jit.json` must demonstrate on
/// hot plans (geometric mean over qualifying environments).
pub const SPEEDUP_GATE: f64 = 1.3;

/// A plan counts as *hot* for the speedup gate when its genome has at
/// least this many enabled connections. Small nets are bound by the
/// bit-contractual activation floor (`repro plan` quantifies it) that
/// no executor may reduce; the tier targets the large evolved genomes
/// where inference time actually concentrates.
pub const HOT_PLAN_CONNECTIONS: usize = 48;

/// One microbenchmark row: the interpreter vs the natively compiled
/// plan on a genome evolved to this environment's size class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JitBenchRow {
    /// Environment whose IO dimensions sized the genome.
    pub env: EnvId,
    /// Genome node genes.
    pub nodes: usize,
    /// Enabled connection genes.
    pub connections: usize,
    /// Mean nanoseconds per interpreted `Network::activate_into`.
    pub interp_ns_per_activate: f64,
    /// Mean nanoseconds per `CompiledPlan::activate_into`; `None` when
    /// the target cannot JIT.
    pub jit_ns_per_activate: Option<f64>,
    /// `interp / jit`; `None` when the target cannot JIT.
    pub speedup: Option<f64>,
    /// Machine-code bytes the emitter produced for this plan.
    pub code_bytes: Option<u64>,
    /// Wall-clock nanoseconds one compilation took (median of 5).
    pub compile_ns: Option<f64>,
    /// Activations after which the compile cost is paid back:
    /// `compile_ns / (interp_ns - jit_ns)`. `None` when the target
    /// cannot JIT or the native path was not faster.
    pub amortize_activations: Option<u64>,
    /// The same payback expressed in generations of the quick repro
    /// (one activation per genome per environment step, steps measured
    /// on this genome's episode). Fractional: `0.1` means the compile
    /// pays for itself ten times over within the genome's first
    /// generation of episodes.
    pub amortize_generations: Option<f64>,
    /// Every probed input produced the same f64 bit pattern on the
    /// interpreter and the native tier (vacuously true when the target
    /// cannot JIT).
    pub bit_identical: bool,
}

/// One end-to-end parity measurement: the same seeded run with the
/// tier off and on at a given worker-thread count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JitParityRow {
    /// Environment.
    pub env: EnvId,
    /// Worker threads.
    pub threads: usize,
    /// Best fitness with the tier disabled (the oracle).
    pub best_fitness: f64,
    /// The full [`crate::platform::RunOutcome`]s compared equal
    /// (fitness bits, modeled seconds, convergence trace, complexity).
    pub outcome_identical: bool,
    /// Plans the tiered run promoted to native code.
    pub jit_compiled: u64,
    /// Activations the tiered run served natively.
    pub jit_activations: u64,
    /// Compile attempts that fell back to the interpreter.
    pub jit_fallbacks: u64,
}

/// The tiered-execution benchmark result (`BENCH_jit.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JitBenchResult {
    /// Whether this host can execute the native tier at all.
    pub native_target: bool,
    /// One microbenchmark row per environment size class.
    pub rows: Vec<JitBenchRow>,
    /// End-to-end tier-off vs tier-on comparison per
    /// `(environment, thread count)`.
    pub parity: Vec<JitParityRow>,
    /// Every microbenchmark row was bit-identical and every end-to-end
    /// pair of outcomes matched exactly.
    pub parity_ok: bool,
    /// On a native target: the tier engaged in the end-to-end runs
    /// (plans compiled, native activations served). On a non-native
    /// target: the fallback engaged (compile attempts counted, nothing
    /// compiled) — never a silent skip.
    pub tier_exercised: bool,
    /// Geometric-mean ns/activate speedup over **all** rows that
    /// compiled (`1.0` when none could). Reported for transparency;
    /// diluted by tiny genomes whose runtime is mostly the
    /// bit-contractual activation floor.
    pub mean_speedup: f64,
    /// Geometric-mean ns/activate speedup over the *hot* rows — those
    /// with at least [`HOT_PLAN_CONNECTIONS`] enabled connections,
    /// where inference time concentrates and the tier promotes. Falls
    /// back to [`Self::mean_speedup`] if no row qualifies at this
    /// scale.
    pub hot_speedup: f64,
    /// `hot_speedup >= SPEEDUP_GATE` (only required on native
    /// targets).
    pub speedup_ok: bool,
}

impl JitBenchResult {
    /// The single gate CI trips on: parity everywhere, the tier (or
    /// its fallback) demonstrably exercised, and — on native targets —
    /// the ns/activate improvement over the interpreter.
    pub fn gate_ok(&self) -> bool {
        self.parity_ok && self.tier_exercised && (!self.native_target || self.speedup_ok)
    }
}

fn bench_row(env: EnvId, scale: Scale, seed: u64) -> JitBenchRow {
    let genome = evolved_genome_for(env, scale, seed);
    let mut net = Network::from_genome(&genome).expect("evolved genomes decode");
    // Median-of-5 compile time: compilation is microseconds, so one
    // sample is all scheduler noise.
    let mut compile_ns_samples = Vec::with_capacity(5);
    let mut jit = None;
    for _ in 0..5 {
        let start = Instant::now();
        match CompiledPlan::compile(net.plan()) {
            Ok(compiled) => {
                compile_ns_samples.push(start.elapsed().as_secs_f64() * 1e9);
                jit = Some(compiled);
            }
            Err(_) => break,
        }
    }
    compile_ns_samples.sort_by(f64::total_cmp);
    let compile_ns =
        (!compile_ns_samples.is_empty()).then(|| compile_ns_samples[compile_ns_samples.len() / 2]);
    let inputs = probe_inputs(env.observation_size(), 16);
    let bit_identical = jit.as_mut().is_none_or(|jit| {
        inputs.iter().all(|x| {
            let interp = net.activate(x);
            let native = jit.activate(x);
            interp.len() == native.len()
                && interp
                    .iter()
                    .zip(&native)
                    .all(|(a, b)| a.to_bits() == b.to_bits())
        })
    });
    let (reps, rounds) = match scale {
        Scale::Quick => (20_000, 8),
        Scale::Full => (100_000, 16),
    };
    // Warm, then keep each executor's minimum per-call time across
    // alternating rounds (robust against scheduler/frequency noise).
    for x in &inputs {
        black_box(net.activate_into(x));
    }
    let mut interp_ns = f64::INFINITY;
    for _ in 0..rounds {
        let start = Instant::now();
        for i in 0..reps {
            black_box(net.activate_into(&inputs[i % inputs.len()]));
        }
        interp_ns = interp_ns.min(start.elapsed().as_secs_f64() * 1e9 / reps as f64);
    }
    let jit_ns = jit.as_mut().map(|jit| {
        for x in &inputs {
            black_box(jit.activate_into(x));
        }
        let mut best = f64::INFINITY;
        for _ in 0..rounds {
            let start = Instant::now();
            for i in 0..reps {
                black_box(jit.activate_into(&inputs[i % inputs.len()]));
            }
            best = best.min(start.elapsed().as_secs_f64() * 1e9 / reps as f64);
        }
        best
    });
    let amortize_activations = match (compile_ns, jit_ns) {
        (Some(compile), Some(jit_ns)) if interp_ns > jit_ns => {
            Some((compile / (interp_ns - jit_ns)).ceil() as u64)
        }
        _ => None,
    };
    // Activations per generation for this genome ≈ steps of one
    // episode (one forward pass per step); measured, not assumed.
    let amortize_generations = amortize_activations.map(|activations| {
        let mut probe = env.make();
        let (_, steps) = crate::backend::run_software_episode(&mut net, probe.as_mut(), seed);
        activations as f64 / (steps.max(1) as f64)
    });
    JitBenchRow {
        env,
        nodes: genome.nodes().len(),
        connections: genome.num_enabled_connections(),
        interp_ns_per_activate: interp_ns,
        jit_ns_per_activate: jit_ns,
        speedup: jit_ns.map(|ns| if ns > 0.0 { interp_ns / ns } else { 1.0 }),
        code_bytes: jit.as_ref().map(|jit| jit.code_bytes() as u64),
        compile_ns,
        amortize_activations,
        amortize_generations,
        bit_identical,
    }
}

/// One seeded end-to-end run with the given tier policy; returns the
/// outcome plus the run's cumulative JIT telemetry counters
/// `(compiled, activations, fallbacks)`.
fn parity_run(
    env: EnvId,
    scale: Scale,
    seed: u64,
    threads: usize,
    jit: JitConfig,
) -> Result<(crate::platform::RunOutcome, (u64, u64, u64)), RunError> {
    let config = E3Config::builder(env)
        .population_size(scale.population())
        .max_generations(scale.max_generations())
        .threads(threads)
        .jit(jit)
        .build();
    let mut collector = MemoryCollector::new();
    let outcome = E3Platform::new(config, BackendKind::Cpu, seed).run_with(&mut collector)?;
    let counters = collector.jits().fold((0, 0, 0), |acc, record| {
        (
            acc.0 + record.compiled,
            acc.1 + record.activations,
            acc.2 + record.fallbacks,
        )
    });
    Ok((outcome, counters))
}

/// Runs the microbenchmark and the end-to-end tier-on/tier-off parity
/// gate on `envs`.
///
/// # Errors
///
/// Returns [`RunError`] if one of the end-to-end runs fails.
pub fn run_on(envs: &[EnvId], scale: Scale, seed: u64) -> Result<JitBenchResult, RunError> {
    let native_target = cfg!(all(target_arch = "x86_64", target_os = "linux"));
    let rows: Vec<JitBenchRow> = envs.iter().map(|&e| bench_row(e, scale, seed)).collect();
    let mut parity = Vec::with_capacity(envs.len() * THREAD_PARITY.len());
    let mut parity_ok = rows.iter().all(|r| r.bit_identical);
    let mut compiled_total = 0u64;
    let mut activations_total = 0u64;
    let mut fallbacks_total = 0u64;
    for &env in envs {
        for threads in THREAD_PARITY {
            let (oracle, oracle_counters) =
                parity_run(env, scale, seed, threads, JitConfig::default())?;
            let tiered_config = JitConfig {
                enabled: true,
                hot_threshold: PARITY_HOT_THRESHOLD,
            };
            let (tiered, counters) = parity_run(env, scale, seed, threads, tiered_config)?;
            // The oracle runs with the tier disabled and must emit no
            // JIT telemetry at all.
            parity_ok &= oracle_counters == (0, 0, 0);
            let outcome_identical = oracle == tiered;
            parity_ok &= outcome_identical;
            compiled_total += counters.0;
            activations_total += counters.1;
            fallbacks_total += counters.2;
            parity.push(JitParityRow {
                env,
                threads,
                best_fitness: oracle.best_fitness,
                outcome_identical,
                jit_compiled: counters.0,
                jit_activations: counters.1,
                jit_fallbacks: counters.2,
            });
        }
    }
    // Not a skip either way: native targets must demonstrably promote
    // and serve activations natively; everything else must demonstrably
    // take the fallback.
    let tier_exercised = if native_target {
        compiled_total > 0 && activations_total > 0
    } else {
        fallbacks_total > 0 && compiled_total == 0 && activations_total == 0
    };
    let geomean = |speedups: &[f64]| {
        (speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len() as f64).exp()
    };
    let speedups: Vec<f64> = rows.iter().filter_map(|r| r.speedup).collect();
    let mean_speedup = if speedups.is_empty() {
        1.0
    } else {
        geomean(&speedups)
    };
    let hot: Vec<f64> = rows
        .iter()
        .filter(|r| r.connections >= HOT_PLAN_CONNECTIONS)
        .filter_map(|r| r.speedup)
        .collect();
    let hot_speedup = if hot.is_empty() {
        mean_speedup
    } else {
        geomean(&hot)
    };
    Ok(JitBenchResult {
        native_target,
        rows,
        parity,
        parity_ok,
        tier_exercised,
        mean_speedup,
        hot_speedup,
        speedup_ok: hot_speedup >= SPEEDUP_GATE,
    })
}

/// Runs on every environment of the suite, Atari included — the tier
/// must be bit-exact on all of them.
pub fn run(scale: Scale, seed: u64) -> Result<JitBenchResult, RunError> {
    run_on(&EnvId::ALL_WITH_ATARI, scale, seed)
}

impl fmt::Display for JitBenchResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "jit — tiered NetPlan execution ({} target)",
            if self.native_target {
                "native x86-64"
            } else {
                "fallback-only"
            }
        )?;
        writeln!(
            f,
            "  {:<22} {:>6} {:>6} {:>9} {:>9} {:>8} {:>7} {:>10} {:>9} {:>5}",
            "env",
            "nodes",
            "conns",
            "interp ns",
            "jit ns",
            "speedup",
            "bytes",
            "compile ns",
            "amort gen",
            "bits"
        )?;
        for row in &self.rows {
            writeln!(
                f,
                "  {:<22} {:>6} {:>6} {:>9.1} {:>9} {:>8} {:>7} {:>10} {:>9} {:>5}",
                row.env.to_string(),
                row.nodes,
                row.connections,
                row.interp_ns_per_activate,
                row.jit_ns_per_activate
                    .map_or("n/a".to_string(), |ns| format!("{ns:.1}")),
                row.speedup
                    .map_or("n/a".to_string(), |s| format!("{s:.2}x")),
                row.code_bytes.map_or("n/a".to_string(), |b| b.to_string()),
                row.compile_ns
                    .map_or("n/a".to_string(), |ns| format!("{ns:.0}")),
                row.amortize_generations
                    .map_or("n/a".to_string(), |g| format!("{g:.3}")),
                if row.bit_identical { "ok" } else { "DRIFT" }
            )?;
        }
        writeln!(f, "  end-to-end tier-off vs tier-on (CPU backend):")?;
        for row in &self.parity {
            writeln!(
                f,
                "    {:<22} threads={} best={} outcome={} compiled={} native_acts={} fallbacks={}",
                row.env.to_string(),
                row.threads,
                row.best_fitness,
                if row.outcome_identical { "ok" } else { "DRIFT" },
                row.jit_compiled,
                row.jit_activations,
                row.jit_fallbacks
            )?;
        }
        writeln!(
            f,
            "  parity {}, tier {}, geomean speedup {:.2}x all / {:.2}x hot \
             (≥{HOT_PLAN_CONNECTIONS} conns; gate ≥{SPEEDUP_GATE}x hot on native targets) — gate {}",
            if self.parity_ok { "OK" } else { "FAILED" },
            if self.tier_exercised {
                "exercised"
            } else {
                "NOT EXERCISED"
            },
            self.mean_speedup,
            self.hot_speedup,
            if self.gate_ok() { "OK" } else { "FAILED" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_rows_are_bit_identical_and_timed() {
        let row = bench_row(EnvId::CartPole, Scale::Quick, 11);
        assert!(row.bit_identical, "native tier drifted from interpreter");
        assert!(row.interp_ns_per_activate > 0.0);
        #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
        {
            assert!(row.jit_ns_per_activate.expect("native target compiles") > 0.0);
            assert!(row.code_bytes.expect("native target compiles") > 0);
            assert!(row.compile_ns.expect("native target compiles") > 0.0);
        }
        #[cfg(not(all(target_arch = "x86_64", target_os = "linux")))]
        {
            assert!(row.jit_ns_per_activate.is_none());
            assert!(row.speedup.is_none());
        }
    }

    #[test]
    fn parity_gate_holds_on_quick_cartpole() {
        let result = run_on(&[EnvId::CartPole], Scale::Quick, 5).expect("runs");
        assert!(result.parity_ok, "tiered run drifted from oracle: {result}");
        assert!(
            result.tier_exercised,
            "tier (or its fallback) never engaged: {result}"
        );
        assert_eq!(result.parity.len(), THREAD_PARITY.len());
    }
}
