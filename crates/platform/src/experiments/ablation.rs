//! Ablation studies of INAX design choices (DESIGN.md §7).
//!
//! Four studies back the paper's qualitative arguments with numbers:
//!
//! * **Dataflow** (§IV-E): output-stationary vs weight-stationary vs
//!   input-stationary cycle counts on evolved-shape populations;
//! * **Heuristic vs oracle** (§V-A): the output-width PE heuristic vs
//!   the per-population best PE count found by exhaustive search;
//! * **Quantization**: output error of Q4.4 / Q8.8 / Q8.16 fixed-point
//!   datapaths against the `f64` reference;
//! * **Activation sparsity** (§VII future work): cycle savings an
//!   activity-gated PE would realize on real activations.

use e3_inax::pipeline::{analyze_double_buffering, BatchWork, PipelineReport};
use e3_inax::quant::{output_error, FixedPointFormat};
use e3_inax::sparsity::analyze_activation_sparsity;
use e3_inax::synthetic::synthetic_population;
use e3_inax::{schedule_inference, Dataflow, InaxConfig, PuSim};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Dataflow comparison row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataflowRow {
    /// Dataflow variant.
    pub dataflow: Dataflow,
    /// Mean wall cycles per inference.
    pub mean_cycles: f64,
    /// Mean PE utilization.
    pub utilization: f64,
    /// Partial-sum accumulator slots each PE must provision. OS and WS
    /// accumulate locally (1 slot); IS scatters partial sums to every
    /// potential egress node, so a PE must provision for the worst
    /// case — the whole network (paper §IV-E: "HW-unfriendly …
    /// resources over-provisioning"). Mean over the population.
    pub accumulator_slots_per_pe: f64,
}

/// Heuristic-vs-oracle PE sizing result.
///
/// Two oracles bracket the design space: the **latency oracle**
/// (fewest cycles, found by exhaustive search — typically many PEs,
/// poorly utilized) and the **efficiency oracle** (highest `U(PE)` —
/// always 1 PE). The paper's claim is that the output-width heuristic
/// lands near the latency optimum while keeping much of the
/// efficiency, without any search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PeSizingResult {
    /// The heuristic choice (output-layer width).
    pub heuristic_pe: usize,
    /// Mean cycles at the heuristic choice.
    pub heuristic_cycles: f64,
    /// Heuristic utilization.
    pub heuristic_utilization: f64,
    /// PE count minimizing mean cycles (searched over 1..=16).
    pub latency_oracle_pe: usize,
    /// Cycles at the latency oracle.
    pub latency_oracle_cycles: f64,
    /// Utilization at the latency oracle.
    pub latency_oracle_utilization: f64,
    /// Utilization at the efficiency oracle (1 PE).
    pub efficiency_oracle_utilization: f64,
}

/// Quantization accuracy row.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuantRow {
    /// Fixed-point format.
    pub format: FixedPointFormat,
    /// Mean absolute output error vs `f64`.
    pub mean_error: f64,
}

/// Activation-sparsity opportunity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SparsitySummary {
    /// Mean fraction of skippable (zero-operand) MACs.
    pub mean_skippable_fraction: f64,
    /// Mean wall-cycle speedup of gating.
    pub mean_speedup: f64,
}

/// Double-buffered weight-streaming study.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DoubleBufferSummary {
    /// Cycle speedup of overlapping set-up with compute across the
    /// population's batches (episode length 100 steps).
    pub speedup: f64,
    /// Extra BRAM banks the second weight buffer costs at PU = 50.
    pub extra_bram: u64,
}

/// Full ablation result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationResult {
    /// Dataflow comparison (4 PEs).
    pub dataflows: Vec<DataflowRow>,
    /// PE sizing heuristic vs oracle.
    pub pe_sizing: PeSizingResult,
    /// Quantization accuracy across formats.
    pub quantization: Vec<QuantRow>,
    /// Activation-sparsity opportunity.
    pub sparsity: SparsitySummary,
    /// Double-buffered weight streaming (set-up/compute overlap).
    pub double_buffering: DoubleBufferSummary,
}

/// Runs every ablation on the paper's default synthetic workload
/// (8 inputs, 4 outputs, 30 hidden, sparsity 0.2).
pub fn run() -> AblationResult {
    let nets = synthetic_population(30, 8, 4, 30, 0.2, 19);
    let probes: Vec<Vec<f64>> = (0..8)
        .map(|i| (0..8).map(|j| ((i * 5 + j) as f64 * 0.29).sin()).collect())
        .collect();

    // Dataflow study.
    let dataflows = [
        Dataflow::OutputStationary,
        Dataflow::WeightStationary,
        Dataflow::InputStationary,
    ]
    .into_iter()
    .map(|dataflow| {
        let config = InaxConfig::builder().num_pe(4).dataflow(dataflow).build();
        let (mut cycles, mut active, mut total) = (0u64, 0u64, 0u64);
        for net in &nets {
            let p = schedule_inference(&config, net);
            cycles += p.wall_cycles;
            active += p.pe_active_cycles;
            total += p.pe_total_cycles;
        }
        let accumulator_slots_per_pe = match dataflow {
            Dataflow::OutputStationary | Dataflow::WeightStationary => 1.0,
            Dataflow::InputStationary => {
                nets.iter()
                    .map(|n| n.num_compute_nodes() as f64)
                    .sum::<f64>()
                    / nets.len() as f64
            }
        };
        DataflowRow {
            dataflow,
            mean_cycles: cycles as f64 / nets.len() as f64,
            utilization: active as f64 / total as f64,
            accumulator_slots_per_pe,
        }
    })
    .collect();

    // Heuristic vs oracle PE sizing: oracle maximizes utilization-
    // weighted throughput (cycles × PEs = area-time product).
    let heuristic_pe = 4; // output-layer width
    let measure = |num_pe: usize| {
        let config = InaxConfig::builder().num_pe(num_pe).build();
        let (mut cycles, mut active, mut total) = (0u64, 0u64, 0u64);
        for net in &nets {
            let p = schedule_inference(&config, net);
            cycles += p.wall_cycles;
            active += p.pe_active_cycles;
            total += p.pe_total_cycles;
        }
        (
            cycles as f64 / nets.len() as f64,
            active as f64 / total as f64,
        )
    };
    let (heuristic_cycles, heuristic_utilization) = measure(heuristic_pe);
    let (mut latency_oracle_pe, mut latency_oracle_cycles) = (1usize, f64::INFINITY);
    let mut latency_oracle_utilization = 0.0;
    for num_pe in 1..=16 {
        let (cycles, utilization) = measure(num_pe);
        if cycles < latency_oracle_cycles {
            latency_oracle_cycles = cycles;
            latency_oracle_pe = num_pe;
            latency_oracle_utilization = utilization;
        }
    }
    let (_, efficiency_oracle_utilization) = measure(1);
    let pe_sizing = PeSizingResult {
        heuristic_pe,
        heuristic_cycles,
        heuristic_utilization,
        latency_oracle_pe,
        latency_oracle_cycles,
        latency_oracle_utilization,
        efficiency_oracle_utilization,
    };

    // Quantization accuracy.
    let quantization = [
        FixedPointFormat::Q4_4,
        FixedPointFormat::Q8_8,
        FixedPointFormat::Q8_16,
    ]
    .into_iter()
    .map(|format| {
        let mean_error = nets
            .iter()
            .map(|net| output_error(net, &probes, format))
            .sum::<f64>()
            / nets.len() as f64;
        QuantRow { format, mean_error }
    })
    .collect();

    // Activation sparsity.
    let config = InaxConfig::builder().num_pe(4).build();
    let mut skippable = 0.0;
    let mut speedup = 0.0;
    let mut count = 0usize;
    for net in &nets {
        for probe in probes.iter().take(3) {
            let report = analyze_activation_sparsity(&config, net, probe);
            skippable += report.skippable_mac_fraction;
            speedup += report.speedup();
            count += 1;
        }
    }
    let sparsity = SparsitySummary {
        mean_skippable_fraction: skippable / count as f64,
        mean_speedup: speedup / count as f64,
    };

    // Double buffering: the population in batches of 50 PUs, each
    // individual playing a 100-step episode.
    let config = InaxConfig::builder().num_pe(4).build();
    let batches: Vec<BatchWork> = nets
        .chunks(50)
        .map(|batch| {
            let mut setup = 0u64;
            let mut compute = 0u64;
            for net in batch {
                let pu = PuSim::new(&config, net.clone());
                setup = setup.max(pu.setup_cycles());
                compute = compute.max(pu.inference_profile().wall_cycles * 100);
            }
            BatchWork {
                setup_cycles: setup,
                compute_cycles: compute,
            }
        })
        .collect();
    let report = analyze_double_buffering(&batches);
    let double_buffering = DoubleBufferSummary {
        speedup: report.speedup(),
        extra_bram: PipelineReport::extra_bram(50),
    };

    AblationResult {
        dataflows,
        pe_sizing,
        quantization,
        sparsity,
        double_buffering,
    }
}

impl fmt::Display for AblationResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Ablation — INAX design choices")?;
        writeln!(f, "  dataflow (4 PEs):")?;
        for row in &self.dataflows {
            writeln!(
                f,
                "    {:<18} {:>10.1} cycles/infer, U(PE) {}, {:>5.1} psum slots/PE",
                format!("{:?}", row.dataflow),
                row.mean_cycles,
                crate::experiments::pct(row.utilization),
                row.accumulator_slots_per_pe
            )?;
        }
        let p = &self.pe_sizing;
        writeln!(
            f,
            "  PE sizing: heuristic k={} -> {:.1} cycles (U {}); latency oracle {} PEs -> {:.1} cycles (U {}); efficiency oracle 1 PE (U {})",
            p.heuristic_pe,
            p.heuristic_cycles,
            crate::experiments::pct(p.heuristic_utilization),
            p.latency_oracle_pe,
            p.latency_oracle_cycles,
            crate::experiments::pct(p.latency_oracle_utilization),
            crate::experiments::pct(p.efficiency_oracle_utilization)
        )?;
        writeln!(f, "  quantization (mean |err| vs f64):")?;
        for q in &self.quantization {
            writeln!(
                f,
                "    Q{}.{:<2} -> {:.6}",
                q.format.integer_bits, q.format.frac_bits, q.mean_error
            )?;
        }
        writeln!(
            f,
            "  activation sparsity: {} of MACs skippable; gated speedup {:.2}x",
            crate::experiments::pct(self.sparsity.mean_skippable_fraction),
            self.sparsity.mean_speedup
        )?;
        writeln!(
            f,
            "  double-buffered weight streaming: {:.3}x speedup for {} extra BRAM (PU=50)",
            self.double_buffering.speedup, self.double_buffering.extra_bram
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_stationary_wins_the_dataflow_comparison() {
        let result = run();
        let os = result
            .dataflows
            .iter()
            .find(|r| r.dataflow == Dataflow::OutputStationary)
            .unwrap();
        let ws = result
            .dataflows
            .iter()
            .find(|r| r.dataflow == Dataflow::WeightStationary)
            .unwrap();
        assert!(
            os.mean_cycles < ws.mean_cycles,
            "paper §IV-E: WS wastes refetches"
        );
        let is = result
            .dataflows
            .iter()
            .find(|r| r.dataflow == Dataflow::InputStationary)
            .unwrap();
        assert!(
            is.accumulator_slots_per_pe > 10.0 * os.accumulator_slots_per_pe,
            "paper §IV-E: IS must over-provision partial-sum buffers"
        );
    }

    #[test]
    fn heuristic_sits_between_the_oracles() {
        let result = run();
        let p = result.pe_sizing;
        // Latency: within 2x of the exhaustive latency optimum with a
        // quarter of the PEs.
        assert!(
            p.heuristic_cycles <= 2.0 * p.latency_oracle_cycles,
            "{} vs {}",
            p.heuristic_cycles,
            p.latency_oracle_cycles
        );
        assert!(p.heuristic_pe <= p.latency_oracle_pe);
        // Efficiency: clearly better utilized than the latency oracle.
        assert!(p.heuristic_utilization > p.latency_oracle_utilization);
        assert!(p.efficiency_oracle_utilization >= p.heuristic_utilization);
    }

    #[test]
    fn quantization_error_shrinks_with_width() {
        let result = run();
        let errs: Vec<f64> = result.quantization.iter().map(|q| q.mean_error).collect();
        assert!(errs[0] >= errs[1] && errs[1] >= errs[2]);
    }

    #[test]
    fn sparsity_gating_helps() {
        let result = run();
        assert!(result.sparsity.mean_speedup >= 1.0);
        assert!((0.0..=1.0).contains(&result.sparsity.mean_skippable_fraction));
    }

    #[test]
    fn double_buffering_helps_but_modestly_on_long_episodes() {
        // 100-step episodes amortize set-up heavily, so the overlap
        // gain exists but is small — which is why the paper's
        // prototype reasonably skipped it.
        let result = run();
        let s = result.double_buffering.speedup;
        assert!(s >= 1.0, "overlap never slows down: {s}");
        assert!(s < 1.2, "long episodes amortize set-up: {s}");
    }
}
