//! generalize — train vs held-out fitness across scenario batch sizes.
//!
//! Reproduction-specific companion to the scenario-distribution
//! refactor: evolves CartPole controllers on a *sampled* training
//! distribution ([`ScenarioDistribution::moderate`]) at K ∈ {1, 4, 8}
//! scenarios per evaluation, scores every generation's champion on a
//! held-out shifted distribution, and reports the train-vs-held-out
//! fitness gap per K — the GeneSys-style generalization story the
//! fixed-env contract could not express.
//!
//! Two gates ride along (`parity_ok`):
//!
//! * **determinism** — every configuration is re-run at 4 worker
//!   threads and must reproduce the single-threaded run's outcome and
//!   modeled telemetry stream bit for bit (everything except the
//!   wall-clock `Exec` records; scenario sampling is seeded by
//!   `(run_seed, generation, genome, scenario)`, never by thread
//!   schedule);
//! * **coverage** — every run must emit one `Generalization` record
//!   per generation with a sane scenario count.

use crate::experiments::Scale;
use crate::platform::RunError;
use crate::scenario::{HoldoutConfig, ScenarioConfig};
use crate::{BackendKind, E3Config, E3Platform};
use e3_envs::{EnvId, ScenarioDistribution};
use e3_telemetry::{Collector, GeneralizationRecord, MemoryCollector, TelemetryEvent};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Scenarios-per-evaluation counts the sweep visits.
pub const K_SWEEP: [usize; 3] = [1, 4, 8];

/// Held-out scenarios scored per generalization pass.
pub const HOLDOUT_SCENARIOS: usize = 8;

/// One `K` configuration's generalization report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneralizeRow {
    /// Scenarios sampled per fitness evaluation.
    pub k: usize,
    /// Generations the run executed.
    pub generations: usize,
    /// Final champion's training fitness (mean over its K scenarios).
    pub train_fitness: f64,
    /// Final champion's mean fitness on the held-out distribution.
    pub holdout_fitness: f64,
    /// `train_fitness - holdout_fitness` at the final generation; the
    /// number the sweep exists to compare across K.
    pub gap: f64,
    /// Per-scenario fitness spread (std) on the final held-out pass.
    pub holdout_std: f64,
    /// Worst held-out scenario of the final pass.
    pub holdout_min: f64,
    /// Generalization records observed (one per generation at the
    /// default cadence).
    pub generalization_passes: usize,
    /// The 4-thread re-run reproduced outcome and telemetry bit for
    /// bit.
    pub deterministic: bool,
}

/// The generalization benchmark result (`BENCH_generalize.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneralizeResult {
    /// Environment under test.
    pub env: EnvId,
    /// Population size per run.
    pub population: usize,
    /// Generation cap per run.
    pub max_generations: usize,
    /// Held-out scenarios per generalization pass.
    pub holdout_scenarios: usize,
    /// One row per K in [`K_SWEEP`].
    pub rows: Vec<GeneralizeRow>,
    /// Every row was deterministic across thread counts and emitted
    /// the expected generalization telemetry.
    pub parity_ok: bool,
}

/// The scenario configuration one sweep row evolves under.
fn scenario_config(k: usize) -> ScenarioConfig {
    ScenarioConfig::default()
        .train(ScenarioDistribution::moderate())
        .scenarios_per_eval(k)
        .holdout(HoldoutConfig::new(ScenarioDistribution::shifted()).scenarios(HOLDOUT_SCENARIOS))
}

fn config(env: EnvId, scale: Scale, k: usize, threads: usize) -> E3Config {
    E3Config::builder(env)
        .population_size(scale.population())
        .max_generations(scale.max_generations())
        .target_fitness(f64::INFINITY)
        .threads(threads)
        .scenario(scenario_config(k))
        .build()
}

/// Runs the K sweep on `env`, forwarding every telemetry record of the
/// single-threaded reference runs to `collector` (so `--telemetry`
/// captures the `Generalization` stream).
///
/// # Errors
///
/// Returns [`RunError`] if an evaluation fails (seeded populations are
/// feed-forward, so this only fires on executor loss).
pub fn run_on(
    env: EnvId,
    scale: Scale,
    seed: u64,
    collector: &mut dyn Collector,
) -> Result<GeneralizeResult, RunError> {
    let mut rows = Vec::with_capacity(K_SWEEP.len());
    let mut parity_ok = true;
    for k in K_SWEEP {
        let mut reference = MemoryCollector::new();
        let outcome = E3Platform::new(config(env, scale, k, 1), BackendKind::Cpu, seed)
            .run_with(&mut reference)?;

        // Determinism gate: 4 worker threads, bit-identical outcome
        // and telemetry. Exec records carry measured wall-clock times
        // and worker counts, so they (and only they) are excluded.
        let mut threaded = MemoryCollector::new();
        let outcome4 = E3Platform::new(config(env, scale, k, 4), BackendKind::Cpu, seed)
            .run_with(&mut threaded)?;
        let modeled = |collector: &MemoryCollector| -> Vec<TelemetryEvent> {
            collector
                .events()
                .iter()
                .filter(|e| !matches!(e, TelemetryEvent::Exec(_)))
                .cloned()
                .collect()
        };
        let deterministic = outcome == outcome4 && modeled(&reference) == modeled(&threaded);

        for event in reference.events() {
            collector.record(event).map_err(RunError::from)?;
        }
        let passes: Vec<&GeneralizationRecord> = reference.generalizations().collect();
        let covered = passes.len() == outcome.generations_run
            && passes.iter().all(|g| {
                g.holdout_scenarios == HOLDOUT_SCENARIOS
                    && g.holdout_fitness.is_finite()
                    && g.train_fitness.is_finite()
            });
        let last = passes.last().copied().cloned().unwrap_or_default();
        parity_ok &= deterministic && covered;
        rows.push(GeneralizeRow {
            k,
            generations: outcome.generations_run,
            train_fitness: last.train_fitness,
            holdout_fitness: last.holdout_fitness,
            gap: last.gap,
            holdout_std: last.holdout_std,
            holdout_min: last.holdout_min,
            generalization_passes: passes.len(),
            deterministic,
        });
    }
    Ok(GeneralizeResult {
        env,
        population: scale.population(),
        max_generations: scale.max_generations(),
        holdout_scenarios: HOLDOUT_SCENARIOS,
        rows,
        parity_ok,
    })
}

/// Runs on the pinned workload: CartPole under the moderate training
/// distribution against the shifted held-out distribution.
///
/// # Errors
///
/// See [`run_on`].
pub fn run(
    scale: Scale,
    seed: u64,
    collector: &mut dyn Collector,
) -> Result<GeneralizeResult, RunError> {
    run_on(EnvId::CartPole, scale, seed, collector)
}

impl fmt::Display for GeneralizeResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "generalize — train vs held-out fitness on {} (population {}, \
             {} generations, {} held-out scenarios/pass, CPU backend)",
            self.env, self.population, self.max_generations, self.holdout_scenarios
        )?;
        writeln!(
            f,
            "  {:>2} {:>5} {:>10} {:>10} {:>9} {:>9} {:>9} {:>7} {:>5}",
            "K", "gens", "train", "held-out", "gap", "std", "min", "passes", "det"
        )?;
        for row in &self.rows {
            writeln!(
                f,
                "  {:>2} {:>5} {:>10.3} {:>10.3} {:>9.3} {:>9.3} {:>9.3} {:>7} {:>5}",
                row.k,
                row.generations,
                row.train_fitness,
                row.holdout_fitness,
                row.gap,
                row.holdout_std,
                row.holdout_min,
                row.generalization_passes,
                if row.deterministic { "ok" } else { "DRIFT" }
            )?;
        }
        writeln!(
            f,
            "  parity {} — scenario sampling must be thread-schedule-free and \
             every generation must emit a Generalization record",
            if self.parity_ok { "OK" } else { "FAILED" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use e3_telemetry::NullCollector;

    #[test]
    fn sweep_covers_every_k_and_passes_its_gates() {
        let result = run(Scale::Quick, 42, &mut NullCollector).expect("sweep runs");
        assert_eq!(
            result.rows.iter().map(|r| r.k).collect::<Vec<_>>(),
            K_SWEEP.to_vec()
        );
        assert!(result.parity_ok, "generalize gates failed: {result}");
        for row in &result.rows {
            assert_eq!(row.generalization_passes, row.generations);
            assert!(row.train_fitness.is_finite());
            assert!(row.holdout_fitness.is_finite());
            assert!((row.gap - (row.train_fitness - row.holdout_fitness)).abs() < 1e-12);
        }
    }

    #[test]
    fn telemetry_forwarding_streams_generalization_records() {
        let mut memory = MemoryCollector::new();
        let result = run(Scale::Quick, 7, &mut memory).expect("sweep runs");
        let streamed = memory.generalizations().count();
        let expected: usize = result.rows.iter().map(|r| r.generalization_passes).sum();
        assert_eq!(streamed, expected, "every pass reaches the collector");
        assert!(memory
            .events()
            .iter()
            .any(|e| matches!(e, TelemetryEvent::Generalization(_))));
    }
}
