//! Host-side evaluation scaling — the software analogue of Fig. 7.
//!
//! Sweeps the worker-thread count of the parallel evaluation engine
//! (`e3-exec`) over the same evolve/evaluate workload and reports, per
//! environment and thread count, the measured evaluation wall time,
//! the speedup over the serial reference, and the pool's observability
//! counters (steals, decode-cache hit rate, worker utilization — the
//! host-side `U(r)` analogue). Because the engine is deterministic by
//! construction, the sweep also re-checks that every thread count
//! reproduces the serial run's fitness bit for bit.

use crate::backend::BackendKind;
use crate::experiments::Scale;
use crate::platform::{E3Config, E3Platform, RunError};
use e3_envs::EnvId;
use e3_telemetry::MemoryCollector;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Worker counts the scaling sweep visits.
pub const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// One `(environment, thread count)` measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecScalingRow {
    /// Environment.
    pub env: EnvId,
    /// Worker threads ("virtual PUs").
    pub threads: usize,
    /// Measured wall-clock seconds spent inside the evaluation engine,
    /// summed over all generations.
    pub eval_wall_seconds: f64,
    /// Serial wall time divided by this row's wall time.
    pub speedup_vs_serial: f64,
    /// Shards executed by a non-home worker, summed over generations.
    pub steal_count: u64,
    /// Decode-cache hit rate across the whole run.
    pub cache_hit_rate: f64,
    /// Mean fraction of pool wall time the workers were busy.
    pub worker_utilization: f64,
    /// Best fitness of the run (bit-identical across thread counts).
    pub best_fitness: f64,
}

/// The scaling sweep result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecScalingResult {
    /// One row per `(environment, thread count)`, thread-minor order.
    pub rows: Vec<ExecScalingRow>,
}

impl ExecScalingResult {
    /// The speedup at `threads` averaged over environments.
    pub fn mean_speedup(&self, threads: usize) -> f64 {
        let rows: Vec<&ExecScalingRow> =
            self.rows.iter().filter(|r| r.threads == threads).collect();
        if rows.is_empty() {
            return 0.0;
        }
        rows.iter().map(|r| r.speedup_vs_serial).sum::<f64>() / rows.len() as f64
    }
}

/// Runs the thread-count sweep on `envs` with the CPU backend.
///
/// # Errors
///
/// Returns [`RunError`] if a run fails (quick-scale populations are
/// feed-forward, so this only fires on executor loss).
pub fn run_on(envs: &[EnvId], scale: Scale, seed: u64) -> Result<ExecScalingResult, RunError> {
    let mut rows = Vec::with_capacity(envs.len() * THREAD_SWEEP.len());
    for &env in envs {
        let mut serial_wall = 0.0f64;
        let mut serial_best = f64::NEG_INFINITY;
        for threads in THREAD_SWEEP {
            let config = E3Config::builder(env)
                .population_size(scale.population().max(64))
                .max_generations(scale.max_generations())
                .threads(threads)
                .build();
            let mut telemetry = MemoryCollector::new();
            let outcome =
                E3Platform::new(config, BackendKind::Cpu, seed).run_with(&mut telemetry)?;
            let wall: f64 = telemetry.execs().map(|x| x.wall_seconds).sum();
            let steal_count: u64 = telemetry.execs().map(|x| x.steal_count).sum();
            let hits: u64 = telemetry.execs().map(|x| x.cache_hits).sum();
            let misses: u64 = telemetry.execs().map(|x| x.cache_misses).sum();
            let records = telemetry.execs().count().max(1) as f64;
            let utilization: f64 =
                telemetry.execs().map(|x| x.worker_utilization).sum::<f64>() / records;
            if threads == 1 {
                serial_wall = wall;
                serial_best = outcome.best_fitness;
            } else {
                assert_eq!(
                    outcome.best_fitness, serial_best,
                    "determinism contract: thread count must not change results"
                );
            }
            rows.push(ExecScalingRow {
                env,
                threads,
                eval_wall_seconds: wall,
                speedup_vs_serial: if wall > 0.0 { serial_wall / wall } else { 1.0 },
                steal_count,
                cache_hit_rate: if hits + misses > 0 {
                    hits as f64 / (hits + misses) as f64
                } else {
                    0.0
                },
                worker_utilization: utilization,
                best_fitness: outcome.best_fitness,
            });
        }
    }
    Ok(ExecScalingResult { rows })
}

/// Runs the sweep on the two scaling workloads (CartPole and
/// LunarLander — the cheapest and the heaviest non-visual episodes).
pub fn run(scale: Scale, seed: u64) -> Result<ExecScalingResult, RunError> {
    run_on(&[EnvId::CartPole, EnvId::LunarLander], scale, seed)
}

impl fmt::Display for ExecScalingResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "exec — evaluation-engine scaling (CPU backend)")?;
        writeln!(
            f,
            "  {:<22} {:>7} {:>10} {:>8} {:>7} {:>10} {:>7}",
            "env", "threads", "eval wall", "speedup", "steals", "cache hit", "util"
        )?;
        for row in &self.rows {
            writeln!(
                f,
                "  {:<22} {:>7} {:>9.3}s {:>7.2}x {:>7} {:>10} {:>7}",
                row.env.to_string(),
                row.threads,
                row.eval_wall_seconds,
                row.speedup_vs_serial,
                row.steal_count,
                crate::experiments::pct(row.cache_hit_rate),
                crate::experiments::pct(row.worker_utilization)
            )?;
        }
        writeln!(
            f,
            "  note: wall-clock speedup requires free cores; results are \
             bit-identical at every thread count by construction"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_reports_every_thread_count_and_identical_fitness() {
        let result = run_on(&[EnvId::CartPole], Scale::Quick, 3).expect("sweep runs");
        assert_eq!(result.rows.len(), THREAD_SWEEP.len());
        let best: Vec<f64> = result.rows.iter().map(|r| r.best_fitness).collect();
        assert!(
            best.iter().all(|b| *b == best[0]),
            "thread count must not change fitness: {best:?}"
        );
        for row in &result.rows {
            assert!(row.eval_wall_seconds > 0.0);
            assert!(row.speedup_vs_serial > 0.0);
        }
        assert!(result.mean_speedup(1) >= 0.99);
    }
}
