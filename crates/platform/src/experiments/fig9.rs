//! Fig. 9 — INAX runtime analysis and the three-platform comparison.
//!
//! * **(a)** runtime breakdown (set-up / PE-active / evaluate-control)
//!   across network sizes (hidden-node sweep, paper defaults);
//! * **(b)** end-to-end runtime of E3-CPU / E3-GPU / E3-INAX on the
//!   six-environment suite;
//! * **(c)** the same runs normalized, with the per-function
//!   breakdown;
//! * **(d)** E3-INAX's balanced timing profile (contrast Fig. 1(b)).

use crate::backend::BackendKind;
use crate::experiments::Scale;
use crate::platform::{E3Config, E3Platform, FunctionProfile, RunError};
use e3_envs::EnvId;
use e3_inax::synthetic::synthetic_population;
use e3_inax::{InaxAccelerator, InaxConfig};
use e3_telemetry::{Collector, MemoryCollector, NullCollector, TelemetryEvent};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One point of the Fig. 9(a) sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig9aPoint {
    /// Hidden nodes in the synthetic networks.
    pub hidden_nodes: usize,
    /// Fraction of cycles in the set-up phase.
    pub setup_fraction: f64,
    /// Fraction of cycles with PEs doing useful work (= U(PE) over the
    /// whole offload, paper §VI-B).
    pub pe_active_fraction: f64,
    /// Fraction of cycles in evaluate-control (idle + overheads).
    pub control_fraction: f64,
}

/// Fig. 9(a): normalized runtime breakdown vs network size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig9aResult {
    /// Sweep points, increasing hidden-node count.
    pub points: Vec<Fig9aPoint>,
}

/// Runs Fig. 9(a): populations with the paper's default shape, hidden
/// nodes swept, evaluated for 100 steps on the default 1-PU/1-PE
/// configuration (paper footnote 3).
pub fn run_fig9a() -> Fig9aResult {
    run_fig9a_with(&mut NullCollector).expect("null collector cannot fail")
}

/// Runs Fig. 9(a), emitting one telemetry `EvalRecord` per sweep point
/// (synthetic workload: fitness fields are zero, the interesting part
/// is the accelerator counters).
///
/// # Errors
///
/// Returns [`RunError::Telemetry`] if the collector rejects a record.
pub fn run_fig9a_with(collector: &mut dyn Collector) -> Result<Fig9aResult, RunError> {
    let mut points = Vec::new();
    for (index, hidden) in [5usize, 10, 20, 30, 40, 60].into_iter().enumerate() {
        let config = InaxConfig::default();
        let nets = synthetic_population(8, 8, 4, hidden, 0.2, 31 + hidden as u64);
        let population = nets.len();
        let mut acc = InaxAccelerator::new(config);
        for net in nets {
            acc.load_batch(vec![net.clone()]);
            let inputs = vec![Some(vec![0.25; 8]); 1];
            for _ in 0..100 {
                let _ = acc.step(&inputs);
            }
            acc.unload_batch();
        }
        let report = acc.report();
        collector
            .record(&e3_telemetry::TelemetryEvent::Eval(
                e3_telemetry::EvalRecord {
                    generation: index,
                    backend: BackendKind::Inax.name().to_string(),
                    env: format!("synthetic_h{hidden}"),
                    population,
                    eval_seconds: acc.config().cycles_to_seconds(report.total_cycles),
                    env_seconds: 0.0,
                    total_steps: report.steps,
                    best_fitness: 0.0,
                    mean_fitness: 0.0,
                    hw: Some((&report).into()),
                },
            ))
            .map_err(RunError::from)?;
        let (setup, active, control) = report.breakdown.fractions();
        points.push(Fig9aPoint {
            hidden_nodes: hidden,
            setup_fraction: setup,
            pe_active_fraction: active,
            control_fraction: control,
        });
    }
    collector.flush()?;
    Ok(Fig9aResult { points })
}

impl fmt::Display for Fig9aResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig. 9(a) — INAX runtime breakdown vs hidden nodes")?;
        writeln!(
            f,
            "  {:>7} {:>8} {:>10} {:>10}",
            "hidden", "setup", "PE-active", "control"
        )?;
        for p in &self.points {
            writeln!(
                f,
                "  {:>7} {:>8} {:>10} {:>10}",
                p.hidden_nodes,
                crate::experiments::pct(p.setup_fraction),
                crate::experiments::pct(p.pe_active_fraction),
                crate::experiments::pct(p.control_fraction)
            )?;
        }
        Ok(())
    }
}

/// One environment's row of Fig. 9(b–d).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig9bRow {
    /// Environment.
    pub env: EnvId,
    /// Modeled runtime per backend, paper order `[CPU, GPU, INAX]`.
    pub runtime_seconds: [f64; 3],
    /// Per-function profile per backend, same order.
    pub profiles: [FunctionProfile; 3],
    /// Generations each backend ran (identical across backends by
    /// construction).
    pub generations: usize,
    /// Best fitness achieved.
    pub best_fitness: f64,
}

impl Fig9bRow {
    /// INAX speedup over the CPU baseline.
    pub fn inax_speedup(&self) -> f64 {
        self.runtime_seconds[0] / self.runtime_seconds[2]
    }

    /// GPU slowdown relative to the CPU baseline (> 1 = slower).
    pub fn gpu_slowdown(&self) -> f64 {
        self.runtime_seconds[1] / self.runtime_seconds[0]
    }
}

/// Fig. 9(b–d): the three-platform suite comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig9bResult {
    /// One row per environment (paper order Env1..Env6).
    pub rows: Vec<Fig9bRow>,
}

impl Fig9bResult {
    /// Geometric-mean INAX speedup across the suite (the paper's
    /// headline "averaged 30×").
    pub fn mean_inax_speedup(&self) -> f64 {
        let product: f64 = self.rows.iter().map(Fig9bRow::inax_speedup).product();
        product.powf(1.0 / self.rows.len() as f64)
    }
}

/// Runs the suite comparison at the given scale and seed. All three
/// backends follow identical evolutionary trajectories (same seed, same
/// fitnesses), so runtime differences are purely the evaluate path.
pub fn run_fig9b(scale: Scale, seed: u64) -> Fig9bResult {
    run_fig9b_on(&EnvId::ALL, scale, seed)
}

/// Runs the comparison on a chosen subset of environments.
pub fn run_fig9b_on(envs: &[EnvId], scale: Scale, seed: u64) -> Fig9bResult {
    run_fig9b_with(envs, scale, seed, &mut NullCollector)
        .expect("suite populations are feed-forward")
}

/// Runs the comparison, forwarding every telemetry event of every run
/// to `collector`. Forwarded `RunSummary` records carry
/// `speedup_vs_cpu` (the CPU backend runs first, so its runtime is
/// known when the GPU/INAX summaries are re-emitted); the figure rows
/// themselves are assembled from those summaries.
///
/// # Errors
///
/// Returns [`RunError`] if a run or the collector fails.
pub fn run_fig9b_with(
    envs: &[EnvId],
    scale: Scale,
    seed: u64,
    collector: &mut dyn Collector,
) -> Result<Fig9bResult, RunError> {
    let mut rows = Vec::with_capacity(envs.len());
    for &env in envs {
        let mut runtime = [0.0f64; 3];
        let mut profiles = [FunctionProfile::default(); 3];
        let mut generations = 0;
        let mut best = f64::NEG_INFINITY;
        let mut cpu_runtime = None;
        for (i, kind) in BackendKind::ALL.into_iter().enumerate() {
            let config = E3Config::builder(env)
                .population_size(scale.population())
                .max_generations(scale.max_generations())
                .build();
            let mut capture = MemoryCollector::new();
            E3Platform::new(config, kind, seed).run_with(&mut capture)?;
            let summary = capture.summaries().last().expect("run emits a summary");
            runtime[i] = summary.modeled_seconds;
            profiles[i] = FunctionProfile::from_split(&summary.split);
            generations = summary.generations;
            best = best.max(summary.best_fitness);
            if kind == BackendKind::Cpu {
                cpu_runtime = Some(summary.modeled_seconds);
            }
            for event in capture.events() {
                match event {
                    TelemetryEvent::Summary(summary) => {
                        let mut summary = summary.clone();
                        summary.speedup_vs_cpu =
                            cpu_runtime.map(|cpu| cpu / summary.modeled_seconds);
                        collector.record(&TelemetryEvent::Summary(summary))?;
                    }
                    other => collector.record(other)?,
                }
            }
        }
        rows.push(Fig9bRow {
            env,
            runtime_seconds: runtime,
            profiles,
            generations,
            best_fitness: best,
        });
    }
    collector.flush()?;
    Ok(Fig9bResult { rows })
}

impl fmt::Display for Fig9bResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig. 9(b) — runtime comparison (modeled seconds)")?;
        writeln!(
            f,
            "  {:<22} {:>10} {:>10} {:>10} {:>9} {:>9}",
            "env", "E3-CPU", "E3-GPU", "E3-INAX", "speedup", "gens"
        )?;
        for row in &self.rows {
            writeln!(
                f,
                "  {:<22} {:>10.3} {:>10.3} {:>10.3} {:>8.1}x {:>9}",
                row.env.to_string(),
                row.runtime_seconds[0],
                row.runtime_seconds[1],
                row.runtime_seconds[2],
                row.inax_speedup(),
                row.generations
            )?;
        }
        writeln!(
            f,
            "  mean INAX speedup: {:.1}x (paper: ~30x)",
            self.mean_inax_speedup()
        )?;
        writeln!(f)?;
        writeln!(f, "Fig. 9(c) — normalized runtime and function breakdown")?;
        for row in &self.rows {
            let base = row.runtime_seconds[0];
            writeln!(f, "  {}:", row.env)?;
            for (i, kind) in BackendKind::ALL.into_iter().enumerate() {
                let profile = &row.profiles[i];
                let entries: Vec<String> = profile
                    .entries()
                    .iter()
                    .map(|(name, s)| {
                        format!("{name} {}", crate::experiments::pct(s / profile.total()))
                    })
                    .collect();
                writeln!(
                    f,
                    "    {:<8} {:>8.4} (norm {:.3}) [{}]",
                    kind.name(),
                    row.runtime_seconds[i],
                    row.runtime_seconds[i] / base,
                    entries.join(", ")
                )?;
            }
        }
        writeln!(f)?;
        writeln!(
            f,
            "Fig. 9(d) — E3-INAX timing profile (balanced vs Fig. 1(b))"
        )?;
        for row in &self.rows {
            let p = &row.profiles[2];
            writeln!(
                f,
                "  {:<22} evaluate {} | env {} | evolve {}",
                row.env.to_string(),
                crate::experiments::pct(p.evaluate_fraction()),
                crate::experiments::pct(p.env / p.total()),
                crate::experiments::pct(p.evolve_fraction())
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9a_utilization_rises_with_network_size() {
        let result = run_fig9a();
        let first = result.points.first().unwrap();
        let last = result.points.last().unwrap();
        assert!(
            last.pe_active_fraction > first.pe_active_fraction,
            "bigger nets hide control overhead: {} -> {}",
            first.pe_active_fraction,
            last.pe_active_fraction
        );
        for p in &result.points {
            let sum = p.setup_fraction + p.pe_active_fraction + p.control_fraction;
            assert!((sum - 1.0).abs() < 1e-9, "fractions partition the total");
        }
    }

    #[test]
    fn fig9b_quick_shape_holds_on_two_envs() {
        let result = run_fig9b_on(&[EnvId::CartPole, EnvId::MountainCar], Scale::Quick, 3);
        for row in &result.rows {
            assert!(
                row.inax_speedup() > 2.0,
                "{}: speedup {}",
                row.env,
                row.inax_speedup()
            );
            assert!(row.gpu_slowdown() > 1.0, "{}: GPU must be slower", row.env);
            // Fig. 9(d): the INAX profile is balanced — evaluate no
            // longer dominates.
            let inax_profile = &row.profiles[2];
            let cpu_profile = &row.profiles[0];
            assert!(inax_profile.evaluate_fraction() < cpu_profile.evaluate_fraction());
        }
    }
}
