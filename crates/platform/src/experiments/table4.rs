//! Table IV — per-step compute and memory overheads of RL vs EA vs
//! NEAT.
//!
//! The paper's point is the ordering across three columns: RL (A2C)
//! pays forward *and* backward ops and large local memory; a
//! fixed-topology EA drops the backward pass but keeps the dense
//! forward; NEAT's evolved sparse networks shrink everything by
//! orders of magnitude.

use crate::backend::BackendKind;
use crate::experiments::Scale;
use crate::platform::{E3Config, E3Platform};
use e3_envs::EnvId;
use e3_rl::{AlgorithmOverhead, Mlp, NetworkComplexity, NetworkSize};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The three columns of Table IV.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table4Result {
    /// RL (A2C, small actor + critic) overhead, suite-averaged.
    pub rl: AlgorithmOverhead,
    /// Fixed-topology EA (same policy net, no backprop).
    pub ea: AlgorithmOverhead,
    /// NEAT with suite-averaged evolved complexity.
    pub neat: AlgorithmOverhead,
    /// The evolved complexity NEAT's column was computed from.
    pub neat_complexity: NetworkComplexity,
}

/// Computes Table IV, running short NEAT evolutions to measure the
/// evolved network complexity.
pub fn run_on(envs: &[EnvId], scale: Scale, seed: u64) -> Table4Result {
    // RL / EA columns: suite-average over per-env Small networks.
    let mut rl_acc = AlgorithmOverhead {
        ops_forward: 0,
        ops_backward: 0,
        local_memory_bytes: 0,
    };
    let mut ea_acc = rl_acc;
    let mut nodes_sum = 0.0;
    let mut conns_sum = 0.0;
    for &env in envs {
        let mut actor_sizes = vec![env.observation_size()];
        actor_sizes.extend_from_slice(NetworkSize::Small.hidden_layers());
        actor_sizes.push(env.policy_outputs());
        let actor = Mlp::new(&actor_sizes, 1);
        let mut critic_sizes = vec![env.observation_size()];
        critic_sizes.extend_from_slice(NetworkSize::Small.hidden_layers());
        critic_sizes.push(1);
        let critic = Mlp::new(&critic_sizes, 2);
        let rl = AlgorithmOverhead::a2c(&actor, &critic, 8, env.observation_size());
        let ea = AlgorithmOverhead::fixed_topology_ea(&actor);
        rl_acc.ops_forward += rl.ops_forward;
        rl_acc.ops_backward += rl.ops_backward;
        rl_acc.local_memory_bytes += rl.local_memory_bytes;
        ea_acc.ops_forward += ea.ops_forward;
        ea_acc.ops_backward += ea.ops_backward;
        ea_acc.local_memory_bytes += ea.local_memory_bytes;

        let config = E3Config::builder(env)
            .population_size(scale.population())
            .max_generations(scale.max_generations())
            .build();
        let outcome = E3Platform::new(config, BackendKind::Cpu, seed)
            .run()
            .expect("suite populations are feed-forward");
        nodes_sum += outcome.complexity.avg_nodes();
        conns_sum += outcome.complexity.avg_connections();
    }
    let n = envs.len() as u64;
    let average = |acc: AlgorithmOverhead| AlgorithmOverhead {
        ops_forward: acc.ops_forward / n,
        ops_backward: acc.ops_backward / n,
        local_memory_bytes: acc.local_memory_bytes / n,
    };
    let neat_complexity = NetworkComplexity {
        nodes: (nodes_sum / envs.len() as f64).round() as usize,
        connections: (conns_sum / envs.len() as f64).round() as usize,
    };
    Table4Result {
        rl: average(rl_acc),
        ea: average(ea_acc),
        neat: AlgorithmOverhead::neat(neat_complexity),
        neat_complexity,
    }
}

/// Runs on the full suite.
pub fn run(scale: Scale, seed: u64) -> Table4Result {
    run_on(&EnvId::ALL, scale, seed)
}

impl fmt::Display for Table4Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table IV — analysis of overhead in algorithms (suite average)"
        )?;
        writeln!(
            f,
            "  {:<14} {:>12} {:>12} {:>14}",
            "", "RL (A2C)", "EA (ES/GA)", "NEAT"
        )?;
        writeln!(
            f,
            "  {:<14} {:>11.1}K {:>11.1}K {:>13.2}K   (paper: 33K / 33K / 0.1K)",
            "Op. Forward",
            self.rl.ops_forward as f64 / 1e3,
            self.ea.ops_forward as f64 / 1e3,
            self.neat.ops_forward as f64 / 1e3
        )?;
        writeln!(
            f,
            "  {:<14} {:>11.1}K {:>11.1}K {:>13.2}K   (paper: 32K / 0 / 0)",
            "Op. Backward",
            self.rl.ops_backward as f64 / 1e3,
            self.ea.ops_backward as f64 / 1e3,
            self.neat.ops_backward as f64 / 1e3
        )?;
        writeln!(
            f,
            "  {:<14} {:>11.1}K {:>11.1}K {:>13.2}K   (paper: 268K / 132K / 0.4K bytes)",
            "Local Memory",
            self.rl.local_memory_bytes as f64 / 1e3,
            self.ea.local_memory_bytes as f64 / 1e3,
            self.neat.local_memory_bytes as f64 / 1e3
        )?;
        writeln!(
            f,
            "  (NEAT column from evolved avg: {} nodes, {} connections)",
            self.neat_complexity.nodes, self.neat_complexity.connections
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_paper() {
        let result = run_on(&[EnvId::CartPole], Scale::Quick, 6);
        assert!(result.rl.ops_backward > 0);
        assert_eq!(result.ea.ops_backward, 0);
        assert_eq!(result.neat.ops_backward, 0);
        assert!(result.rl.ops_forward > 50 * result.neat.ops_forward);
        assert!(result.rl.local_memory_bytes > result.ea.local_memory_bytes);
        assert!(result.ea.local_memory_bytes > 20 * result.neat.local_memory_bytes);
    }
}
