//! Table V — network complexity: RL's Small/Large MLPs vs NEAT's
//! evolved networks, per environment.
//!
//! The claim: NEAT reaches comparable task performance with networks
//! two to five orders of magnitude smaller, because "evolve"
//! inherently prunes.

use crate::backend::BackendKind;
use crate::experiments::Scale;
use crate::platform::{E3Config, E3Platform};
use e3_envs::EnvId;
use e3_rl::{NetworkComplexity, NetworkSize};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One environment's row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table5Row {
    /// Environment.
    pub env: EnvId,
    /// Small RL policy network.
    pub small: NetworkComplexity,
    /// Large RL policy network.
    pub large: NetworkComplexity,
    /// NEAT: average nodes over all generations.
    pub neat_avg_nodes: f64,
    /// NEAT: average enabled connections over all generations.
    pub neat_avg_connections: f64,
}

/// Table V result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table5Result {
    /// One row per environment.
    pub rows: Vec<Table5Row>,
}

fn mlp_complexity(env: EnvId, size: NetworkSize) -> NetworkComplexity {
    let mut sizes = vec![env.observation_size()];
    sizes.extend_from_slice(size.hidden_layers());
    sizes.push(env.policy_outputs());
    NetworkComplexity::of_sizes(&sizes)
}

/// Computes the table, running NEAT per environment for the evolved
/// averages.
pub fn run_on(envs: &[EnvId], scale: Scale, seed: u64) -> Table5Result {
    let rows = envs
        .iter()
        .map(|&env| {
            let config = E3Config::builder(env)
                .population_size(scale.population())
                .max_generations(scale.max_generations())
                .build();
            let outcome = E3Platform::new(config, BackendKind::Cpu, seed)
                .run()
                .expect("suite populations are feed-forward");
            Table5Row {
                env,
                small: mlp_complexity(env, NetworkSize::Small),
                large: mlp_complexity(env, NetworkSize::Large),
                neat_avg_nodes: outcome.complexity.avg_nodes(),
                neat_avg_connections: outcome.complexity.avg_connections(),
            }
        })
        .collect();
    Table5Result { rows }
}

/// Runs on the full suite.
pub fn run(scale: Scale, seed: u64) -> Table5Result {
    run_on(&EnvId::ALL, scale, seed)
}

impl fmt::Display for Table5Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table V — network complexity (nodes / connections)")?;
        writeln!(
            f,
            "  {:<22} {:>16} {:>20} {:>18}",
            "env", "Small", "Large", "NEAT (avg)"
        )?;
        for row in &self.rows {
            writeln!(
                f,
                "  {:<22} {:>6} /{:>9} {:>7} /{:>12} {:>7.1} /{:>9.1}",
                row.env.to_string(),
                row.small.nodes,
                row.small.connections,
                row.large.nodes,
                row.large.connections,
                row.neat_avg_nodes,
                row.neat_avg_connections
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neat_networks_are_orders_of_magnitude_smaller() {
        let result = run_on(&[EnvId::CartPole, EnvId::Pendulum], Scale::Quick, 8);
        for row in &result.rows {
            assert!(row.small.connections as f64 > 20.0 * row.neat_avg_connections);
            assert!(row.large.connections > 200 * row.small.connections / 10);
            assert!(
                row.neat_avg_nodes < 60.0,
                "NEAT stays tiny: {}",
                row.neat_avg_nodes
            );
        }
    }

    #[test]
    fn small_network_counts_match_paper() {
        // Paper Table V, Small row: Bipedal 156 nodes / 5,888 conns.
        let c = mlp_complexity(EnvId::Bipedal, NetworkSize::Small);
        assert_eq!(c.nodes, 156);
        assert_eq!(c.connections, 5_888);
    }
}
