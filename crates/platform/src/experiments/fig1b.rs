//! Fig. 1(b) — the NEAT timing profile that motivates E3.
//!
//! Runs software-only NEAT (E3-CPU) and reports the per-function time
//! share. The paper's observation: "evaluate" dominates (~90%+) while
//! "evolve" (mutate/crossover/speciate) is only ~3% — the exact
//! opposite of RL's profile (Fig. 3), which is why E3 offloads
//! "evaluate" to hardware.

use crate::backend::BackendKind;
use crate::experiments::Scale;
use crate::platform::{E3Config, E3Platform, FunctionProfile, RunError};
use e3_envs::EnvId;
use e3_telemetry::{Collector, MemoryCollector, NullCollector};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Per-environment timing profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig1bRow {
    /// Environment.
    pub env: EnvId,
    /// The modeled per-function profile of the CPU-only run.
    pub profile: FunctionProfile,
}

/// Fig. 1(b) result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig1bResult {
    /// One row per environment.
    pub rows: Vec<Fig1bRow>,
}

impl Fig1bResult {
    /// Suite-average evaluate share (inference + env interaction, the
    /// paper's "evaluate" phase).
    pub fn mean_evaluate_fraction(&self) -> f64 {
        self.rows
            .iter()
            .map(|r| (r.profile.evaluate + r.profile.env + r.profile.createnet) / r.profile.total())
            .sum::<f64>()
            / self.rows.len() as f64
    }

    /// Suite-average evolve share (mutate + crossover + speciate).
    pub fn mean_evolve_fraction(&self) -> f64 {
        self.rows
            .iter()
            .map(|r| {
                (r.profile.mutate + r.profile.crossover + r.profile.speciate) / r.profile.total()
            })
            .sum::<f64>()
            / self.rows.len() as f64
    }
}

/// Runs software-only NEAT on the chosen environments, forwarding
/// every telemetry event to `collector`. The figure itself is
/// assembled from the emitted `RunSummary` records.
///
/// # Errors
///
/// Returns [`RunError`] if a run or the collector fails.
pub fn run_with(
    envs: &[EnvId],
    scale: Scale,
    seed: u64,
    collector: &mut dyn Collector,
) -> Result<Fig1bResult, RunError> {
    let mut rows = Vec::with_capacity(envs.len());
    for &env in envs {
        let config = E3Config::builder(env)
            .population_size(scale.population())
            .max_generations(scale.max_generations())
            .build();
        let mut capture = MemoryCollector::new();
        E3Platform::new(config, BackendKind::Cpu, seed).run_with(&mut capture)?;
        let summary = capture.summaries().last().expect("run emits a summary");
        rows.push(Fig1bRow {
            env,
            profile: FunctionProfile::from_split(&summary.split),
        });
        for event in capture.events() {
            collector.record(event)?;
        }
    }
    collector.flush()?;
    Ok(Fig1bResult { rows })
}

/// Runs software-only NEAT on the chosen environments.
pub fn run_on(envs: &[EnvId], scale: Scale, seed: u64) -> Fig1bResult {
    run_with(envs, scale, seed, &mut NullCollector).expect("suite populations are feed-forward")
}

/// Runs the full suite.
pub fn run(scale: Scale, seed: u64) -> Fig1bResult {
    run_on(&EnvId::ALL, scale, seed)
}

impl fmt::Display for Fig1bResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig. 1(b) — NEAT timing profile on CPU")?;
        writeln!(
            f,
            "  {:<22} {:>9} {:>7} {:>10} {:>8} {:>10} {:>9}",
            "env", "evaluate", "env", "createnet", "mutate", "crossover", "speciate"
        )?;
        for row in &self.rows {
            let p = &row.profile;
            let t = p.total();
            writeln!(
                f,
                "  {:<22} {:>9} {:>7} {:>10} {:>8} {:>10} {:>9}",
                row.env.to_string(),
                crate::experiments::pct(p.evaluate / t),
                crate::experiments::pct(p.env / t),
                crate::experiments::pct(p.createnet / t),
                crate::experiments::pct(p.mutate / t),
                crate::experiments::pct(p.crossover / t),
                crate::experiments::pct(p.speciate / t)
            )?;
        }
        writeln!(
            f,
            "  suite mean: evaluate-phase {} | evolve {} (paper: ~97% / ~3%)",
            crate::experiments::pct(self.mean_evaluate_fraction()),
            crate::experiments::pct(self.mean_evolve_fraction())
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluate_dominates_and_evolve_is_light() {
        let result = run_on(&[EnvId::CartPole, EnvId::Pendulum], Scale::Quick, 2);
        assert!(
            result.mean_evaluate_fraction() > 0.85,
            "evaluate phase {} should dominate",
            result.mean_evaluate_fraction()
        );
        assert!(
            result.mean_evolve_fraction() < 0.1,
            "evolve {} should be light",
            result.mean_evolve_fraction()
        );
    }
}
