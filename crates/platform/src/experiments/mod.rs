//! Experiment drivers: one per table and figure of the paper's
//! evaluation (see DESIGN.md §5 for the full index).
//!
//! Every driver is a pure function from a [`Scale`] to a serializable
//! result struct with a `render()` text table, so the same code backs
//! the `repro` CLI, the Criterion benches, and the integration tests.
//!
//! | Paper artifact | Module |
//! |---|---|
//! | Table IV (algorithm overheads) | [`table4`] |
//! | Table V (network complexity) | [`table5`] |
//! | Fig. 1(b) (NEAT timing profile) | [`fig1b`] |
//! | Fig. 2 (convergence traces) | [`fig2`] |
//! | Fig. 3 (RL runtime split) | [`fig3`] |
//! | Fig. 4(e,f,g) (irregularity statistics) | [`fig4`] |
//! | Fig. 6 (PE parallelism) | [`fig6`] |
//! | Fig. 7 (PU parallelism) | [`fig7`] |
//! | Fig. 9(a–d) (INAX breakdown, runtime comparison) | [`fig9`] |
//! | Fig. 10(a,b) (energy, FPGA utilization) | [`fig10`] |
//! | Fig. 11 (INAX vs systolic array) | [`fig11`] |
//!
//! [`exec`], [`plan`], [`batch`], [`jit`] and [`generalize`] are
//! reproduction-specific: the host-side thread-scaling sweep of the
//! `e3-exec` evaluation engine (a software Fig. 7), the CSR `NetPlan`
//! executor microbenchmark with its end-to-end repro parity re-check,
//! the population-major batched-evaluation throughput/parity sweep,
//! the tiered-execution benchmark (hand-rolled x86-64 codegen for hot
//! genomes, interpreter as the bit-exact oracle), and the
//! scenario-distribution generalization sweep (train vs held-out
//! fitness across K scenarios per evaluation).

pub mod ablation;
pub mod batch;
pub mod exec;
pub mod fig10;
pub mod fig11;
pub mod fig1b;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig6;
pub mod fig7;
pub mod fig9;
pub mod generalize;
pub mod jit;
pub mod plan;
pub mod table4;
pub mod table5;

use serde::{Deserialize, Serialize};

/// Experiment scale: `Quick` keeps populations and step budgets small
/// enough for tests and CI; `Full` approaches the paper's parameters
/// (population 200, full step budgets) and is what EXPERIMENTS.md
/// records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scale {
    /// Seconds-scale run for tests.
    Quick,
    /// Paper-scale run for EXPERIMENTS.md.
    Full,
}

impl Scale {
    /// NEAT population size at this scale.
    pub fn population(self) -> usize {
        match self {
            Scale::Quick => 48,
            Scale::Full => 200,
        }
    }

    /// Generation cap at this scale.
    pub fn max_generations(self) -> usize {
        match self {
            Scale::Quick => 8,
            Scale::Full => 40,
        }
    }

    /// RL environment-step budget at this scale. The paper trains the
    /// RL baselines to convergence on a desktop; this reproduction caps
    /// the full-scale budget at 40k env steps per configuration so the
    /// whole suite regenerates on one laptop-class core — enough for
    /// the qualitative Fig. 2/3 claims (which tasks converge, where the
    /// runtime goes).
    pub fn rl_steps(self) -> u64 {
        match self {
            Scale::Quick => 3_000,
            Scale::Full => 40_000,
        }
    }
}

/// Renders a fraction as a percentage with one decimal.
pub(crate) fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}
