//! Fig. 3 — the RL runtime split: Forward vs Training.
//!
//! The paper profiles A2C and PPO2 with Small and Large networks and
//! finds Training (backprop + update rules) takes ~60% of runtime —
//! the part that is expensive to accelerate, which is why accelerating
//! RL's Forward offers little headroom (§III-B).

use crate::experiments::Scale;
use e3_envs::EnvId;
use e3_rl::{A2c, A2cConfig, NetworkSize, Ppo, PpoConfig};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One profiled configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig3Row {
    /// Algorithm and size label (e.g. `"A2C-small"`).
    pub label: String,
    /// Environment profiled on.
    pub env: EnvId,
    /// Fraction of runtime in the Forward phase.
    pub forward_fraction: f64,
    /// Fraction of runtime in the Training phase.
    pub training_fraction: f64,
}

/// Fig. 3 result: the four panels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig3Result {
    /// Rows in paper order: A2C-small, A2C-large, PPO2-small,
    /// PPO2-large.
    pub rows: Vec<Fig3Row>,
}

/// Profiles the four configurations on one environment.
pub fn run_on(env: EnvId, scale: Scale, seed: u64) -> Fig3Result {
    // The Forward/Training split stabilizes within a few thousand
    // steps; cap the budget so the Large configs stay cheap.
    let steps = scale.rl_steps().min(6_000);
    let mut rows = Vec::with_capacity(4);
    for size in [NetworkSize::Small, NetworkSize::Large] {
        let mut agent = A2c::new(A2cConfig::new(env, size), seed);
        agent.train_steps(steps);
        let (forward, training) = agent.profile().fractions();
        rows.push(Fig3Row {
            label: format!("A2C-{}", size_name(size)),
            env,
            forward_fraction: forward,
            training_fraction: training,
        });
    }
    for size in [NetworkSize::Small, NetworkSize::Large] {
        let mut agent = Ppo::new(PpoConfig::new(env, size), seed);
        agent.train_steps(steps);
        let (forward, training) = agent.profile().fractions();
        rows.push(Fig3Row {
            label: format!("PPO2-{}", size_name(size)),
            env,
            forward_fraction: forward,
            training_fraction: training,
        });
    }
    Fig3Result { rows }
}

/// Profiles on CartPole (a representative env; the split is a
/// property of the algorithms, not the task).
pub fn run(scale: Scale, seed: u64) -> Fig3Result {
    run_on(EnvId::CartPole, scale, seed)
}

fn size_name(size: NetworkSize) -> &'static str {
    match size {
        NetworkSize::Small => "small",
        NetworkSize::Large => "large",
    }
}

impl Fig3Result {
    /// Mean Training fraction across configurations (paper: ~60%).
    pub fn mean_training_fraction(&self) -> f64 {
        self.rows.iter().map(|r| r.training_fraction).sum::<f64>() / self.rows.len() as f64
    }
}

impl fmt::Display for Fig3Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig. 3 — RL runtime split (measured)")?;
        writeln!(f, "  {:<12} {:>9} {:>10}", "config", "Forward", "Training")?;
        for row in &self.rows {
            writeln!(
                f,
                "  {:<12} {:>9} {:>10}",
                row.label,
                crate::experiments::pct(row.forward_fraction),
                crate::experiments::pct(row.training_fraction)
            )?;
        }
        writeln!(
            f,
            "  mean Training share: {} (paper: ~60%)",
            crate::experiments::pct(self.mean_training_fraction())
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_share_is_substantial() {
        let result = run(Scale::Quick, 4);
        assert_eq!(result.rows.len(), 4);
        assert!(
            result.mean_training_fraction() > 0.4,
            "training share {} too small",
            result.mean_training_fraction()
        );
        for row in &result.rows {
            assert!((row.forward_fraction + row.training_fraction - 1.0).abs() < 1e-9);
        }
    }
}
