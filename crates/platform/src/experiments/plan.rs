//! plan — NetPlan executor microbenchmark and repro parity.
//!
//! Reproduction-specific companion to [`crate::experiments::exec`]:
//! measures the flat-CSR [`e3_neat::NetPlan`] executor against the
//! preserved per-node reference decoder
//! ([`e3_neat::ReferenceNetwork`]) on genomes evolved to
//! CartPole/LunarLander sizes, re-checking bit-identical outputs along
//! the way; then re-runs the seeded CartPole-class repro end to end at
//! 1 and 4 worker threads to confirm the plan-backed pipeline did not
//! move a single fitness bit (the PR-2 determinism contract).

use crate::backend::BackendKind;
use crate::experiments::Scale;
use crate::platform::{E3Config, E3Platform, RunError};
use e3_envs::EnvId;
use e3_jit::CompiledPlan;
use e3_neat::{Genome, NeatConfig, Network, Population, ReferenceNetwork};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::hint::black_box;
use std::time::Instant;

/// Thread counts the end-to-end parity re-check visits.
pub const THREAD_PARITY: [usize; 2] = [1, 4];

/// One microbenchmark row: the plan executor vs the reference decoder
/// on a genome evolved to this environment's size class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanBenchRow {
    /// Environment whose IO dimensions sized the genome.
    pub env: EnvId,
    /// Genome node genes.
    pub nodes: usize,
    /// Enabled connection genes.
    pub connections: usize,
    /// Compute levels of the decoded network.
    pub levels: usize,
    /// Mean nanoseconds per `ReferenceNetwork::activate`.
    pub reference_ns_per_activate: f64,
    /// Mean nanoseconds per plan-backed `Network::activate_into` (the
    /// zero-allocation production hot path episode loops use).
    pub plan_ns_per_activate: f64,
    /// `reference_ns_per_activate / plan_ns_per_activate`.
    pub speedup: f64,
    /// Nanoseconds per pass spent purely in the activation functions —
    /// a bit-contractual floor both executors share (tanh dominates on
    /// paper-sized genomes).
    pub activation_floor_ns: f64,
    /// Speedup on the addressable (non-activation) portion:
    /// `(reference - floor) / (plan - floor)`. This is what the CSR
    /// layout actually buys.
    pub addressable_speedup: f64,
    /// Mean nanoseconds per [`e3_jit::CompiledPlan::activate_into`] on
    /// the same genome — the tier-2 native path `repro jit` studies in
    /// depth, carried here so `BENCH_plan.json` and `BENCH_jit.json`
    /// stay cross-comparable. `None` when the target cannot JIT.
    pub jit_ns_per_activate: Option<f64>,
    /// `plan_ns_per_activate / jit_ns_per_activate`; `None` when the
    /// target cannot JIT.
    pub jit_speedup: Option<f64>,
    /// Every probed input produced the same f64 bit pattern on both
    /// executors (and the native tier, where supported).
    pub bit_identical: bool,
}

/// One end-to-end parity measurement: a seeded run's best fitness at a
/// given worker-thread count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanParityRow {
    /// Environment.
    pub env: EnvId,
    /// Worker threads.
    pub threads: usize,
    /// Best fitness of the run.
    pub best_fitness: f64,
}

/// The plan benchmark result (`BENCH_plan.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanBenchResult {
    /// One microbenchmark row per environment size class.
    pub rows: Vec<PlanBenchRow>,
    /// End-to-end fitness per `(environment, thread count)`.
    pub parity: Vec<PlanParityRow>,
    /// All executors agreed bitwise and every environment's fitness was
    /// identical across [`THREAD_PARITY`].
    pub parity_ok: bool,
}

impl PlanBenchResult {
    /// Geometric-mean speedup of the plan executor over the reference.
    pub fn mean_speedup(&self) -> f64 {
        if self.rows.is_empty() {
            return 1.0;
        }
        let log_sum: f64 = self.rows.iter().map(|r| r.speedup.ln()).sum();
        (log_sum / self.rows.len() as f64).exp()
    }
}

/// Evolves a genome whose IO dimensions match `env` and whose hidden
/// structure grew under a complexity-rewarding fitness — a stand-in
/// for the topologies NEAT reaches mid-run on that task. Shared with
/// [`crate::experiments::jit`] so `BENCH_plan.json` and
/// `BENCH_jit.json` time the same workloads.
pub(crate) fn evolved_genome_for(env: EnvId, scale: Scale, seed: u64) -> Genome {
    let (population, generations) = match scale {
        Scale::Quick => (32, 10),
        Scale::Full => (96, 40),
    };
    let config = NeatConfig::builder(env.observation_size(), env.policy_outputs())
        .population_size(population)
        .build();
    let mut pop = Population::new(config, seed);
    for _ in 0..generations {
        pop.evaluate(|g| (g.num_enabled_connections() + g.nodes().len()) as f64);
        pop.evolve();
    }
    pop.genomes()
        .iter()
        .max_by_key(|g| (g.num_enabled_connections(), g.nodes().len()))
        .expect("population is non-empty")
        .clone()
}

/// Deterministic probe inputs (no RNG: the bench must not perturb any
/// seeded state and must time the same workload on every run).
pub(crate) fn probe_inputs(dim: usize, count: usize) -> Vec<Vec<f64>> {
    (0..count)
        .map(|i| {
            (0..dim)
                .map(|j| ((i * 31 + j * 7 + 3) % 17) as f64 * 0.125 - 1.0)
                .collect()
        })
        .collect()
}

fn bench_row(env: EnvId, scale: Scale, seed: u64) -> PlanBenchRow {
    let genome = evolved_genome_for(env, scale, seed);
    let mut reference = ReferenceNetwork::from_genome(&genome).expect("evolved genomes decode");
    let mut net = Network::from_genome(&genome).expect("evolved genomes decode");
    let mut jit = CompiledPlan::compile(net.plan()).ok();
    let inputs = probe_inputs(env.observation_size(), 16);
    let mut bit_identical = inputs.iter().all(|x| {
        let a = reference.activate(x);
        let b = net.activate(x);
        let c = net.activate_into(x).to_vec();
        a.len() == b.len()
            && a.iter()
                .zip(b.iter().zip(&c))
                .all(|(va, (vb, vc))| va.to_bits() == vb.to_bits() && vb.to_bits() == vc.to_bits())
    });
    if let Some(jit) = jit.as_mut() {
        bit_identical &= inputs.iter().all(|x| {
            let interp = net.activate(x);
            let native = jit.activate(x);
            interp.len() == native.len()
                && interp
                    .iter()
                    .zip(&native)
                    .all(|(a, b)| a.to_bits() == b.to_bits())
        });
    }
    let (reps, rounds) = match scale {
        Scale::Quick => (20_000, 8),
        Scale::Full => (100_000, 16),
    };
    // Warm both executors (page in code and scratch buffers), then
    // time alternating rounds and keep each executor's *minimum*
    // per-call time — the standard robust estimator against scheduler
    // and frequency noise, which dwarfs the sub-microsecond signal.
    for x in &inputs {
        black_box(reference.activate(x));
        black_box(net.activate(x));
    }
    let mut reference_ns = f64::INFINITY;
    let mut plan_ns = f64::INFINITY;
    for _ in 0..rounds {
        let start = Instant::now();
        for i in 0..reps {
            black_box(reference.activate(&inputs[i % inputs.len()]));
        }
        reference_ns = reference_ns.min(start.elapsed().as_secs_f64() * 1e9 / reps as f64);
        let start = Instant::now();
        for i in 0..reps {
            // The production hot path: zero-allocation activate.
            black_box(net.activate_into(&inputs[i % inputs.len()]));
        }
        plan_ns = plan_ns.min(start.elapsed().as_secs_f64() * 1e9 / reps as f64);
    }
    let jit_ns = jit.as_mut().map(|jit| {
        for x in &inputs {
            black_box(jit.activate_into(x));
        }
        let mut best = f64::INFINITY;
        for _ in 0..rounds {
            let start = Instant::now();
            for i in 0..reps {
                black_box(jit.activate_into(&inputs[i % inputs.len()]));
            }
            best = best.min(start.elapsed().as_secs_f64() * 1e9 / reps as f64);
        }
        best
    });
    // Per-pass activation-function floor: one independent apply per
    // compute node (summed so none is dead code). Independent calls
    // pipeline like the executors' per-level applies do; a chained
    // version would overstate the floor by serializing every tanh.
    let activations: Vec<_> = (0..net.plan().num_compute_nodes())
        .map(|i| net.plan().activation(i))
        .collect();
    let mut floor_ns = f64::INFINITY;
    for _ in 0..rounds {
        let start = Instant::now();
        for i in 0..reps {
            let x = inputs[i % inputs.len()][0];
            let mut acc = 0.0;
            for (k, a) in activations.iter().enumerate() {
                acc += a.apply(x + k as f64 * 0.01);
            }
            black_box(acc);
        }
        floor_ns = floor_ns.min(start.elapsed().as_secs_f64() * 1e9 / reps as f64);
    }
    PlanBenchRow {
        env,
        nodes: genome.nodes().len(),
        connections: genome.num_enabled_connections(),
        levels: net.num_compute_levels(),
        reference_ns_per_activate: reference_ns,
        plan_ns_per_activate: plan_ns,
        speedup: if plan_ns > 0.0 {
            reference_ns / plan_ns
        } else {
            1.0
        },
        activation_floor_ns: floor_ns,
        addressable_speedup: if plan_ns - floor_ns > 0.0 {
            (reference_ns - floor_ns) / (plan_ns - floor_ns)
        } else {
            1.0
        },
        jit_ns_per_activate: jit_ns,
        jit_speedup: jit_ns.map(|ns| if ns > 0.0 { plan_ns / ns } else { 1.0 }),
        bit_identical,
    }
}

/// Runs the microbenchmark and the threaded parity re-check on `envs`.
///
/// # Errors
///
/// Returns [`RunError`] if one of the end-to-end parity runs fails.
pub fn run_on(envs: &[EnvId], scale: Scale, seed: u64) -> Result<PlanBenchResult, RunError> {
    let rows: Vec<PlanBenchRow> = envs.iter().map(|&e| bench_row(e, scale, seed)).collect();
    let mut parity = Vec::with_capacity(envs.len() * THREAD_PARITY.len());
    let mut parity_ok = rows.iter().all(|r| r.bit_identical);
    for &env in envs {
        let mut serial_best = f64::NEG_INFINITY;
        for threads in THREAD_PARITY {
            let config = E3Config::builder(env)
                .population_size(scale.population())
                .max_generations(scale.max_generations())
                .threads(threads)
                .build();
            let outcome = E3Platform::new(config, BackendKind::Cpu, seed).run()?;
            if threads == THREAD_PARITY[0] {
                serial_best = outcome.best_fitness;
            } else if outcome.best_fitness.to_bits() != serial_best.to_bits() {
                parity_ok = false;
            }
            parity.push(PlanParityRow {
                env,
                threads,
                best_fitness: outcome.best_fitness,
            });
        }
    }
    Ok(PlanBenchResult {
        rows,
        parity,
        parity_ok,
    })
}

/// Runs on the two size classes the paper's episodes span (CartPole:
/// small IO, LunarLander: the largest non-visual IO).
pub fn run(scale: Scale, seed: u64) -> Result<PlanBenchResult, RunError> {
    run_on(&[EnvId::CartPole, EnvId::LunarLander], scale, seed)
}

impl fmt::Display for PlanBenchResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "plan — CSR NetPlan executor vs per-node reference")?;
        writeln!(
            f,
            "  {:<22} {:>6} {:>6} {:>6} {:>9} {:>9} {:>9} {:>9} {:>8} {:>7} {:>7} {:>5}",
            "env",
            "nodes",
            "conns",
            "lvls",
            "ref ns",
            "plan ns",
            "jit ns",
            "tanh ns",
            "speedup",
            "addr",
            "jit",
            "bits"
        )?;
        for row in &self.rows {
            writeln!(
                f,
                "  {:<22} {:>6} {:>6} {:>6} {:>9.1} {:>9.1} {:>9} {:>9.1} {:>7.2}x {:>6.2}x {:>7} {:>5}",
                row.env.to_string(),
                row.nodes,
                row.connections,
                row.levels,
                row.reference_ns_per_activate,
                row.plan_ns_per_activate,
                row.jit_ns_per_activate
                    .map_or("n/a".to_string(), |ns| format!("{ns:.1}")),
                row.activation_floor_ns,
                row.speedup,
                row.addressable_speedup,
                row.jit_speedup
                    .map_or("n/a".to_string(), |s| format!("{s:.2}x")),
                if row.bit_identical { "ok" } else { "DRIFT" }
            )?;
        }
        writeln!(f, "  end-to-end parity (CPU backend):")?;
        for row in &self.parity {
            writeln!(
                f,
                "    {:<22} threads={} best={}",
                row.env.to_string(),
                row.threads,
                row.best_fitness
            )?;
        }
        writeln!(
            f,
            "  parity {} — geometric-mean speedup {:.2}x (target ≥1.2x on the \
             addressable portion; 'tanh ns' is the shared bit-contractual \
             activation floor neither executor can reduce)",
            if self.parity_ok { "OK" } else { "FAILED" },
            self.mean_speedup()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_rows_are_bit_identical_and_timed() {
        let row = bench_row(EnvId::CartPole, Scale::Quick, 11);
        assert!(row.bit_identical, "plan executor drifted from reference");
        assert!(row.reference_ns_per_activate > 0.0);
        assert!(row.plan_ns_per_activate > 0.0);
        assert!(row.nodes >= 3, "evolved genome has structure");
    }

    #[test]
    fn parity_holds_on_quick_cartpole() {
        let result = run_on(&[EnvId::CartPole], Scale::Quick, 5).expect("runs");
        assert!(result.parity_ok, "threaded repro parity broke: {result}");
        assert_eq!(result.parity.len(), THREAD_PARITY.len());
    }
}
