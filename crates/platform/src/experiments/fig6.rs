//! Fig. 6 — parallelism across PEs.
//!
//! Sweeps the PE count for synthetic populations whose output layer
//! has `k = 10` and `k = 15` nodes (paper defaults otherwise: 8
//! inputs, 30 hidden, sparsity 0.2). Reports per-inference runtime and
//! `U(PE)`; the paper's observation is local utilization peaks at
//! `k, ⌈k/2⌉, ⌈k/3⌉, …`.

use e3_inax::synthetic::synthetic_population_with_mutations;
use e3_inax::{schedule_inference, InaxConfig};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One sweep point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig6Point {
    /// PEs per PU.
    pub num_pe: usize,
    /// Mean wall cycles per inference across the population.
    pub mean_cycles: f64,
    /// PE utilization `U(PE)` aggregated over the population.
    pub utilization: f64,
}

/// One panel (one output-layer width `k`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig6Panel {
    /// Output-layer width.
    pub num_outputs: usize,
    /// Sweep over PE counts.
    pub points: Vec<Fig6Point>,
}

impl Fig6Panel {
    /// Whether `U(PE)` has a local peak at `pe` (higher than both
    /// neighbors in the sweep).
    pub fn has_local_peak_at(&self, pe: usize) -> bool {
        let idx = match self.points.iter().position(|p| p.num_pe == pe) {
            Some(i) => i,
            None => return false,
        };
        let u = self.points[idx].utilization;
        let left_ok = idx == 0 || self.points[idx - 1].utilization <= u + 1e-12;
        let right_ok = idx + 1 >= self.points.len() || self.points[idx + 1].utilization < u + 1e-12;
        left_ok && right_ok
    }
}

/// Full Fig. 6 result: panels for k = 10 and k = 15.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig6Result {
    /// Panels in paper order (a): k=10, (b): k=15.
    pub panels: Vec<Fig6Panel>,
}

/// Runs the sweep. Population and net shape follow paper footnote 3,
/// with the output width overridden per panel.
pub fn run() -> Fig6Result {
    let panels = [10usize, 15]
        .into_iter()
        .map(|k| {
            // Fixed two-level geometry (30 hidden, k outputs, no
            // structural mutations): the PE-alignment study assumes the
            // layer widths of footnote 3, which evolved-net width
            // variance would smear.
            let population =
                synthetic_population_with_mutations(40, 8, k, 30, 0.2, 0, 60 + k as u64);
            let points = (1..=20)
                .map(|num_pe| {
                    let config = InaxConfig::builder().num_pe(num_pe).build();
                    let mut cycles_sum = 0u64;
                    let mut active = 0u64;
                    let mut total = 0u64;
                    for net in &population {
                        let p = schedule_inference(&config, net);
                        cycles_sum += p.wall_cycles;
                        active += p.pe_active_cycles;
                        total += p.pe_total_cycles;
                    }
                    Fig6Point {
                        num_pe,
                        mean_cycles: cycles_sum as f64 / population.len() as f64,
                        utilization: active as f64 / total as f64,
                    }
                })
                .collect();
            Fig6Panel {
                num_outputs: k,
                points,
            }
        })
        .collect();
    Fig6Result { panels }
}

impl fmt::Display for Fig6Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig. 6 — parallelism across PEs (runtime + U(PE))")?;
        for panel in &self.panels {
            writeln!(f, "  output nodes k = {}", panel.num_outputs)?;
            writeln!(f, "  {:>5} {:>14} {:>8}", "#PE", "cycles/infer", "U(PE)")?;
            for p in &panel.points {
                writeln!(
                    f,
                    "  {:>5} {:>14.1} {:>8}",
                    p.num_pe,
                    p.mean_cycles,
                    crate::experiments::pct(p.utilization)
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runtime_decreases_and_utilization_trends_down() {
        let result = run();
        for panel in &result.panels {
            let first = &panel.points[0];
            let last = panel.points.last().unwrap();
            assert!(
                last.mean_cycles < first.mean_cycles,
                "more PEs must reduce runtime"
            );
            assert!(
                last.utilization < first.utilization,
                "more PEs must idle more"
            );
            for p in &panel.points {
                assert!(p.utilization > 0.0 && p.utilization <= 1.0);
            }
        }
    }

    #[test]
    fn utilization_peaks_near_divisors_of_output_width() {
        // The paper's heuristic: peaks at k and ⌈k/2⌉. The output
        // layer is the widest stable layer, so those PE counts divide
        // its waves evenly.
        let result = run();
        for panel in &result.panels {
            let k = panel.num_outputs;
            let half = k.div_ceil(2);
            assert!(
                panel.has_local_peak_at(k) || panel.has_local_peak_at(half),
                "no utilization peak at {k} or {half}"
            );
        }
    }
}
