//! Fig. 11 — INAX vs the systolic-array baseline (GeneSys-style).
//!
//! Compares the required HW cycles of INAX and a PU-parallelized 1-D
//! systolic array across PE counts, on evolved-network populations
//! with each environment's input/output dimensions. The paper's
//! findings: the SA's best point (16 PEs) is still ~3× slower than
//! INAX; across PE counts INAX is 3–12.6× faster; over-provisioning
//! INAX past the output-width heuristic buys nothing.

use e3_envs::EnvId;
use e3_inax::synthetic::synthetic_population;
use e3_inax::{schedule_inference, InaxConfig};
use e3_systolic::{DensePaddedNet, SystolicArray, SystolicConfig};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One PE-count point of the comparison.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig11Point {
    /// PEs per accelerator (per PU).
    pub num_pe: usize,
    /// Mean INAX cycles per inference (suite average).
    pub inax_cycles: f64,
    /// Mean systolic-array cycles per inference (suite average).
    pub sa_cycles: f64,
}

impl Fig11Point {
    /// Speedup of INAX over the SA at this PE count.
    pub fn speedup(&self) -> f64 {
        self.sa_cycles / self.inax_cycles
    }
}

/// Fig. 11 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig11Result {
    /// Sweep over PE counts (paper: 1..64).
    pub points: Vec<Fig11Point>,
}

impl Fig11Result {
    /// Best (minimum-cycle) SA point.
    pub fn best_sa(&self) -> &Fig11Point {
        self.points
            .iter()
            .min_by(|a, b| a.sa_cycles.total_cmp(&b.sa_cycles))
            .expect("non-empty sweep")
    }

    /// Best (minimum-cycle) INAX point.
    pub fn best_inax_cycles(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.inax_cycles)
            .fold(f64::INFINITY, f64::min)
    }

    /// The paper's headline: best-SA cycles over best-INAX cycles.
    pub fn best_vs_best_speedup(&self) -> f64 {
        self.best_sa().sa_cycles / self.best_inax_cycles()
    }
}

/// Runs the comparison over populations shaped like the paper's suite
/// — Env1–Env7 per the Fig. 11 caption, so the Atari-class Pong is
/// included — with the default 30 hidden nodes and 0.2 sparsity.
pub fn run() -> Fig11Result {
    let mut populations = Vec::new();
    for env in EnvId::ALL_WITH_ATARI {
        populations.push(synthetic_population(
            20,
            env.observation_size(),
            env.policy_outputs(),
            30,
            0.2,
            env.paper_index() as u64 * 13,
        ));
    }
    let nets: Vec<_> = populations.into_iter().flatten().collect();
    let padded: Vec<DensePaddedNet> = nets.iter().map(DensePaddedNet::from_irregular).collect();

    let points = [1usize, 2, 4, 8, 16, 64]
        .into_iter()
        .map(|num_pe| {
            let inax_config = InaxConfig::builder().num_pe(num_pe).build();
            let sa = SystolicArray::new(SystolicConfig::builder().num_pe(num_pe).build());
            let inax_total: u64 = nets
                .iter()
                .map(|n| schedule_inference(&inax_config, n).wall_cycles)
                .sum();
            let sa_total: u64 = padded.iter().map(|p| sa.inference_cycles(p)).sum();
            Fig11Point {
                num_pe,
                inax_cycles: inax_total as f64 / nets.len() as f64,
                sa_cycles: sa_total as f64 / padded.len() as f64,
            }
        })
        .collect();
    Fig11Result { points }
}

impl fmt::Display for Fig11Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig. 11 — required HW cycles: INAX vs systolic array (SA)"
        )?;
        writeln!(
            f,
            "  {:>5} {:>12} {:>12} {:>9}",
            "#PE", "INAX", "SA", "speedup"
        )?;
        for p in &self.points {
            writeln!(
                f,
                "  {:>5} {:>12.1} {:>12.1} {:>8.1}x",
                p.num_pe,
                p.inax_cycles,
                p.sa_cycles,
                p.speedup()
            )?;
        }
        writeln!(
            f,
            "  best-SA vs best-INAX: {:.1}x (paper: ~3x); per-PE range {:.1}x–{:.1}x (paper: 3x–12.6x)",
            self.best_vs_best_speedup(),
            self.points.iter().map(Fig11Point::speedup).fold(f64::INFINITY, f64::min),
            self.points.iter().map(Fig11Point::speedup).fold(0.0, f64::max)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inax_beats_sa_at_every_pe_count() {
        let result = run();
        for p in &result.points {
            assert!(
                p.speedup() > 1.0,
                "{} PEs: speedup {}",
                p.num_pe,
                p.speedup()
            );
        }
    }

    #[test]
    fn speedup_range_matches_paper_class() {
        let result = run();
        let max = result
            .points
            .iter()
            .map(Fig11Point::speedup)
            .fold(0.0, f64::max);
        let best_vs_best = result.best_vs_best_speedup();
        assert!(max > 3.0, "max speedup {max} (paper up to 12.6x)");
        assert!(
            best_vs_best > 1.5,
            "best-vs-best {best_vs_best} (paper ~3x)"
        );
    }

    #[test]
    fn overprovisioning_inax_past_heuristic_buys_little() {
        // §VI-F: PEs beyond the output width only idle.
        let result = run();
        let at_16 = result
            .points
            .iter()
            .find(|p| p.num_pe == 16)
            .unwrap()
            .inax_cycles;
        let at_64 = result
            .points
            .iter()
            .find(|p| p.num_pe == 64)
            .unwrap()
            .inax_cycles;
        assert!(at_64 > 0.85 * at_16, "64 PEs ({at_64}) ≈ 16 PEs ({at_16})");
    }
}
