//! Fig. 10 — energy comparison and FPGA resource utilization.
//!
//! * **(a)** normalized energy of the three platforms: E3-GPU burns
//!   ~71× the CPU baseline, E3-INAX cuts it by ~97% (paper §VI-D);
//! * **(b)** FPGA utilization of two INAX configurations, the deployed
//!   `E3_a` and a higher-resource `E3_b`.

use crate::backend::BackendKind;
use crate::energy::{EnergyReport, PowerModel};
use crate::experiments::fig9::Fig9bResult;
use crate::fpga::{FpgaBudget, FpgaResources};
use e3_envs::EnvId;
use e3_inax::InaxConfig;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One environment's energy row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig10aRow {
    /// Environment.
    pub env: EnvId,
    /// Energy per backend, `[CPU, GPU, INAX]`.
    pub energy: [EnergyReport; 3],
}

impl Fig10aRow {
    /// GPU energy relative to CPU.
    pub fn gpu_ratio(&self) -> f64 {
        self.energy[1].total() / self.energy[0].total()
    }

    /// Fraction of CPU energy saved by INAX.
    pub fn inax_reduction(&self) -> f64 {
        1.0 - self.energy[2].total() / self.energy[0].total()
    }
}

/// Fig. 10(a) result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig10aResult {
    /// One row per environment.
    pub rows: Vec<Fig10aRow>,
}

impl Fig10aResult {
    /// Mean INAX energy reduction across the suite (paper: 97%).
    pub fn mean_inax_reduction(&self) -> f64 {
        self.rows.iter().map(Fig10aRow::inax_reduction).sum::<f64>() / self.rows.len() as f64
    }
}

/// Derives energy from a Fig. 9(b) run (energy = power × the same
/// modeled runtimes).
pub fn run_fig10a(fig9b: &Fig9bResult, power: &PowerModel) -> Fig10aResult {
    let rows = fig9b
        .rows
        .iter()
        .map(|row| {
            let energy = [
                power.energy(BackendKind::Cpu, &row.profiles[0]),
                power.energy(BackendKind::Gpu, &row.profiles[1]),
                power.energy(BackendKind::Inax, &row.profiles[2]),
            ];
            Fig10aRow {
                env: row.env,
                energy,
            }
        })
        .collect();
    Fig10aResult { rows }
}

impl fmt::Display for Fig10aResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig. 10(a) — energy (joules, normalized to E3-CPU)")?;
        writeln!(
            f,
            "  {:<22} {:>10} {:>12} {:>10} {:>10}",
            "env", "E3-CPU", "E3-GPU", "E3-INAX", "saved"
        )?;
        for row in &self.rows {
            writeln!(
                f,
                "  {:<22} {:>10.2} {:>10.2}ˣ {:>10.3} {:>10}",
                row.env.to_string(),
                row.energy[0].total(),
                row.gpu_ratio(),
                row.energy[2].total() / row.energy[0].total(),
                crate::experiments::pct(row.inax_reduction())
            )?;
        }
        writeln!(
            f,
            "  mean INAX energy reduction: {} (paper: 97%)",
            crate::experiments::pct(self.mean_inax_reduction())
        )
    }
}

/// One configuration's FPGA utilization row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig10bRow {
    /// Configuration label.
    pub label: String,
    /// PU count.
    pub num_pu: usize,
    /// PE count per PU.
    pub num_pe: usize,
    /// Absolute resources.
    pub resources: FpgaResources,
    /// Utilization fractions `(lut, ff, dsp, bram)` on the ZCU104.
    pub utilization: (f64, f64, f64, f64),
}

/// Fig. 10(b) result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig10bResult {
    /// The two configurations, `E3_a` then `E3_b`.
    pub rows: Vec<Fig10bRow>,
}

/// Runs Fig. 10(b): `E3_a` is the deployed configuration (PU=50,
/// PE=4, the §VI-C heuristics), `E3_b` doubles the PE clusters for
/// lower latency at higher area.
pub fn run_fig10b() -> Fig10bResult {
    let budget = FpgaBudget::zcu104();
    let rows = [("E3_a", 50usize, 4usize), ("E3_b", 50, 8)]
        .into_iter()
        .map(|(label, num_pu, num_pe)| {
            let config = InaxConfig::builder().num_pu(num_pu).num_pe(num_pe).build();
            let resources = FpgaResources::of_inax(&config);
            Fig10bRow {
                label: label.to_string(),
                num_pu,
                num_pe,
                utilization: budget.utilization(&resources),
                resources,
            }
        })
        .collect();
    Fig10bResult { rows }
}

impl fmt::Display for Fig10bResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig. 10(b) — FPGA resource utilization (ZCU104)")?;
        writeln!(
            f,
            "  {:<6} {:>4} {:>4} {:>8} {:>8} {:>8} {:>8}",
            "config", "PU", "PE", "LUT", "FF", "DSP", "BRAM"
        )?;
        for row in &self.rows {
            let (lut, ff, dsp, bram) = row.utilization;
            writeln!(
                f,
                "  {:<6} {:>4} {:>4} {:>8} {:>8} {:>8} {:>8}",
                row.label,
                row.num_pu,
                row.num_pe,
                crate::experiments::pct(lut),
                crate::experiments::pct(ff),
                crate::experiments::pct(dsp),
                crate::experiments::pct(bram)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::fig9::run_fig9b_on;
    use crate::experiments::Scale;

    #[test]
    fn energy_shape_matches_paper() {
        let fig9b = run_fig9b_on(&[EnvId::CartPole], Scale::Quick, 5);
        let result = run_fig10a(&fig9b, &PowerModel::default());
        let row = &result.rows[0];
        assert!(
            row.gpu_ratio() > 10.0,
            "GPU energy ratio {} (paper: 71x)",
            row.gpu_ratio()
        );
        assert!(
            row.inax_reduction() > 0.8,
            "INAX reduction {} (paper: 97%)",
            row.inax_reduction()
        );
    }

    #[test]
    fn fig10b_configs_fit_and_order() {
        let result = run_fig10b();
        assert_eq!(result.rows.len(), 2);
        let (a, b) = (&result.rows[0], &result.rows[1]);
        assert!(
            a.utilization.0 < 1.0 && b.utilization.0 < 1.0,
            "both fit the device"
        );
        assert!(
            b.resources.lut > a.resources.lut,
            "E3_b uses more resources"
        );
        assert!(b.resources.dsp > a.resources.dsp);
    }
}
