//! Fig. 4(e,f,g) — the irregularity statistics that motivate INAX.
//!
//! Runs NEAT across the suite and aggregates, over all generations:
//! the node in-degree distribution (e), the nodes-per-layer histogram
//! (f), and the per-generation population density trace (g). These are
//! the properties — variable degree, narrow variable layers, drifting
//! density — that make evolved networks hostile to regular
//! accelerators.

use crate::backend::BackendKind;
use crate::experiments::Scale;
use crate::platform::{E3Config, E3Platform};
use e3_envs::EnvId;
use e3_neat::stats::Histogram;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Per-environment density trace (Fig. 4(g)).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DensityTrace {
    /// Environment.
    pub env: EnvId,
    /// Mean population density per generation.
    pub trace: Vec<f64>,
}

/// Fig. 4 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig4Result {
    /// In-degree histogram across the suite and all generations (e).
    pub degree_histogram: Histogram,
    /// Nodes-per-layer histogram across the suite (f).
    pub layer_histogram: Histogram,
    /// Density traces per environment (g).
    pub density: Vec<DensityTrace>,
}

/// Runs NEAT on the chosen environments and aggregates the statistics.
pub fn run_on(envs: &[EnvId], scale: Scale, seed: u64) -> Fig4Result {
    let mut degree_histogram = Histogram::new();
    let mut layer_histogram = Histogram::new();
    let mut density = Vec::new();
    for &env in envs {
        let config = E3Config::builder(env)
            .population_size(scale.population())
            .max_generations(scale.max_generations())
            .target_fitness(f64::INFINITY) // run all generations: the trace is the point
            .build();
        let outcome = E3Platform::new(config, BackendKind::Cpu, seed)
            .run()
            .expect("suite populations are feed-forward");
        let stats = outcome.complexity;
        for (value, count) in stats.degree_histogram().buckets() {
            for _ in 0..count {
                degree_histogram.record(value);
            }
        }
        for (value, count) in stats.layer_width_histogram().buckets() {
            for _ in 0..count {
                layer_histogram.record(value);
            }
        }
        density.push(DensityTrace {
            env,
            trace: stats.density_trace().to_vec(),
        });
    }
    Fig4Result {
        degree_histogram,
        layer_histogram,
        density,
    }
}

/// Runs the full suite.
pub fn run(scale: Scale, seed: u64) -> Fig4Result {
    run_on(&EnvId::ALL, scale, seed)
}

impl fmt::Display for Fig4Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig. 4(e) — node in-degree distribution")?;
        for (value, count) in self.degree_histogram.buckets() {
            writeln!(
                f,
                "  degree {:>3}: {:>7} ({})",
                value,
                count,
                crate::experiments::pct(self.degree_histogram.fraction(value))
            )?;
        }
        writeln!(f, "Fig. 4(f) — nodes-per-layer histogram")?;
        for (value, count) in self.layer_histogram.buckets() {
            writeln!(
                f,
                "  width {:>3}: {:>7} ({})",
                value,
                count,
                crate::experiments::pct(self.layer_histogram.fraction(value))
            )?;
        }
        writeln!(f, "Fig. 4(g) — population density across generations")?;
        for d in &self.density {
            let first = d.trace.first().copied().unwrap_or(0.0);
            let last = d.trace.last().copied().unwrap_or(0.0);
            writeln!(
                f,
                "  {:<22} gen0 {:.2} … gen{} {:.2}",
                d.env.to_string(),
                first,
                d.trace.len().saturating_sub(1),
                last
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statistics_show_irregularity() {
        let result = run_on(&[EnvId::CartPole], Scale::Quick, 13);
        // Variable in-degree: more than one distinct degree observed.
        let distinct_degrees = result.degree_histogram.buckets().count();
        assert!(
            distinct_degrees > 1,
            "evolved nets must have degree variance"
        );
        // Density trace exists and stays positive.
        assert!(!result.density.is_empty());
        for d in &result.density {
            assert!(!d.trace.is_empty());
            assert!(d.trace.iter().all(|&x| x > 0.0));
        }
    }
}
