//! Fig. 2 — convergence traces of A2C, PPO2 and NEAT across the suite.
//!
//! The paper plots achieved fitness (normalized to `[0, 1]` per task)
//! against runtime for (a) A2C-small, (b) PPO2-small, (c) PPO2-large
//! and (d) NEAT, with a red box around tasks that never reach the
//! required fitness. The reproduced claim is qualitative: **NEAT
//! reaches the required fitness on every task in the suite within its
//! budget, while the RL baselines miss some** (and the large network
//! needs more runtime than the small one).
//!
//! Runtime axes: the RL agents report measured wall-clock of this
//! crate's implementations; NEAT reports the platform's modeled time
//! (see DESIGN.md on why raw wall-clock of a Rust reimplementation is
//! not comparable to the paper's Python stack). Normalized fitness is
//! directly comparable.

use crate::backend::BackendKind;
use crate::experiments::Scale;
use crate::platform::{E3Config, E3Platform};
use e3_envs::EnvId;
use e3_rl::{A2c, A2cConfig, NetworkSize, Ppo, PpoConfig};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The four panels of Fig. 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Fig2Algo {
    /// Panel (a).
    A2cSmall,
    /// Panel (b).
    Ppo2Small,
    /// Panel (c).
    Ppo2Large,
    /// Panel (d).
    Neat,
}

impl Fig2Algo {
    /// All panels in paper order.
    pub const ALL: [Fig2Algo; 4] = [
        Fig2Algo::A2cSmall,
        Fig2Algo::Ppo2Small,
        Fig2Algo::Ppo2Large,
        Fig2Algo::Neat,
    ];

    /// Display label.
    pub fn name(self) -> &'static str {
        match self {
            Fig2Algo::A2cSmall => "A2C-small",
            Fig2Algo::Ppo2Small => "PPO2-small",
            Fig2Algo::Ppo2Large => "PPO2-large",
            Fig2Algo::Neat => "NEAT",
        }
    }
}

/// One algorithm × environment trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig2Trace {
    /// Environment.
    pub env: EnvId,
    /// Algorithm.
    pub algo: Fig2Algo,
    /// `(seconds, normalized fitness)` checkpoints.
    pub points: Vec<(f64, f64)>,
    /// Whether the required fitness was reached (the paper's red box
    /// marks the failures).
    pub reached_required: bool,
}

impl Fig2Trace {
    /// Best normalized fitness along the trace.
    pub fn best(&self) -> f64 {
        self.points.iter().map(|p| p.1).fold(0.0, f64::max)
    }
}

/// Fig. 2 result: traces for every panel × environment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig2Result {
    /// All traces.
    pub traces: Vec<Fig2Trace>,
}

impl Fig2Result {
    /// Traces of one panel.
    pub fn panel(&self, algo: Fig2Algo) -> impl Iterator<Item = &Fig2Trace> {
        self.traces.iter().filter(move |t| t.algo == algo)
    }

    /// Number of tasks an algorithm finished.
    pub fn tasks_finished(&self, algo: Fig2Algo) -> usize {
        self.panel(algo).filter(|t| t.reached_required).count()
    }
}

fn rl_trace<F: FnMut(u64) -> f64>(
    env: EnvId,
    algo: Fig2Algo,
    budget: u64,
    checkpoints: usize,
    mut train_to: F,
) -> Fig2Trace {
    let mut points = Vec::with_capacity(checkpoints);
    let start = std::time::Instant::now();
    let mut reached = false;
    for i in 1..=checkpoints {
        let reward = train_to(budget * i as u64 / checkpoints as u64);
        let normalized = if reward.is_finite() {
            env.normalized_fitness(reward)
        } else {
            0.0
        };
        points.push((start.elapsed().as_secs_f64(), normalized));
        if normalized >= 1.0 {
            reached = true;
            break;
        }
    }
    Fig2Trace {
        env,
        algo,
        points,
        reached_required: reached,
    }
}

/// Runs one panel on one environment. The Large network trains on a
/// quarter of the step budget: its per-step cost is ~20× the Small
/// network's, and the paper's point for PPO2-large is only that more
/// capacity needs more runtime.
pub fn run_one(env: EnvId, algo: Fig2Algo, scale: Scale, seed: u64) -> Fig2Trace {
    let budget = match algo {
        Fig2Algo::Ppo2Large => scale.rl_steps() / 4,
        _ => scale.rl_steps(),
    };
    match algo {
        Fig2Algo::A2cSmall => {
            let mut agent = A2c::new(A2cConfig::new(env, NetworkSize::Small), seed);
            rl_trace(env, algo, budget, 10, |target| {
                agent.train_steps(target - agent.total_env_steps().min(target))
            })
        }
        Fig2Algo::Ppo2Small => {
            let mut agent = Ppo::new(PpoConfig::new(env, NetworkSize::Small), seed);
            rl_trace(env, algo, budget, 10, |target| {
                agent.train_steps(target - agent.total_env_steps().min(target))
            })
        }
        Fig2Algo::Ppo2Large => {
            let mut agent = Ppo::new(PpoConfig::new(env, NetworkSize::Large), seed);
            rl_trace(env, algo, budget, 10, |target| {
                agent.train_steps(target - agent.total_env_steps().min(target))
            })
        }
        Fig2Algo::Neat => {
            let config = E3Config::builder(env)
                .population_size(scale.population())
                .max_generations(scale.max_generations())
                .build();
            let outcome = E3Platform::new(config, BackendKind::Cpu, seed)
                .run()
                .expect("suite populations are feed-forward");
            let points = outcome
                .trace
                .iter()
                .map(|&(t, fitness)| (t, env.normalized_fitness(fitness)))
                .collect();
            Fig2Trace {
                env,
                algo,
                points,
                reached_required: outcome.solved,
            }
        }
    }
}

/// Runs all four panels on the chosen environments.
pub fn run_on(envs: &[EnvId], scale: Scale, seed: u64) -> Fig2Result {
    let mut traces = Vec::new();
    for algo in Fig2Algo::ALL {
        for &env in envs {
            traces.push(run_one(env, algo, scale, seed));
        }
    }
    Fig2Result { traces }
}

/// Runs the full suite.
pub fn run(scale: Scale, seed: u64) -> Fig2Result {
    run_on(&EnvId::ALL, scale, seed)
}

impl fmt::Display for Fig2Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig. 2 — achieved (normalized) fitness across runtime")?;
        for algo in Fig2Algo::ALL {
            if self.panel(algo).next().is_none() {
                continue;
            }
            writeln!(f, "  {}:", algo.name())?;
            for trace in self.panel(algo) {
                let marker = if trace.reached_required { " " } else { "✗" }; // the paper's red box
                writeln!(
                    f,
                    "   {marker} {:<22} best {:.2} after {:.2}s ({} checkpoints)",
                    trace.env.to_string(),
                    trace.best(),
                    trace.points.last().map_or(0.0, |p| p.0),
                    trace.points.len()
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neat_solves_cartpole_where_traces_are_recorded() {
        let trace = run_one(EnvId::CartPole, Fig2Algo::Neat, Scale::Quick, 21);
        assert!(!trace.points.is_empty());
        assert!(
            trace.best() > 0.5,
            "NEAT quick trace reaches {}",
            trace.best()
        );
    }

    #[test]
    fn rl_traces_record_monotone_time() {
        let trace = run_one(EnvId::CartPole, Fig2Algo::A2cSmall, Scale::Quick, 3);
        for w in trace.points.windows(2) {
            assert!(w[1].0 >= w[0].0);
        }
        for p in &trace.points {
            assert!((0.0..=1.0).contains(&p.1), "normalized fitness in range");
        }
    }
}
