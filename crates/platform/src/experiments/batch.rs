//! batch — population-major batched evaluation throughput and parity.
//!
//! Reproduction-specific companion to [`crate::experiments::exec`]:
//! measures [`crate::EvalBackend::try_evaluate_population_batched`]
//! (the `PlanBatch` + `BatchEnv` lockstep kernel) against the scalar
//! per-individual path on the CPU backend, across worker-thread
//! counts, and re-checks that every batched run reproduces the scalar
//! serial run's fitnesses and episode lengths bit for bit (the
//! determinism contract the batch API redesign pins).
//!
//! The workload is the generation-0 population the platform actually
//! evaluates first: small dense genomes whose per-step cost is
//! dominated by the per-individual overheads (episode scaffolding,
//! per-step observation allocation, dynamic dispatch) that the batched
//! kernel amortizes across lanes.

use crate::backend::{CpuBackend, EvalBackend, EvalOutcome};
use crate::experiments::Scale;
use crate::platform::RunError;
use crate::timing::SwCostModel;
use e3_envs::EnvId;
use e3_neat::{Genome, NeatConfig, Population};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::Instant;

/// Worker counts the batched sweep visits.
pub const THREAD_SWEEP: [usize; 3] = [1, 4, 8];

/// Evaluation mode of one measurement row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EvalMode {
    /// Per-individual scalar path (`try_evaluate_population`).
    Scalar,
    /// Population-major batched path
    /// (`try_evaluate_population_batched`).
    Batched,
}

impl fmt::Display for EvalMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            EvalMode::Scalar => "scalar",
            EvalMode::Batched => "batched",
        })
    }
}

/// One `(environment, mode, thread count)` measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchBenchRow {
    /// Environment.
    pub env: EnvId,
    /// Which evaluation entry point was timed.
    pub mode: EvalMode,
    /// Worker threads ("virtual PUs").
    pub threads: usize,
    /// Minimum wall-clock seconds of one generation evaluation over
    /// the measurement rounds.
    pub eval_wall_seconds: f64,
    /// Environment steps of the generation (identical across rows of
    /// one environment by the determinism contract).
    pub total_steps: u64,
    /// `total_steps / eval_wall_seconds`.
    pub steps_per_second: f64,
    /// Scalar-serial wall time divided by this row's wall time.
    pub speedup_vs_scalar_serial: f64,
    /// Fitnesses and episode lengths are bit-identical to the scalar
    /// serial reference.
    pub matches_scalar_serial: bool,
}

/// The batched-evaluation benchmark result (`BENCH_batch.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchBenchResult {
    /// Population size of the evaluated generation.
    pub population: usize,
    /// Timing rounds per row (each row reports its minimum).
    pub rounds: usize,
    /// Host cores available to the harness when the numbers were
    /// taken: wall-clock scaling beyond this is impossible, whatever
    /// the thread count says.
    pub host_cores: usize,
    /// One row per `(environment, mode, thread count)`.
    pub rows: Vec<BatchBenchRow>,
    /// Every row reproduced the scalar serial fitnesses and episode
    /// lengths bit for bit.
    pub parity_ok: bool,
}

impl BatchBenchResult {
    /// The batched speedup over scalar serial for `env` at `threads`
    /// (0.0 if the row is missing).
    pub fn batched_speedup(&self, env: EnvId, threads: usize) -> f64 {
        self.rows
            .iter()
            .find(|r| r.env == env && r.mode == EvalMode::Batched && r.threads == threads)
            .map_or(0.0, |r| r.speedup_vs_scalar_serial)
    }

    /// The headline number the issue pins: batched CartPole throughput
    /// at 8 worker threads vs the scalar serial path.
    pub fn cartpole_batched_speedup_at_8(&self) -> f64 {
        self.batched_speedup(EnvId::CartPole, 8)
    }
}

/// The generation-0 population the platform evaluates on `env`.
fn generation_zero(env: EnvId, population: usize, seed: u64) -> Vec<Genome> {
    let config = NeatConfig::builder(env.observation_size(), env.policy_outputs())
        .population_size(population)
        .build();
    Population::new(config, seed).genomes().to_vec()
}

/// Times one evaluation entry point: a warm call first (decode caches,
/// page-in), then `rounds` timed calls keeping the minimum — the
/// robust estimator against scheduler noise. Returns the outcome (for
/// parity) and the minimum wall seconds.
fn time_eval(
    backend: &mut CpuBackend,
    mode: EvalMode,
    genomes: &[Genome],
    env: EnvId,
    seed: u64,
    rounds: usize,
) -> Result<(EvalOutcome, f64), RunError> {
    let call = |backend: &mut CpuBackend| match mode {
        EvalMode::Scalar => backend.try_evaluate_population(genomes, env, seed),
        EvalMode::Batched => backend.try_evaluate_population_batched(genomes, env, seed),
    };
    let outcome = call(backend)?;
    let mut wall = f64::INFINITY;
    for _ in 0..rounds {
        let start = Instant::now();
        let timed = call(backend)?;
        wall = wall.min(start.elapsed().as_secs_f64());
        debug_assert_eq!(timed, outcome, "evaluation must be deterministic");
    }
    Ok((outcome, wall))
}

/// Runs the mode × thread-count sweep on `envs` with the CPU backend.
///
/// # Errors
///
/// Returns [`RunError`] if an evaluation fails (generation-0
/// populations are feed-forward, so this only fires on executor loss).
pub fn run_on(envs: &[EnvId], scale: Scale, seed: u64) -> Result<BatchBenchResult, RunError> {
    let population = scale.population();
    let rounds = match scale {
        Scale::Quick => 3,
        Scale::Full => 8,
    };
    let mut rows = Vec::with_capacity(envs.len() * 2 * THREAD_SWEEP.len());
    let mut parity_ok = true;
    for &env in envs {
        let genomes = generation_zero(env, population, seed);
        // Scalar serial is the reference both for speedups and for the
        // bitwise parity check.
        let mut serial = CpuBackend::new(SwCostModel::default());
        let (reference, serial_wall) =
            time_eval(&mut serial, EvalMode::Scalar, &genomes, env, seed, rounds)?;
        for mode in [EvalMode::Scalar, EvalMode::Batched] {
            for threads in THREAD_SWEEP {
                let mut backend = CpuBackend::with_threads(SwCostModel::default(), threads);
                let (outcome, wall) = time_eval(&mut backend, mode, &genomes, env, seed, rounds)?;
                let matches = outcome.fitnesses.len() == reference.fitnesses.len()
                    && outcome
                        .fitnesses
                        .iter()
                        .zip(&reference.fitnesses)
                        .all(|(a, b)| a.to_bits() == b.to_bits())
                    && outcome.steps_per_genome == reference.steps_per_genome;
                parity_ok &= matches;
                rows.push(BatchBenchRow {
                    env,
                    mode,
                    threads,
                    eval_wall_seconds: wall,
                    total_steps: outcome.total_steps,
                    steps_per_second: if wall > 0.0 {
                        outcome.total_steps as f64 / wall
                    } else {
                        0.0
                    },
                    speedup_vs_scalar_serial: if wall > 0.0 { serial_wall / wall } else { 1.0 },
                    matches_scalar_serial: matches,
                });
            }
        }
    }
    Ok(BatchBenchResult {
        population,
        rounds,
        host_cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        rows,
        parity_ok,
    })
}

/// Runs on the issue's pinned workloads: CartPole (the headline
/// number) and LunarLander (the heaviest non-visual episode, with a
/// hand-vectorized SoA port of its own).
pub fn run(scale: Scale, seed: u64) -> Result<BatchBenchResult, RunError> {
    run_on(&[EnvId::CartPole, EnvId::LunarLander], scale, seed)
}

impl fmt::Display for BatchBenchResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "batch — population-major batched eval vs scalar (CPU backend, \
             population {}, min of {} rounds)",
            self.population, self.rounds
        )?;
        writeln!(
            f,
            "  {:<22} {:>8} {:>7} {:>11} {:>9} {:>11} {:>8} {:>5}",
            "env", "mode", "threads", "eval wall", "steps", "steps/s", "speedup", "bits"
        )?;
        for row in &self.rows {
            writeln!(
                f,
                "  {:<22} {:>8} {:>7} {:>10.4}s {:>9} {:>11.0} {:>7.2}x {:>5}",
                row.env.to_string(),
                row.mode.to_string(),
                row.threads,
                row.eval_wall_seconds,
                row.total_steps,
                row.steps_per_second,
                row.speedup_vs_scalar_serial,
                if row.matches_scalar_serial {
                    "ok"
                } else {
                    "DRIFT"
                }
            )?;
        }
        writeln!(
            f,
            "  parity {} — CartPole batched@8 = {:.2}x vs scalar serial \
             (target ≥4x); host has {} core(s): speedup beyond the kernel's \
             own gain additionally requires free cores",
            if self.parity_ok { "OK" } else { "FAILED" },
            self.cartpole_batched_speedup_at_8(),
            self.host_cores
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_reports_every_row_and_bitwise_parity() {
        let result = run_on(&[EnvId::CartPole], Scale::Quick, 42).expect("sweep runs");
        assert_eq!(result.rows.len(), 2 * THREAD_SWEEP.len());
        assert!(result.parity_ok, "batched eval drifted: {result}");
        for row in &result.rows {
            assert!(row.eval_wall_seconds > 0.0);
            assert!(row.total_steps > 0);
        }
        let steps: Vec<u64> = result.rows.iter().map(|r| r.total_steps).collect();
        assert!(
            steps.iter().all(|s| *s == steps[0]),
            "mode/threads must not change trajectories: {steps:?}"
        );
    }

    #[test]
    fn speedup_accessor_finds_the_headline_row() {
        let result = run_on(&[EnvId::CartPole], Scale::Quick, 42).expect("sweep runs");
        assert!(result.cartpole_batched_speedup_at_8() > 0.0);
        assert_eq!(result.batched_speedup(EnvId::LunarLander, 8), 0.0);
    }
}
