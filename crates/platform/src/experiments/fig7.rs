//! Fig. 7 — parallelism across PUs.
//!
//! Sweeps the PU count for populations of `p = 200` and `p = 300`
//! individuals and reports total runtime and `U(PU)`. The paper's
//! observation: utilization peaks at PU counts of `⌈p/2⌉, ⌈p/3⌉, …`
//! because those divide the population into full batches (its worked
//! example: 100 PUs finish 200 individuals in two batches; 99 PUs need
//! three, the last one 98% idle).

use e3_inax::cluster::{analyze_pu_parallelism, EpisodeWork};
use e3_inax::synthetic::synthetic_net;
use e3_inax::{schedule_inference, InaxConfig};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One sweep point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig7Point {
    /// PU count.
    pub num_pu: usize,
    /// Total wall cycles to evaluate the population.
    pub total_cycles: u64,
    /// `U(PU)`.
    pub utilization: f64,
}

/// One panel (one population size).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig7Panel {
    /// Population size `p`.
    pub num_individuals: usize,
    /// Sweep over PU counts.
    pub points: Vec<Fig7Point>,
}

impl Fig7Panel {
    /// Utilization at a PU count, if swept.
    pub fn utilization_at(&self, num_pu: usize) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.num_pu == num_pu)
            .map(|p| p.utilization)
    }
}

/// Full Fig. 7 result: panels for p = 200 and p = 300.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig7Result {
    /// Panels in paper order (a): 200, (b): 300.
    pub panels: Vec<Fig7Panel>,
}

/// Runs the sweep with the paper's default net shape (8 inputs, 4
/// outputs, 30 hidden, sparsity 0.2) and uniform 100-step episodes.
/// Work is uniform across individuals — footnote 3 fixes one shape —
/// which isolates the batch-count effect the figure demonstrates;
/// NN/env variance (paper §V-B issues 1–2) lowers the whole curve
/// without moving the divisor peaks, and is exercised separately by
/// [`e3_inax::cluster`]'s tests.
pub fn run() -> Fig7Result {
    let panels = [200usize, 300]
        .into_iter()
        .map(|p| {
            let net = synthetic_net(8, 4, 30, 0.2, 7);
            let config = InaxConfig::builder().num_pe(4).build();
            let work = EpisodeWork {
                inference_cycles: schedule_inference(&config, &net).wall_cycles,
                steps: 100,
            };
            let episodes: Vec<EpisodeWork> = vec![work; p];
            let sweep: Vec<usize> = (1..=p)
                .filter(|n| n % 2 == 1 || n % 10 == 0 || p % n == 0)
                .collect();
            let points = sweep
                .into_iter()
                .map(|num_pu| {
                    let (total_cycles, util) = analyze_pu_parallelism(num_pu, &episodes);
                    Fig7Point {
                        num_pu,
                        total_cycles,
                        utilization: util.rate(),
                    }
                })
                .collect();
            Fig7Panel {
                num_individuals: p,
                points,
            }
        })
        .collect();
    Fig7Result { panels }
}

impl fmt::Display for Fig7Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig. 7 — parallelism across PUs (runtime + U(PU))")?;
        for panel in &self.panels {
            writeln!(f, "  individuals p = {}", panel.num_individuals)?;
            writeln!(f, "  {:>5} {:>14} {:>8}", "#PU", "total cycles", "U(PU)")?;
            for point in &panel.points {
                writeln!(
                    f,
                    "  {:>5} {:>14} {:>8}",
                    point.num_pu,
                    point.total_cycles,
                    crate::experiments::pct(point.utilization)
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn divisors_of_population_peak_utilization() {
        let result = run();
        for panel in &result.panels {
            let p = panel.num_individuals;
            // Paper example: p/2 beats p/2 - 1.
            let at_half = panel.utilization_at(p / 2).expect("swept");
            let just_below = panel.utilization_at(p / 2 - 1).expect("swept");
            assert!(
                at_half > just_below,
                "p={p}: U({}) = {at_half} should beat U({}) = {just_below}",
                p / 2,
                p / 2 - 1
            );
            // Divisors are near-fully utilized.
            for d in [p, p / 2, p / 4] {
                if let Some(u) = panel.utilization_at(d) {
                    assert!(u > 0.9, "p={p}: divisor {d} utilization {u}");
                }
            }
        }
    }

    #[test]
    fn full_parallelism_minimizes_runtime() {
        let result = run();
        for panel in &result.panels {
            let full = panel
                .points
                .iter()
                .find(|pt| pt.num_pu == panel.num_individuals);
            let serial = panel.points.iter().find(|pt| pt.num_pu == 1);
            let (full, serial) = (full.expect("swept"), serial.expect("swept"));
            assert!(
                full.total_cycles < serial.total_cycles / 50,
                "huge parallel win"
            );
        }
    }
}
