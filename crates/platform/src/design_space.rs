//! Design-space exploration: choosing (PU, PE) under a device budget.
//!
//! The paper picks its configuration by heuristics (§V) and shows two
//! points (Fig. 10(b)). This module exhaustively sweeps the (PU, PE)
//! grid, prices each point with the FPGA resource model, times it with
//! the cycle model on a workload, and reports the Pareto frontier of
//! {cycles, LUTs} among configurations that fit — the full co-design
//! loop the paper's heuristics shortcut.

use crate::fpga::{FpgaBudget, FpgaResources};
use e3_exec::{AnyExecutor, Executor};
use e3_inax::cluster::{analyze_pu_parallelism, EpisodeWork};
use e3_inax::{schedule_inference, InaxConfig, IrregularNet};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One evaluated design point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DesignPoint {
    /// PU count.
    pub num_pu: usize,
    /// PEs per PU.
    pub num_pe: usize,
    /// Total cycles to evaluate the workload population.
    pub total_cycles: u64,
    /// PU-level utilization.
    pub pu_utilization: f64,
    /// Resource usage.
    pub resources: FpgaResources,
    /// Whether the point fits the budget.
    pub fits: bool,
}

/// The sweep result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignSweep {
    /// Every evaluated point (PU-major order).
    pub points: Vec<DesignPoint>,
}

impl DesignSweep {
    /// Points that fit the device.
    pub fn feasible(&self) -> impl Iterator<Item = &DesignPoint> {
        self.points.iter().filter(|p| p.fits)
    }

    /// The fastest feasible point.
    pub fn fastest(&self) -> Option<&DesignPoint> {
        self.feasible().min_by_key(|p| p.total_cycles)
    }

    /// The Pareto frontier over (total_cycles ↓, lut ↓) among feasible
    /// points, sorted by cycles.
    pub fn pareto_frontier(&self) -> Vec<&DesignPoint> {
        let mut feasible: Vec<&DesignPoint> = self.feasible().collect();
        feasible.sort_by_key(|p| (p.total_cycles, p.resources.lut));
        let mut frontier: Vec<&DesignPoint> = Vec::new();
        let mut best_lut = u64::MAX;
        for point in feasible {
            if point.resources.lut < best_lut {
                best_lut = point.resources.lut;
                frontier.push(point);
            }
        }
        frontier
    }

    /// Renders the sweep as CSV (`pu,pe,cycles,pu_util,lut,dsp,bram,fits`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("pu,pe,cycles,pu_utilization,lut,ff,dsp,bram,fits\n");
        for p in &self.points {
            out.push_str(&format!(
                "{},{},{},{:.4},{},{},{},{},{}\n",
                p.num_pu,
                p.num_pe,
                p.total_cycles,
                p.pu_utilization,
                p.resources.lut,
                p.resources.ff,
                p.resources.dsp,
                p.resources.bram,
                p.fits
            ));
        }
        out
    }
}

/// Sweeps `pu_options × pe_options` for a population of networks, each
/// playing `steps`-step episodes, against `budget`.
///
/// # Panics
///
/// Panics if any option list is empty or the population is empty.
pub fn sweep_design_space(
    nets: &[IrregularNet],
    steps: u64,
    pu_options: &[usize],
    pe_options: &[usize],
    budget: &FpgaBudget,
) -> DesignSweep {
    sweep_design_space_with(
        nets,
        steps,
        pu_options,
        pe_options,
        budget,
        &mut AnyExecutor::new(1),
    )
}

/// [`sweep_design_space`] with the grid sharded across `exec`'s worker
/// threads. Each `(PU, PE)` point is priced independently and the
/// results are reduced in grid order, so the sweep is bit-identical at
/// every worker count.
///
/// # Panics
///
/// Panics if any option list is empty or the population is empty.
pub fn sweep_design_space_with(
    nets: &[IrregularNet],
    steps: u64,
    pu_options: &[usize],
    pe_options: &[usize],
    budget: &FpgaBudget,
    exec: &mut AnyExecutor,
) -> DesignSweep {
    assert!(!nets.is_empty(), "need a workload population");
    assert!(
        !pu_options.is_empty() && !pe_options.is_empty(),
        "need sweep options"
    );
    let grid: Arc<Vec<(usize, usize)>> = Arc::new(
        pu_options
            .iter()
            .flat_map(|&num_pu| pe_options.iter().map(move |&num_pe| (num_pu, num_pe)))
            .collect(),
    );
    let nets: Arc<[IrregularNet]> = nets.into();
    let budget = *budget;
    let run = exec
        .run_shards(grid.len(), 1, move |_scratch, range| {
            range
                .map(|i| {
                    let (num_pu, num_pe) = grid[i];
                    let config = InaxConfig::builder().num_pu(num_pu).num_pe(num_pe).build();
                    let episodes: Vec<EpisodeWork> = nets
                        .iter()
                        .map(|net| EpisodeWork {
                            inference_cycles: schedule_inference(&config, net).wall_cycles,
                            steps,
                        })
                        .collect();
                    let (total_cycles, util) = analyze_pu_parallelism(num_pu, &episodes);
                    let resources = FpgaResources::of_inax(&config);
                    DesignPoint {
                        num_pu,
                        num_pe,
                        total_cycles,
                        pu_utilization: util.rate(),
                        fits: budget.fits(&resources),
                        resources,
                    }
                })
                .collect()
        })
        .expect("design-point pricing does not panic");
    DesignSweep {
        points: run.results,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use e3_inax::synthetic::synthetic_population;

    fn sweep() -> DesignSweep {
        let nets = synthetic_population(60, 8, 4, 30, 0.2, 23);
        sweep_design_space(
            &nets,
            100,
            &[10, 20, 30, 50, 60, 100],
            &[1, 2, 4, 8],
            &FpgaBudget::zcu104(),
        )
    }

    #[test]
    fn sweep_covers_the_grid_and_flags_fits() {
        let result = sweep();
        assert_eq!(result.points.len(), 24);
        assert!(result.feasible().count() >= 12, "most small configs fit");
        // Oversized config must be flagged.
        let nets = synthetic_population(10, 8, 4, 30, 0.2, 1);
        let big = sweep_design_space(&nets, 10, &[400], &[8], &FpgaBudget::zcu104());
        assert!(!big.points[0].fits);
    }

    #[test]
    fn fastest_point_uses_maximum_feasible_parallelism() {
        let result = sweep();
        let fastest = result.fastest().expect("some config fits");
        assert!(fastest.num_pu >= 50, "more PUs are faster while they fit");
        assert!(fastest.fits);
    }

    #[test]
    fn pareto_frontier_is_monotone() {
        let result = sweep();
        let frontier = result.pareto_frontier();
        assert!(!frontier.is_empty());
        for pair in frontier.windows(2) {
            assert!(pair[1].total_cycles >= pair[0].total_cycles);
            assert!(
                pair[1].resources.lut < pair[0].resources.lut,
                "frontier trades area for time"
            );
        }
    }

    #[test]
    fn threaded_sweep_is_bit_identical_to_serial() {
        let nets = synthetic_population(30, 8, 4, 20, 0.2, 7);
        let budget = FpgaBudget::zcu104();
        let serial = sweep_design_space(&nets, 50, &[10, 20, 50], &[1, 2, 4], &budget);
        for threads in [2usize, 4] {
            let mut exec = AnyExecutor::new(threads);
            let pooled =
                sweep_design_space_with(&nets, 50, &[10, 20, 50], &[1, 2, 4], &budget, &mut exec);
            assert_eq!(pooled, serial, "threads={threads}");
        }
    }

    #[test]
    fn csv_has_header_and_one_row_per_point() {
        let result = sweep();
        let csv = result.to_csv();
        assert_eq!(csv.lines().count(), 1 + result.points.len());
        assert!(csv.starts_with("pu,pe,cycles"));
    }
}
