//! # e3-platform — the Eval-Evol-Engine
//!
//! The E3 platform (paper §IV-B) runs NEAT's light "evolve" phase on
//! the CPU and offloads the heavy "evaluate" phase to a pluggable
//! backend:
//!
//! * [`CpuBackend`] — the paper's E3-CPU baseline: software inference
//!   with an interpreted-runtime cost model (the original system runs
//!   `neat-python`);
//! * [`InaxBackend`] — the paper's E3-INAX: the cycle-level INAX
//!   simulator behind DMA channels, with cycles converted to seconds
//!   at the configured clock;
//! * [`GpuBackend`] — the paper's E3-GPU reference: an analytical GPU
//!   execution model dominated by kernel-launch and transfer overheads
//!   on small, irregular, per-individual workloads.
//!
//! All three backends compute **identical fitness values** for
//! identical seeds (the environments and networks are deterministic),
//! so runtime/energy comparisons are apples-to-apples — exactly the
//! paper's experimental design.
//!
//! The [`experiments`] module contains one driver per table and figure
//! of the paper's evaluation; the `e3-bench` crate exposes them as a
//! CLI (`repro`) and as Criterion benches.
//!
//! ## Quickstart
//!
//! ```
//! use e3_platform::{BackendKind, E3Config, E3Platform};
//! use e3_envs::EnvId;
//!
//! let config = E3Config::builder(EnvId::CartPole)
//!     .population_size(30)
//!     .max_generations(3)
//!     .build();
//! let platform = E3Platform::new(config, BackendKind::Inax, 42);
//! let outcome = platform.run().unwrap();
//! assert!(outcome.generations_run >= 1);
//! assert!(outcome.modeled_seconds > 0.0);
//! ```
//!
//! ## Telemetry
//!
//! The loop is instrumented with [`telemetry`] (re-export of
//! `e3-telemetry`): pass any `Collector` to
//! [`E3Platform::run_with`] to capture per-evaluation,
//! per-generation, and per-run records, in memory or as NDJSON.
//! Evaluation is fallible — a malformed (non-feed-forward) genome
//! surfaces as [`EvalError::NotFeedForward`] through
//! [`platform::RunError`] instead of a panic.
//!
//! ## Parallel evaluation
//!
//! Every backend evaluates its population through the [`exec`]
//! engine (re-export of `e3-exec`): `E3Config::builder(...)
//! .threads(n)` shards the population across `n` worker threads
//! ("virtual PUs") with results bit-identical to the serial reference
//! at any thread count (see `tests/exec_parity.rs`).
//!
//! ## Checkpointing & resume
//!
//! `E3Config::builder(...).checkpoint(CheckpointPolicy::new(dir))`
//! snapshots the full run state into a crash-safe [`store`] directory
//! (re-export of `e3-store`) every N generations;
//! [`E3Platform::resume`] recovers the newest intact snapshot and the
//! resumed run reproduces the uninterrupted run **bit-identically** —
//! same fitness trajectory, [`platform::RunOutcome`], and telemetry
//! `Summary`, on every backend and at any thread count (see
//! `tests/resume_parity.rs`). A config/backend/seed fingerprint
//! embedded in each snapshot makes resuming the wrong run a typed
//! error.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod backend;
pub mod checkpoint;
pub mod design_space;
pub mod energy;
pub mod experiments;
pub mod fpga;
pub mod platform;
pub mod scenario;
pub mod timing;

pub use backend::{
    AnyBackend, BackendBuilder, BackendKind, CpuBackend, EvalBackend, EvalError, EvalOutcome,
    GpuBackend, InaxBackend, ParseBackendKindError,
};
pub use checkpoint::{fingerprint, RunState};
pub use design_space::{sweep_design_space, sweep_design_space_with, DesignPoint, DesignSweep};
pub use e3_exec as exec;
pub use e3_exec::JitConfig;
pub use e3_store as store;
pub use e3_store::CheckpointPolicy;
pub use e3_telemetry as telemetry;
pub use energy::{EnergyReport, PowerModel};
pub use fpga::{FpgaBudget, FpgaResources};
pub use platform::{E3Config, E3ConfigBuilder, E3Platform, FunctionProfile, RunError, RunOutcome};
pub use scenario::{
    aggregate_fitness, holdout_plan, FitnessAggregation, HoldoutConfig, ScenarioConfig,
    ScenarioSpec, HOLDOUT_EPISODE_STREAM, HOLDOUT_PARAM_STREAM, PARAM_STREAM,
};
pub use timing::{GpuCostModel, SwCostModel};
