//! The E3 platform: the closed evolve/evaluate loop (paper Fig. 1(a)
//! and Fig. 5) with per-function timing.
//!
//! The loop is instrumented with `e3-telemetry`: every population
//! evaluation emits an `EvalRecord`, every completed generation a
//! `GenerationRecord`, and every finished run a `RunSummary`. Install
//! a collector with [`E3Platform::run_with`] /
//! [`E3Platform::step_with`]; the collector is strictly write-only, so
//! results are bit-identical whichever sink is attached (see the
//! property tests in `tests/telemetry_parity.rs`).

use crate::backend::{run_software_episode, AnyBackend, BackendKind, EvalBackend, EvalError};
use crate::checkpoint::{fingerprint, RunState};
use crate::energy::PowerModel;
use crate::scenario::{holdout_plan, ScenarioConfig, ScenarioSpec};
use crate::timing::{GpuCostModel, SwCostModel};
use e3_envs::EnvId;
use e3_exec::{ExecStatsState, JitConfig, SharedExecutor};
use e3_inax::{EpisodeRunReport, InaxConfig, UtilizationBreakdown};
use e3_neat::checkpoint::PopulationSnapshot;
use e3_neat::stats::ComplexityStats;
use e3_neat::{NeatConfig, Population};
use e3_store::{CheckpointPolicy, RunStore, StoreError};
use e3_telemetry::{
    CheckpointRecord, Collector, EvalRecord, ExecRecord, FunctionSplit, GeneralizationRecord,
    GenerationRecord, HwCounters, JitRecord, NullCollector, ResumeRecord, RunSummary,
    TelemetryError, TelemetryEvent, Tracer,
};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Error produced by an E3 run.
#[derive(Debug)]
pub enum RunError {
    /// The evaluation backend rejected the population.
    Eval(EvalError),
    /// The installed telemetry collector failed to accept a record.
    Telemetry(TelemetryError),
    /// The checkpoint store failed to persist or recover run state.
    Store(StoreError),
    /// A service-layer failure replayed from a cached record (e.g. a
    /// run manager reporting a previous failure a second time) — the
    /// message is the original error's display, the typed source is
    /// gone.
    Service(String),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Eval(err) => write!(f, "evaluation failed: {err}"),
            RunError::Telemetry(err) => write!(f, "telemetry failed: {err}"),
            RunError::Store(err) => write!(f, "checkpoint store failed: {err}"),
            RunError::Service(message) => write!(f, "service failed: {message}"),
        }
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunError::Eval(err) => Some(err),
            RunError::Telemetry(err) => Some(err),
            RunError::Store(err) => Some(err),
            RunError::Service(_) => None,
        }
    }
}

impl From<EvalError> for RunError {
    fn from(err: EvalError) -> Self {
        RunError::Eval(err)
    }
}

impl From<TelemetryError> for RunError {
    fn from(err: TelemetryError) -> Self {
        RunError::Telemetry(err)
    }
}

impl From<StoreError> for RunError {
    fn from(err: StoreError) -> Self {
        RunError::Store(err)
    }
}

/// Modeled seconds per NEAT function (the categories of paper
/// Fig. 1(b) and Fig. 9(d)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct FunctionProfile {
    /// NN inference time (SW, GPU, or INAX cycles→seconds).
    pub evaluate: f64,
    /// CPU-side environment stepping.
    pub env: f64,
    /// Genome → network decoding (CreateNet).
    pub createnet: f64,
    /// Mutation during reproduction.
    pub mutate: f64,
    /// Crossover during reproduction.
    pub crossover: f64,
    /// Species assignment.
    pub speciate: f64,
}

impl FunctionProfile {
    /// Total modeled seconds.
    pub fn total(&self) -> f64 {
        self.evaluate + self.env + self.createnet + self.mutate + self.crossover + self.speciate
    }

    /// The "evolve" share (everything except evaluate + env), as a
    /// fraction of the total.
    pub fn evolve_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0.0 {
            return 0.0;
        }
        (self.createnet + self.mutate + self.crossover + self.speciate) / total
    }

    /// The "evaluate" share (inference only) as a fraction of total.
    pub fn evaluate_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0.0 {
            return 0.0;
        }
        self.evaluate / total
    }

    /// `(label, seconds)` pairs for rendering breakdowns.
    pub fn entries(&self) -> [(&'static str, f64); 6] {
        [
            ("evaluate", self.evaluate),
            ("env", self.env),
            ("createnet", self.createnet),
            ("mutate", self.mutate),
            ("crossover", self.crossover),
            ("speciate", self.speciate),
        ]
    }

    /// This profile as a telemetry [`FunctionSplit`].
    pub fn to_split(&self) -> FunctionSplit {
        FunctionSplit {
            evaluate: self.evaluate,
            env: self.env,
            createnet: self.createnet,
            mutate: self.mutate,
            crossover: self.crossover,
            speciate: self.speciate,
        }
    }

    /// Rebuilds a profile from a telemetry [`FunctionSplit`] (the
    /// inverse of [`FunctionProfile::to_split`]).
    pub fn from_split(split: &FunctionSplit) -> Self {
        FunctionProfile {
            evaluate: split.evaluate,
            env: split.env,
            createnet: split.createnet,
            mutate: split.mutate,
            crossover: split.crossover,
            speciate: split.speciate,
        }
    }
}

impl From<&FunctionProfile> for FunctionSplit {
    fn from(profile: &FunctionProfile) -> Self {
        profile.to_split()
    }
}

/// Configuration of one E3 learning run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct E3Config {
    /// Task environment.
    pub env: EnvId,
    /// NEAT hyperparameters.
    pub neat: NeatConfig,
    /// Generation cap.
    pub max_generations: usize,
    /// Stop when the best fitness reaches this (defaults to the env's
    /// required fitness).
    pub target_fitness: f64,
    /// INAX hardware configuration (used by the INAX backend).
    pub inax: InaxConfig,
    /// Software cost model.
    pub sw: SwCostModel,
    /// GPU cost model.
    pub gpu: GpuCostModel,
    /// Evaluation worker threads ("virtual PUs"); `1` is the serial
    /// reference executor. Results are bit-identical for any value.
    pub threads: usize,
    /// Crash-safe checkpointing policy. `None` (the default) disables
    /// persistence entirely; with a policy installed the platform
    /// snapshots its full run state every `every` generations, and
    /// [`E3Platform::resume`] continues bit-identically after a crash.
    /// Like `threads`, this never affects results.
    pub checkpoint: Option<CheckpointPolicy>,
    /// Scenario-distribution evaluation: how many scenarios each
    /// genome faces per generation, which distribution they are drawn
    /// from, how per-scenario fitnesses aggregate, and the optional
    /// held-out generalization pass. The default is *vanilla* —
    /// `K = 1` with default [`e3_envs::ScenarioParams`] — which takes
    /// the legacy evaluation path and is bit-identical to
    /// configurations that predate this field (old JSON deserializes
    /// via `serde(default)`).
    #[serde(default)]
    pub scenario: ScenarioConfig,
    /// Tiered-execution policy: when enabled, genomes that stay hot in
    /// the decode cache are promoted to natively compiled code
    /// (`e3-jit`), with the interpreter as the bit-exact oracle and
    /// permanent fallback. Never affects results — only speed and
    /// telemetry. The default is disabled, and configs predating this
    /// field deserialize to the default (`JitConfig::from_value`
    /// accepts a missing field).
    #[serde(default)]
    pub jit: JitConfig,
}

impl E3Config {
    /// Starts a builder with the paper's defaults for `env`: population
    /// 200, crossover rate 0.5, no initial hidden nodes (§VI-C), and
    /// the PE/PU heuristics of §V (PE = output nodes, PU = 50).
    pub fn builder(env: EnvId) -> E3ConfigBuilder {
        let neat = NeatConfig::builder(env.observation_size(), env.policy_outputs())
            .population_size(200)
            .build();
        let inax = InaxConfig::builder()
            .num_pu(50)
            .num_pe(env.policy_outputs())
            .build();
        E3ConfigBuilder {
            config: E3Config {
                env,
                neat,
                max_generations: 100,
                target_fitness: env.required_fitness(),
                inax,
                sw: SwCostModel::default(),
                gpu: GpuCostModel::default(),
                threads: 1,
                checkpoint: None,
                scenario: ScenarioConfig::default(),
                jit: JitConfig::default(),
            },
        }
    }
}

/// Builder for [`E3Config`].
#[derive(Debug, Clone)]
pub struct E3ConfigBuilder {
    config: E3Config,
}

impl E3ConfigBuilder {
    /// Sets the population size.
    pub fn population_size(mut self, n: usize) -> Self {
        self.config.neat.population_size = n;
        self
    }

    /// Sets the generation cap.
    pub fn max_generations(mut self, n: usize) -> Self {
        self.config.max_generations = n;
        self
    }

    /// Overrides the stop fitness.
    pub fn target_fitness(mut self, f: f64) -> Self {
        self.config.target_fitness = f;
        self
    }

    /// Overrides the INAX hardware configuration.
    pub fn inax(mut self, inax: InaxConfig) -> Self {
        self.config.inax = inax;
        self
    }

    /// Overrides the NEAT hyperparameters (env dimensions must match).
    pub fn neat(mut self, neat: NeatConfig) -> Self {
        self.config.neat = neat;
        self
    }

    /// Sets the number of evaluation worker threads (must be ≥ 1).
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Installs a crash-safe checkpointing policy.
    pub fn checkpoint(mut self, policy: CheckpointPolicy) -> Self {
        self.config.checkpoint = Some(policy);
        self
    }

    /// Configures scenario-distribution evaluation (train
    /// distribution, scenarios per evaluation, aggregation, and the
    /// held-out generalization pass).
    pub fn scenario(mut self, scenario: ScenarioConfig) -> Self {
        self.config.scenario = scenario;
        self
    }

    /// Configures the tiered-execution (JIT) policy. Bit-identity
    /// between tiers means this can never change results.
    pub fn jit(mut self, jit: JitConfig) -> Self {
        self.config.jit = jit;
        self
    }

    /// Finalizes the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the NEAT input/output sizes disagree with the
    /// environment.
    pub fn build(self) -> E3Config {
        let c = self.config;
        assert_eq!(
            c.neat.num_inputs,
            c.env.observation_size(),
            "NEAT inputs must match env"
        );
        assert_eq!(
            c.neat.num_outputs,
            c.env.policy_outputs(),
            "NEAT outputs must match env"
        );
        assert!(c.max_generations > 0, "need at least one generation");
        assert!(c.threads > 0, "need at least one evaluation thread");
        assert!(
            c.scenario.scenarios_per_eval > 0,
            "need at least one scenario per evaluation"
        );
        c
    }
}

/// Result of an E3 run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunOutcome {
    /// Whether the target fitness was reached.
    pub solved: bool,
    /// Generations executed (including the final evaluation).
    pub generations_run: usize,
    /// Best fitness observed.
    pub best_fitness: f64,
    /// Total modeled runtime in seconds.
    pub modeled_seconds: f64,
    /// Per-function time breakdown.
    pub profile: FunctionProfile,
    /// `(cumulative modeled seconds, best-so-far fitness)` after each
    /// generation — the Fig. 2 convergence trace.
    pub trace: Vec<(f64, f64)>,
    /// Aggregated accelerator accounting (INAX backend only).
    pub hw_report: Option<EpisodeRunReport>,
    /// Aggregated cycle-level per-PU/per-PE utilization accounting
    /// (INAX backend only). Deterministic: identical across thread
    /// counts and collector choices.
    pub hw_utilization: Option<UtilizationBreakdown>,
    /// Structural statistics of the evolved populations (Fig. 4,
    /// Table V).
    pub complexity: ComplexityStats,
}

/// Eval-phase results carried across the eval/evolve phase boundary
/// when a step is driven as two half-steps (see
/// [`E3Platform::eval_phase_with`]).
#[derive(Debug)]
struct PendingEvolve {
    /// Best fitness of the just-evaluated generation.
    best: f64,
    /// Mean fitness of the just-evaluated generation.
    mean: f64,
    /// Best fitness ever observed (after assigning this generation).
    best_ever: f64,
    /// The enclosing `generation` span, finished when the evolve phase
    /// completes.
    generation_span: e3_telemetry::SpanTimer,
}

/// The Eval-Evol-Engine: a NEAT population, an environment, and an
/// evaluation backend.
///
/// # Example
///
/// ```
/// use e3_platform::{BackendKind, E3Config, E3Platform};
/// use e3_envs::EnvId;
///
/// let config = E3Config::builder(EnvId::CartPole)
///     .population_size(20)
///     .max_generations(2)
///     .build();
/// let outcome = E3Platform::new(config, BackendKind::Cpu, 1).run().unwrap();
/// assert_eq!(outcome.trace.len(), outcome.generations_run);
/// ```
#[derive(Debug)]
pub struct E3Platform {
    config: E3Config,
    backend: AnyBackend,
    population: Population,
    profile: FunctionProfile,
    complexity: ComplexityStats,
    hw_report: Option<EpisodeRunReport>,
    hw_utilization: Option<UtilizationBreakdown>,
    trace: Vec<(f64, f64)>,
    episode_seed: u64,
    generation: usize,
    tracer: Tracer,
    seed: u64,
    last_step_best: Option<f64>,
    store: Option<RunStore>,
    pending_resume: Option<ResumeRecord>,
    pending_evolve: Option<PendingEvolve>,
}

impl E3Platform {
    /// Creates a platform with the chosen backend and seed.
    pub fn new(config: E3Config, backend: BackendKind, seed: u64) -> Self {
        E3Platform::construct(config, backend, seed, None)
    }

    /// Creates a platform that evaluates on a caller-supplied shared
    /// worker pool instead of a private executor, so many concurrent
    /// platforms (islands) time-slice one pool at
    /// population-evaluation granularity. Results are bit-identical to
    /// [`E3Platform::new`] with any thread count.
    pub fn new_with_executor(
        config: E3Config,
        backend: BackendKind,
        seed: u64,
        pool: SharedExecutor,
    ) -> Self {
        E3Platform::construct(config, backend, seed, Some(pool))
    }

    fn construct(
        config: E3Config,
        backend: BackendKind,
        seed: u64,
        pool: Option<SharedExecutor>,
    ) -> Self {
        let mut builder = backend
            .builder()
            .sw(config.sw)
            .gpu(config.gpu)
            .inax(config.inax.clone())
            .threads(config.threads);
        if let Some(pool) = pool {
            builder = builder.executor(pool);
        }
        let mut backend = builder.build();
        if config.jit.enabled {
            // Install the tier policy before the first evaluation.
            // Disabled configs skip the call entirely, so their
            // executors never see a policy message.
            backend.set_jit(config.jit);
        }
        let population = Population::new(config.neat.clone(), seed);
        E3Platform {
            config,
            backend,
            population,
            profile: FunctionProfile::default(),
            complexity: ComplexityStats::new(),
            hw_report: None,
            hw_utilization: None,
            trace: Vec::new(),
            episode_seed: seed.wrapping_add(1000),
            generation: 0,
            tracer: Tracer::disabled(),
            seed,
            last_step_best: None,
            store: None,
            pending_resume: None,
            pending_evolve: None,
        }
    }

    /// Resumes a run from the newest intact snapshot in the
    /// configuration's checkpoint directory.
    ///
    /// Returns `Ok(None)` when there is nothing to resume — no
    /// checkpoint policy configured, the directory holds no intact
    /// snapshot, or every snapshot is torn/corrupt. Callers fall back
    /// to [`E3Platform::new`] in that case; a fresh start is itself
    /// bit-identical, so resuming "from nothing" is always safe.
    ///
    /// The resumed platform continues **bit-identically**: the fitness
    /// trajectory, modeled runtime, and final telemetry `Summary`
    /// match an uninterrupted run of the same `(config, backend,
    /// seed)` at any thread count. A `Resume` telemetry record is
    /// emitted at the start of the next step (or run).
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Store`] when the directory is unreadable or
    /// holds state from a *different* run (config/backend/seed
    /// fingerprint mismatch) — resuming that would silently change
    /// results, so it is refused rather than skipped.
    pub fn resume(
        config: E3Config,
        backend: BackendKind,
        seed: u64,
    ) -> Result<Option<Self>, RunError> {
        E3Platform::resume_on(config, backend, seed, None)
    }

    /// Like [`E3Platform::resume`], but the resumed platform evaluates
    /// on the given shared worker pool (see
    /// [`E3Platform::new_with_executor`]).
    ///
    /// # Errors
    ///
    /// Same as [`E3Platform::resume`].
    pub fn resume_with_executor(
        config: E3Config,
        backend: BackendKind,
        seed: u64,
        pool: SharedExecutor,
    ) -> Result<Option<Self>, RunError> {
        E3Platform::resume_on(config, backend, seed, Some(pool))
    }

    fn resume_on(
        config: E3Config,
        backend: BackendKind,
        seed: u64,
        pool: Option<SharedExecutor>,
    ) -> Result<Option<Self>, RunError> {
        let Some(policy) = config.checkpoint.clone() else {
            return Ok(None);
        };
        let fp = fingerprint(&config, backend, seed);
        let mut store = RunStore::open(&policy.dir, fp, policy.keep_last)?;
        let Some(recovered) = store.recover::<RunState>()? else {
            return Ok(None);
        };
        let mut platform = E3Platform::construct(config, backend, seed, pool);
        platform.pending_resume = Some(ResumeRecord {
            generation: recovered.generation,
            backend: platform.backend.kind().name().to_string(),
            env: platform.config.env.name().to_string(),
            path: recovered.path.display().to_string(),
            skipped_corrupt: recovered.skipped_corrupt,
        });
        platform.apply_state(recovered.state);
        platform.store = Some(store);
        Ok(Some(platform))
    }

    /// Installs a span tracer; the platform records `run` /
    /// `generation` / `eval` / `evolve` spans and the backend records
    /// `shard` / `individual` / `episode` spans beneath them. Tracing
    /// is write-only: results are bit-identical with any tracer (see
    /// `tests/telemetry_parity.rs`). Keep a clone of the tracer to
    /// export the trace after the run.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer.clone();
        self.backend.set_tracer(tracer);
    }

    /// Which backend this platform runs on.
    pub fn backend_kind(&self) -> BackendKind {
        self.backend.kind()
    }

    /// The configuration.
    pub fn config(&self) -> &E3Config {
        &self.config
    }

    /// The evolving population.
    pub fn population(&self) -> &Population {
        &self.population
    }

    /// Mutable access to the evolving population, for callers that
    /// exchange individuals between runs (island migration). Mutating
    /// the population voids the bit-identity contract with an
    /// unmutated run — migration protocols must themselves be
    /// deterministic to restore it.
    pub fn population_mut(&mut self) -> &mut Population {
        &mut self.population
    }

    /// `true` between [`E3Platform::eval_phase_with`] and the matching
    /// [`E3Platform::evolve_phase_with`].
    pub fn mid_generation(&self) -> bool {
        self.pending_evolve.is_some()
    }

    /// Generations completed so far (continues across resume).
    pub fn generation(&self) -> usize {
        self.generation
    }

    /// Accumulated per-function modeled seconds.
    pub fn profile(&self) -> &FunctionProfile {
        &self.profile
    }

    /// Best fitness of the most recently completed step, if any (used
    /// by external drivers to apply the same stop rule as
    /// [`E3Platform::run_with`]).
    pub fn last_step_best(&self) -> Option<f64> {
        self.last_step_best
    }

    /// Captures the complete resumable state of this platform. This
    /// is what checkpoints persist; restoring it (see
    /// [`E3Platform::resume`]) continues the run bit-identically.
    pub fn capture_state(&self) -> RunState {
        assert!(
            self.pending_evolve.is_none(),
            "run state is only capturable on a generation boundary, \
             not between eval and evolve phases"
        );
        RunState {
            population: PopulationSnapshot::capture(&self.population),
            profile: self.profile,
            complexity: self.complexity.clone(),
            hw_report: self.hw_report,
            hw_utilization: self.hw_utilization.clone(),
            trace: self.trace.clone(),
            episode_seed: self.episode_seed,
            generation: self.generation,
            last_step_best: self.last_step_best,
        }
    }

    fn apply_state(&mut self, state: RunState) {
        // The snapshot carries the RNG stream, so the seed argument to
        // `restore` is only the v0-compatibility fallback.
        self.population = state.population.restore(self.seed);
        self.profile = state.profile;
        self.complexity = state.complexity;
        self.hw_report = state.hw_report;
        self.hw_utilization = state.hw_utilization;
        self.trace = state.trace;
        self.episode_seed = state.episode_seed;
        self.generation = state.generation;
        self.last_step_best = state.last_step_best;
    }

    /// Opens the run store on first use (checkpointing configured but
    /// the platform was not created through [`E3Platform::resume`]).
    fn ensure_store(&mut self) -> Result<&mut RunStore, RunError> {
        if self.store.is_none() {
            let policy = self
                .config
                .checkpoint
                .as_ref()
                .expect("ensure_store is only called with a checkpoint policy");
            let fp = fingerprint(&self.config, self.backend.kind(), self.seed);
            self.store = Some(RunStore::open(&policy.dir, fp, policy.keep_last)?);
        }
        Ok(self.store.as_mut().expect("just ensured"))
    }

    /// Persists the current run state and emits a `Checkpoint` record.
    fn write_checkpoint(&mut self, collector: &mut dyn Collector) -> Result<(), RunError> {
        let state = self.capture_state();
        let generation = self.generation;
        let best_fitness = self.population.best().map(|b| b.fitness);
        let store = self.ensure_store()?;
        let bytes_before = store.stats().bytes_written;
        let path = store.save(generation, best_fitness, &state)?;
        let bytes = store.stats().bytes_written - bytes_before;
        collector.record(&TelemetryEvent::Checkpoint(CheckpointRecord {
            generation,
            backend: self.backend.kind().name().to_string(),
            env: self.config.env.name().to_string(),
            path: path.display().to_string(),
            bytes,
            best_fitness: best_fitness.filter(|f| f.is_finite()),
        }))?;
        Ok(())
    }

    /// Executes one evaluate + evolve cycle; returns the best fitness
    /// of the evaluated generation. Telemetry is discarded; see
    /// [`E3Platform::step_with`].
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Eval`] if the backend rejects the
    /// population.
    pub fn step_generation(&mut self) -> Result<f64, RunError> {
        self.step_with(&mut NullCollector)
    }

    /// Executes one evaluate + evolve cycle, reporting telemetry to
    /// `collector`; returns the best fitness of the evaluated
    /// generation.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Eval`] if the backend rejects the
    /// population and [`RunError::Telemetry`] if the collector rejects
    /// a record.
    pub fn step_with(&mut self, collector: &mut dyn Collector) -> Result<f64, RunError> {
        self.eval_phase_with(collector)?;
        self.evolve_phase_with(collector)
    }

    /// First half of [`E3Platform::step_with`]: evaluates the current
    /// population (CreateNet + inference + env stepping) and records
    /// the `Eval`/`Exec` telemetry, leaving the platform
    /// *mid-generation* — fitnesses assigned, reproduction not yet
    /// run. Returns the best fitness of the evaluated generation.
    ///
    /// Splitting the step lets an external scheduler overlap phases
    /// across concurrent platforms (while one island's evaluation
    /// occupies a shared pool, another's evolve phase runs on the
    /// CPU) and exchange individuals at the phase boundary. Calling
    /// `eval_phase_with` then [`E3Platform::evolve_phase_with`]
    /// back-to-back is bit-identical to one `step_with` call.
    ///
    /// # Panics
    ///
    /// Panics if the platform is already mid-generation.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Eval`] if the backend rejects the
    /// population and [`RunError::Telemetry`] if the collector rejects
    /// a record.
    pub fn eval_phase_with(&mut self, collector: &mut dyn Collector) -> Result<f64, RunError> {
        assert!(
            self.pending_evolve.is_none(),
            "eval phase called while a generation is already mid-flight"
        );
        // A resumed platform announces where it picked up before any
        // event of the continued run reaches the collector.
        if let Some(resume) = self.pending_resume.take() {
            collector.record(&TelemetryEvent::Resume(resume))?;
        }
        let mut generation_span = self.tracer.start("generation", "platform");
        generation_span.arg("generation", self.generation as f64);
        // --- Evaluate phase (CreateNet + inference + env). ---
        let mut eval_span = self.tracer.start("eval", "platform");
        let genomes = self.population.genomes().to_vec();
        eval_span.arg("population", genomes.len() as f64);
        self.complexity.record_generation(&genomes);
        for genome in &genomes {
            self.profile.createnet += self.config.sw.createnet_seconds_for(genome);
        }
        // Episode conditions follow a deterministic per-generation
        // schedule: reproducible across backends (identical seeds ⇒
        // identical trajectories) while exposing evolution to varied
        // start states — important for flat-reward tasks like
        // MountainCar where a single fixed condition stalls progress.
        // The batched entry point is bit-identical to the scalar one
        // (software backends run the population-major kernel, INAX its
        // wave loop), so the platform always takes it. A vanilla
        // scenario config (K = 1, default params, mean aggregation)
        // keeps the legacy path verbatim so pre-scenario runs stay
        // bit-identical; anything else builds a per-generation
        // ScenarioSpec and routes through the scenario kernels. The
        // legacy episode-seed counter advances either way so toggling
        // the holdout pass (or a later config edit) never shifts the
        // vanilla schedule.
        // With the JIT tier enabled the vanilla route takes the scalar
        // per-genome entry point instead: the batched SoA kernel runs
        // plans lockstep and cannot host per-genome native code, while
        // the scalar loop consults the tiered decode cache. The two
        // entry points are bit-identical (see `repro batch`), so the
        // switch shifts only speed and telemetry.
        let outcome = if self.config.scenario.is_vanilla() {
            if self.config.jit.enabled {
                self.backend.try_evaluate_population(
                    &genomes,
                    self.config.env,
                    self.episode_seed,
                )?
            } else {
                self.backend.try_evaluate_population_batched(
                    &genomes,
                    self.config.env,
                    self.episode_seed,
                )?
            }
        } else {
            let spec = ScenarioSpec::for_generation(
                &self.config.scenario,
                self.seed,
                self.generation as u64,
                genomes.len(),
            );
            if self.config.jit.enabled {
                self.backend.try_evaluate_population_scenarios_scalar(
                    &genomes,
                    self.config.env,
                    &spec,
                )?
            } else {
                self.backend
                    .try_evaluate_population_scenarios(&genomes, self.config.env, &spec)?
            }
        };
        self.episode_seed = self.episode_seed.wrapping_add(1);
        self.profile.evaluate += outcome.eval_seconds;
        self.profile.env += outcome.env_seconds;
        if let Some(report) = outcome.hw_report {
            match &mut self.hw_report {
                Some(acc) => acc.merge(&report),
                None => self.hw_report = Some(report),
            }
        }
        if let Some(util) = outcome.hw_utilization {
            match &mut self.hw_utilization {
                Some(acc) => acc.merge(&util),
                None => self.hw_utilization = Some(util),
            }
        }
        let best = outcome
            .fitnesses
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        let mean = if outcome.fitnesses.is_empty() {
            0.0
        } else {
            outcome.fitnesses.iter().sum::<f64>() / outcome.fitnesses.len() as f64
        };
        collector.record(&TelemetryEvent::Eval(EvalRecord {
            generation: self.generation,
            backend: self.backend.kind().name().to_string(),
            env: self.config.env.name().to_string(),
            population: genomes.len(),
            eval_seconds: outcome.eval_seconds,
            env_seconds: outcome.env_seconds,
            total_steps: outcome.total_steps,
            best_fitness: best,
            mean_fitness: mean,
            hw: outcome.hw_report.as_ref().map(HwCounters::from),
        }))?;
        // `Idle` (nothing ran since the last take) and `Unavailable`
        // (the backend has no executor) both mean "no record this
        // generation" — but the states stay distinguishable for
        // callers that need to know why.
        if let ExecStatsState::Ready(exec) = self.backend.take_exec_stats() {
            collector.record(&TelemetryEvent::Exec(ExecRecord {
                generation: self.generation,
                backend: self.backend.kind().name().to_string(),
                workers: exec.workers,
                shards: exec.shards,
                shard_seconds: exec.shard_seconds.clone(),
                steal_count: exec.steal_count,
                cache_hits: exec.cache_hits,
                cache_misses: exec.cache_misses,
                cache_entries: exec.cache_entries,
                cache_evictions: exec.cache_evictions,
                cache_hit_rate: exec.cache_hit_rate(),
                worker_utilization: exec.worker_utilization(),
                queue_depths: exec.queue_depths.clone(),
                wall_seconds: exec.wall_seconds,
            }))?;
            // The JIT record rides along only when the tier actually
            // did something this evaluation — disabled (or
            // unsupported-target) runs emit no `Jit` events, keeping
            // their NDJSON byte-identical to pre-tier runs.
            let jit_active = exec.jit_compiled != 0
                || exec.jit_bytes != 0
                || exec.jit_fallbacks != 0
                || exec.jit_activations != 0
                || exec.jit_resident != 0;
            if jit_active {
                collector.record(&TelemetryEvent::Jit(JitRecord {
                    generation: self.generation,
                    backend: self.backend.kind().name().to_string(),
                    compiled: exec.jit_compiled,
                    bytes: exec.jit_bytes,
                    compile_seconds: exec.jit_compile_seconds,
                    fallbacks: exec.jit_fallbacks,
                    activations: exec.jit_activations,
                    resident: exec.jit_resident,
                }))?;
            }
        }
        // --- Held-out generalization pass (read-only). ---
        // Replays the generation's champion against scenarios drawn
        // from the held-out distribution. Strictly observational: it
        // touches no profile counters, no RNG state, and no fitness
        // the evolver sees, so enabling it never perturbs the run.
        if let Some(holdout) = &self.config.scenario.holdout {
            if holdout.scenarios > 0 && self.generation.is_multiple_of(holdout.every.max(1)) {
                let best_index = outcome
                    .fitnesses
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map_or(0, |(i, _)| i);
                let mut net =
                    genomes[best_index]
                        .decode()
                        .map_err(|reason| EvalError::NotFeedForward {
                            genome_index: best_index,
                            reason,
                        })?;
                let plan = holdout_plan(holdout, self.seed, self.generation as u64);
                let per_scenario: Vec<f64> = plan
                    .iter()
                    .map(|(params, seed)| {
                        let mut env = self.config.env.make_scenario(params);
                        run_software_episode(&mut net, env.as_mut(), *seed).0
                    })
                    .collect();
                let count = per_scenario.len();
                let holdout_fitness = per_scenario.iter().sum::<f64>() / count as f64;
                let holdout_min = per_scenario.iter().cloned().fold(f64::INFINITY, f64::min);
                let holdout_max = per_scenario
                    .iter()
                    .cloned()
                    .fold(f64::NEG_INFINITY, f64::max);
                let variance = per_scenario
                    .iter()
                    .map(|f| (f - holdout_fitness).powi(2))
                    .sum::<f64>()
                    / count as f64;
                collector.record(&TelemetryEvent::Generalization(GeneralizationRecord {
                    generation: self.generation,
                    backend: self.backend.kind().name().to_string(),
                    env: self.config.env.name().to_string(),
                    train_fitness: best,
                    holdout_fitness,
                    holdout_scenarios: count,
                    holdout_min,
                    holdout_max,
                    holdout_std: variance.sqrt(),
                    gap: best - holdout_fitness,
                }))?;
            }
        }
        self.population.assign_fitnesses(outcome.fitnesses);
        let best_ever = self.population.best().map_or(best, |b| b.fitness);
        self.trace.push((self.profile.total(), best_ever));
        eval_span.finish();
        self.pending_evolve = Some(PendingEvolve {
            best,
            mean,
            best_ever,
            generation_span,
        });
        Ok(best)
    }

    /// Second half of [`E3Platform::step_with`]: reproduces the
    /// population (speciate + mutate + crossover) and records the
    /// `Generation` telemetry plus any due autocheckpoint — the
    /// snapshot sits exactly on the generation boundary the next step
    /// starts from. Returns the best fitness of the generation that
    /// was evaluated by the matching [`E3Platform::eval_phase_with`].
    ///
    /// # Panics
    ///
    /// Panics if no eval phase is pending.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Telemetry`] if the collector rejects a
    /// record and [`RunError::Store`] if a due checkpoint cannot be
    /// persisted.
    pub fn evolve_phase_with(&mut self, collector: &mut dyn Collector) -> Result<f64, RunError> {
        let PendingEvolve {
            best,
            mean,
            best_ever,
            generation_span,
        } = self
            .pending_evolve
            .take()
            .expect("evolve phase called without a pending eval phase");
        // --- Evolve phase (modeled costs; the actual work runs too). ---
        let evolve_span = self.tracer.start("evolve", "platform");
        let pop = self.config.neat.population_size as f64;
        let species_count = self.population.species().len();
        let species = species_count.max(1) as f64;
        self.profile.speciate += pop * species * self.config.sw.sec_speciate_per_comparison;
        self.profile.mutate += pop * self.config.sw.sec_mutate_per_genome;
        self.profile.crossover +=
            pop * self.config.neat.crossover_rate * self.config.sw.sec_crossover_per_child;
        self.population.evolve();
        evolve_span.finish();
        collector.record(&TelemetryEvent::Generation(GenerationRecord {
            generation: self.generation,
            backend: self.backend.kind().name().to_string(),
            env: self.config.env.name().to_string(),
            best_fitness: best_ever,
            mean_fitness: mean,
            species: species_count,
            modeled_seconds: self.profile.total(),
            split: self.profile.to_split(),
        }))?;
        self.generation += 1;
        self.last_step_best = Some(best);
        generation_span.finish();
        // Generation-granular autocheckpoint: persist after the evolve
        // phase so the snapshot sits exactly on the generation
        // boundary the next step starts from.
        if let Some(every) = self.config.checkpoint.as_ref().map(|p| p.every) {
            if self.generation.is_multiple_of(every.max(1)) {
                self.write_checkpoint(collector)?;
            }
        }
        Ok(best)
    }

    /// Runs until the target fitness is reached or the generation cap
    /// hits, returning the outcome. Telemetry is discarded; see
    /// [`E3Platform::run_with`].
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Eval`] if the backend rejects a population.
    pub fn run(self) -> Result<RunOutcome, RunError> {
        self.run_with(&mut NullCollector)
    }

    /// Runs until the target fitness is reached or the generation cap
    /// hits, reporting telemetry (per-eval, per-generation, and a
    /// final [`RunSummary`]) to `collector`, which is flushed before
    /// returning.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Eval`] if the backend rejects a population
    /// and [`RunError::Telemetry`] if the collector rejects a record.
    pub fn run_with(mut self, collector: &mut dyn Collector) -> Result<RunOutcome, RunError> {
        let mut run_span = self.tracer.start("run", "platform");
        run_span.arg("max_generations", self.config.max_generations as f64);
        // A resumed run may already be finished (checkpointed right
        // after the solving generation); announce the resume even when
        // the loop body never executes.
        if let Some(resume) = self.pending_resume.take() {
            collector.record(&TelemetryEvent::Resume(resume))?;
        }
        // `generation` counts completed steps across resume, so a
        // resumed run reports the same totals as an uninterrupted one.
        let mut solved = self
            .last_step_best
            .is_some_and(|best| best >= self.config.target_fitness);
        while !solved && self.generation < self.config.max_generations {
            let best = self.step_with(collector)?;
            if best >= self.config.target_fitness {
                solved = true;
            }
        }
        let generations_run = self.generation;
        let best_fitness = self
            .population
            .best()
            .map_or(f64::NEG_INFINITY, |b| b.fitness);
        let kind = self.backend.kind();
        let energy = PowerModel::default().energy(kind, &self.profile);
        // One utilization record per run, before the summary, and only
        // when the backend produced cycle-level accounting (INAX).
        if let Some(util) = &self.hw_utilization {
            let total_cycles = self.hw_report.map_or(0, |r| r.total_cycles);
            collector.record(&TelemetryEvent::Utilization(util.to_telemetry(
                kind.name(),
                self.config.env.name(),
                total_cycles,
            )))?;
        }
        collector.record(&TelemetryEvent::Summary(RunSummary {
            backend: kind.name().to_string(),
            env: self.config.env.name().to_string(),
            generations: generations_run,
            solved,
            best_fitness,
            modeled_seconds: self.profile.total(),
            speedup_vs_cpu: None,
            energy_joules: Some(energy.total()),
            split: self.profile.to_split(),
        }))?;
        collector.flush()?;
        run_span.finish();
        Ok(RunOutcome {
            solved,
            generations_run,
            best_fitness,
            modeled_seconds: self.profile.total(),
            profile: self.profile,
            trace: self.trace,
            hw_report: self.hw_report,
            hw_utilization: self.hw_utilization,
            complexity: self.complexity,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(env: EnvId) -> E3Config {
        E3Config::builder(env)
            .population_size(20)
            .max_generations(3)
            .build()
    }

    #[test]
    fn run_produces_trace_and_profile() {
        let outcome = E3Platform::new(small(EnvId::CartPole), BackendKind::Cpu, 5)
            .run()
            .unwrap();
        assert!(outcome.generations_run >= 1);
        assert_eq!(outcome.trace.len(), outcome.generations_run);
        assert!(outcome.profile.evaluate > 0.0);
        assert!(outcome.profile.mutate > 0.0);
        assert!(outcome.modeled_seconds > 0.0);
        assert!(outcome.complexity.generations() >= 1);
    }

    #[test]
    fn trace_runtime_is_monotone_and_fitness_nondecreasing() {
        let config = E3Config::builder(EnvId::MountainCar)
            .population_size(30)
            .max_generations(5)
            .target_fitness(f64::INFINITY)
            .build();
        let outcome = E3Platform::new(config, BackendKind::Cpu, 3).run().unwrap();
        for pair in outcome.trace.windows(2) {
            assert!(pair[1].0 > pair[0].0, "runtime accumulates");
            assert!(pair[1].1 >= pair[0].1, "best-so-far never drops");
        }
    }

    #[test]
    fn cpu_profile_is_evaluate_dominated_like_fig1b() {
        let config = E3Config::builder(EnvId::CartPole)
            .population_size(50)
            .max_generations(4)
            .target_fitness(f64::INFINITY)
            .build();
        let outcome = E3Platform::new(config, BackendKind::Cpu, 7).run().unwrap();
        assert!(
            outcome.profile.evaluate_fraction() > 0.6,
            "evaluate must dominate on CPU, got {}",
            outcome.profile.evaluate_fraction()
        );
        assert!(
            outcome.profile.evolve_fraction() < 0.2,
            "evolve must be light, got {}",
            outcome.profile.evolve_fraction()
        );
    }

    #[test]
    fn split_phases_match_whole_steps_bit_for_bit() {
        let config = E3Config::builder(EnvId::CartPole)
            .population_size(20)
            .max_generations(4)
            .target_fitness(f64::INFINITY)
            .build();
        let mut whole = E3Platform::new(config.clone(), BackendKind::Cpu, 11);
        let mut split = E3Platform::new(config, BackendKind::Cpu, 11);
        for _ in 0..4 {
            let a = whole.step_with(&mut NullCollector).unwrap();
            assert!(!split.mid_generation());
            let eval_best = split.eval_phase_with(&mut NullCollector).unwrap();
            assert!(split.mid_generation());
            let b = split.evolve_phase_with(&mut NullCollector).unwrap();
            assert_eq!(a, b);
            assert_eq!(a, eval_best);
        }
        assert_eq!(whole.generation(), split.generation());
        assert_eq!(whole.trace, split.trace);
        assert_eq!(
            whole.population().genomes().len(),
            split.population().genomes().len()
        );
        let fp = |p: &E3Platform| {
            p.population()
                .genomes()
                .iter()
                .map(|g| g.fingerprint())
                .collect::<Vec<_>>()
        };
        assert_eq!(fp(&whole), fp(&split));
    }

    #[test]
    #[should_panic(expected = "without a pending eval phase")]
    fn evolve_phase_requires_a_pending_eval() {
        let mut platform = E3Platform::new(small(EnvId::CartPole), BackendKind::Cpu, 5);
        let _ = platform.evolve_phase_with(&mut NullCollector);
    }

    #[test]
    fn shared_pool_platforms_match_private_pool_platforms() {
        let config = E3Config::builder(EnvId::CartPole)
            .population_size(20)
            .max_generations(3)
            .threads(2)
            .target_fitness(f64::INFINITY)
            .build();
        let pool = SharedExecutor::new(2);
        // Two platforms time-slice one pool; each matches its own
        // private-pool twin bit-for-bit.
        for seed in [5u64, 6] {
            let private = E3Platform::new(config.clone(), BackendKind::Cpu, seed)
                .run()
                .unwrap();
            let shared =
                E3Platform::new_with_executor(config.clone(), BackendKind::Cpu, seed, pool.clone())
                    .run()
                    .unwrap();
            assert_eq!(private.best_fitness, shared.best_fitness);
            assert_eq!(private.trace, shared.trace);
        }
    }

    #[test]
    fn inax_and_cpu_runs_follow_identical_evolution() {
        // Same seed ⇒ same fitnesses ⇒ same evolutionary trajectory.
        let a = E3Platform::new(small(EnvId::CartPole), BackendKind::Cpu, 9)
            .run()
            .unwrap();
        let b = E3Platform::new(small(EnvId::CartPole), BackendKind::Inax, 9)
            .run()
            .unwrap();
        assert_eq!(a.best_fitness, b.best_fitness);
        assert_eq!(a.generations_run, b.generations_run);
        let best_a: Vec<f64> = a.trace.iter().map(|t| t.1).collect();
        let best_b: Vec<f64> = b.trace.iter().map(|t| t.1).collect();
        assert_eq!(best_a, best_b);
        assert!(
            b.modeled_seconds < a.modeled_seconds,
            "INAX accelerates the run"
        );
        assert!(b.hw_report.is_some());
    }

    #[test]
    fn inax_run_reports_utilization_that_reconciles() {
        let outcome = E3Platform::new(small(EnvId::CartPole), BackendKind::Inax, 9)
            .run()
            .unwrap();
        let report = outcome.hw_report.expect("INAX cycle accounting");
        let util = outcome.hw_utilization.expect("INAX utilization accounting");
        assert!(!util.per_pu.is_empty());
        for cycles in &util.per_pu {
            assert_eq!(cycles.total(), report.total_cycles);
        }
        let lane_busy: u64 = util.per_pe.iter().map(|l| l.busy).sum();
        assert_eq!(lane_busy, report.breakdown.pe_active);
        // Software runs carry no cycle-level accounting.
        let cpu = E3Platform::new(small(EnvId::CartPole), BackendKind::Cpu, 9)
            .run()
            .unwrap();
        assert!(cpu.hw_utilization.is_none());
    }

    #[test]
    fn traced_run_records_full_span_hierarchy() {
        let tracer = Tracer::enabled();
        let mut platform = E3Platform::new(small(EnvId::CartPole), BackendKind::Inax, 9);
        platform.set_tracer(tracer.clone());
        let traced = platform.run().unwrap();
        let names: Vec<String> = tracer.spans().into_iter().map(|s| s.name).collect();
        for expected in ["run", "generation", "eval", "evolve", "shard", "episode"] {
            assert!(
                names.iter().any(|n| n == expected),
                "missing {expected} span"
            );
        }
        // Tracing is write-only: same outcome as the untraced run.
        let plain = E3Platform::new(small(EnvId::CartPole), BackendKind::Inax, 9)
            .run()
            .unwrap();
        assert_eq!(traced, plain);
    }

    #[test]
    fn solved_run_stops_early() {
        // CartPole is trivial for NEAT; a decent population solves it
        // within a few generations.
        let config = E3Config::builder(EnvId::CartPole)
            .population_size(100)
            .max_generations(30)
            .build();
        let outcome = E3Platform::new(config, BackendKind::Cpu, 11).run().unwrap();
        assert!(outcome.solved, "cartpole should be solved");
        assert!(outcome.generations_run < 30);
    }

    #[test]
    #[should_panic(expected = "NEAT inputs must match env")]
    fn mismatched_neat_config_is_rejected() {
        let neat = NeatConfig::new(3, 2);
        let _ = E3Config::builder(EnvId::CartPole).neat(neat).build();
    }

    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("e3-platform-ckpt-{}-{tag}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn resume_without_policy_or_snapshots_is_none() {
        assert!(
            E3Platform::resume(small(EnvId::CartPole), BackendKind::Cpu, 5)
                .unwrap()
                .is_none(),
            "no checkpoint policy means nothing to resume"
        );
        let dir = scratch_dir("fresh");
        let mut config = small(EnvId::CartPole);
        config.checkpoint = Some(CheckpointPolicy::new(dir.to_string_lossy().into_owned()));
        assert!(
            E3Platform::resume(config, BackendKind::Cpu, 5)
                .unwrap()
                .is_none(),
            "an empty directory means nothing to resume"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn interrupted_run_resumes_bit_identically() {
        let reference = E3Platform::new(small(EnvId::CartPole), BackendKind::Cpu, 5)
            .run()
            .unwrap();

        let dir = scratch_dir("resume");
        let mut config = small(EnvId::CartPole);
        config.checkpoint = Some(CheckpointPolicy::new(dir.to_string_lossy().into_owned()));
        {
            // Run one generation (checkpointed), then "crash" by
            // dropping the platform.
            let mut interrupted = E3Platform::new(config.clone(), BackendKind::Cpu, 5);
            interrupted.step_generation().unwrap();
        }
        let resumed = E3Platform::resume(config, BackendKind::Cpu, 5)
            .unwrap()
            .expect("one checkpoint on disk");
        assert_eq!(resumed.generation(), 1);
        let outcome = resumed.run().unwrap();
        // Checkpointing never affects results: the resumed outcome is
        // the uninterrupted outcome, field for field.
        assert_eq!(outcome, reference);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_refuses_a_different_run() {
        let dir = scratch_dir("refuse");
        let mut config = small(EnvId::CartPole);
        config.checkpoint = Some(CheckpointPolicy::new(dir.to_string_lossy().into_owned()));
        {
            let mut platform = E3Platform::new(config.clone(), BackendKind::Cpu, 5);
            platform.step_generation().unwrap();
        }
        // Same directory, different seed: a silent resume would change
        // results, so it must error instead.
        let err = E3Platform::resume(config, BackendKind::Cpu, 6).unwrap_err();
        assert!(matches!(
            err,
            RunError::Store(StoreError::FingerprintMismatch { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_cadence_and_telemetry_records() {
        use e3_telemetry::MemoryCollector;
        let dir = scratch_dir("cadence");
        let mut config = small(EnvId::CartPole);
        config.max_generations = 4;
        config.target_fitness = f64::INFINITY;
        config.checkpoint =
            Some(CheckpointPolicy::new(dir.to_string_lossy().into_owned()).every(2));
        let mut collector = MemoryCollector::new();
        E3Platform::new(config.clone(), BackendKind::Cpu, 5)
            .run_with(&mut collector)
            .unwrap();
        // 4 generations at every=2 ⇒ checkpoints after generations 2 and 4.
        let checkpoints: Vec<usize> = collector.checkpoints().map(|c| c.generation).collect();
        assert_eq!(checkpoints, vec![2, 4]);
        assert!(collector.checkpoints().all(|c| c.bytes > 0));

        let mut resumed_collector = MemoryCollector::new();
        let resumed = E3Platform::resume(config, BackendKind::Cpu, 5)
            .unwrap()
            .expect("snapshots on disk");
        resumed.run_with(&mut resumed_collector).unwrap();
        // The run was already complete, so the continuation emits the
        // Resume record, no further generations, and the Summary.
        assert_eq!(resumed_collector.resumes().count(), 1);
        assert_eq!(resumed_collector.resumes().next().unwrap().generation, 4);
        assert_eq!(resumed_collector.generations().count(), 0);
        assert_eq!(resumed_collector.summaries().count(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn default_scenario_config_reproduces_legacy_run_bitwise() {
        // The scenario field defaults to vanilla; a config that spells
        // the default out explicitly must reproduce the implicit one
        // bit-for-bit (both take the legacy evaluation path).
        let implicit = E3Platform::new(small(EnvId::CartPole), BackendKind::Cpu, 5)
            .run()
            .unwrap();
        let mut config = small(EnvId::CartPole);
        config.scenario = ScenarioConfig::default();
        let explicit = E3Platform::new(config, BackendKind::Cpu, 5).run().unwrap();
        assert_eq!(implicit, explicit);
    }

    #[test]
    fn scenario_training_changes_results_but_stays_deterministic() {
        use crate::scenario::FitnessAggregation;
        use e3_envs::ScenarioDistribution;
        let scenario = ScenarioConfig::default()
            .train(ScenarioDistribution::moderate())
            .scenarios_per_eval(3)
            .aggregation(FitnessAggregation::CVaR { alpha: 0.5 });
        let mut config = small(EnvId::CartPole);
        config.target_fitness = f64::INFINITY;
        config.scenario = scenario;
        let a = E3Platform::new(config.clone(), BackendKind::Cpu, 5)
            .run()
            .unwrap();
        let b = E3Platform::new(config.clone(), BackendKind::Cpu, 5)
            .run()
            .unwrap();
        assert_eq!(a, b, "scenario training must be deterministic");
        let mut vanilla = small(EnvId::CartPole);
        vanilla.target_fitness = f64::INFINITY;
        let c = E3Platform::new(vanilla, BackendKind::Cpu, 5).run().unwrap();
        assert_ne!(
            a.trace, c.trace,
            "multi-scenario training must actually change the run"
        );
    }

    #[test]
    fn holdout_pass_emits_generalization_without_perturbing_the_run() {
        use crate::scenario::HoldoutConfig;
        use e3_envs::ScenarioDistribution;
        use e3_telemetry::MemoryCollector;
        let mut plain = small(EnvId::CartPole);
        plain.target_fitness = f64::INFINITY;
        let mut probed = plain.clone();
        probed.scenario = ScenarioConfig::default()
            .holdout(HoldoutConfig::new(ScenarioDistribution::shifted()).scenarios(4));
        assert!(probed.scenario.is_vanilla(), "holdout alone stays vanilla");

        let baseline = E3Platform::new(plain, BackendKind::Cpu, 5).run().unwrap();
        let mut collector = MemoryCollector::new();
        let outcome = E3Platform::new(probed, BackendKind::Cpu, 5)
            .run_with(&mut collector)
            .unwrap();
        // Read-only: the probed run reproduces the plain run exactly.
        assert_eq!(baseline, outcome);
        let records: Vec<_> = collector.generalizations().collect();
        assert_eq!(
            records.len(),
            outcome.generations_run,
            "one pass per generation"
        );
        for record in records {
            assert_eq!(record.holdout_scenarios, 4);
            assert!(record.holdout_fitness.is_finite());
            assert!(record.holdout_min <= record.holdout_fitness);
            assert!(record.holdout_fitness <= record.holdout_max);
            assert!(record.holdout_std >= 0.0);
            assert_eq!(record.gap, record.train_fitness - record.holdout_fitness);
        }
    }

    #[test]
    fn holdout_cadence_skips_generations() {
        use crate::scenario::HoldoutConfig;
        use e3_envs::ScenarioDistribution;
        use e3_telemetry::MemoryCollector;
        let mut config = small(EnvId::CartPole);
        config.max_generations = 4;
        config.target_fitness = f64::INFINITY;
        config.scenario = ScenarioConfig::default()
            .holdout(HoldoutConfig::new(ScenarioDistribution::moderate()).every(2));
        let mut collector = MemoryCollector::new();
        E3Platform::new(config, BackendKind::Cpu, 5)
            .run_with(&mut collector)
            .unwrap();
        // Generations 0..4 evaluate; passes run at generations 0 and 2.
        let generations: Vec<usize> = collector.generalizations().map(|g| g.generation).collect();
        assert_eq!(generations, vec![0, 2]);
    }

    #[test]
    fn scenario_config_round_trips_through_e3_config_json() {
        use crate::scenario::{FitnessAggregation, HoldoutConfig};
        use e3_envs::ScenarioDistribution;
        let mut config = small(EnvId::Pendulum);
        config.scenario = ScenarioConfig::default()
            .train(ScenarioDistribution::moderate())
            .scenarios_per_eval(4)
            .aggregation(FitnessAggregation::CVaR { alpha: 0.25 })
            .holdout(HoldoutConfig::new(ScenarioDistribution::shifted()).scenarios(6));
        let json = serde_json::to_string(&config).unwrap();
        let back: E3Config = serde_json::from_str(&json).unwrap();
        assert_eq!(back, config);
        // A pre-scenario config JSON (no `scenario` key at all) loads
        // as vanilla.
        let mut value = small(EnvId::Pendulum).to_value();
        if let serde::Value::Object(fields) = &mut value {
            fields.retain(|(key, _)| key != "scenario");
        }
        let legacy: E3Config = Deserialize::from_value(&value).unwrap();
        assert!(legacy.scenario.is_vanilla());
        assert_eq!(legacy, small(EnvId::Pendulum));
    }
}
