//! The INAX PU cluster: population-level parallelism and the
//! closed-loop batched-inference interface used by the E3 platform.
//!
//! The controller dispatches individuals to PUs in batches of `num_pu`
//! (paper §IV-C). Within a batch, every environment step runs one
//! synchronized inference wave across the resident PUs: the wave's
//! latency is the slowest resident network (paper §V-B issue 1), and
//! PUs whose episodes have already terminated idle until the whole
//! batch finishes (issue 2).

use crate::config::InaxConfig;
use crate::dma::{DmaModel, DmaTraffic};
use crate::net::IrregularNet;
use crate::profile::{CycleBreakdown, UtilizationBreakdown, UtilizationReport};
use crate::pu::PuSim;
use serde::{Deserialize, Serialize};

/// Aggregate accounting for a run on the accelerator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EpisodeRunReport {
    /// Total accelerator wall cycles (set-up + compute + DMA).
    pub total_cycles: u64,
    /// Phase breakdown (Fig. 9(a) categories). PE-scope accounting.
    pub breakdown: CycleBreakdown,
    /// PU-level utilization (paper Eq. 1 at PU scope).
    pub pu_utilization: UtilizationReport,
    /// PE-level utilization aggregated over all inferences.
    pub pe_utilization: UtilizationReport,
    /// Cycles spent on DMA transfers (input/weight/output channels).
    pub dma_cycles: u64,
    /// Inference waves executed.
    pub steps: u64,
}

impl EpisodeRunReport {
    /// Accumulates another report into this one.
    ///
    /// Every field is an additive counter (utilization reports add
    /// their `active`/`total` resource-cycles), so merging the per-wave
    /// reports of several accelerator instances in wave order is
    /// exactly the accounting a single accelerator running all waves
    /// would produce — the property the parallel INAX backend relies
    /// on for bit-identical results.
    pub fn merge(&mut self, other: &EpisodeRunReport) {
        self.total_cycles += other.total_cycles;
        self.breakdown.setup += other.breakdown.setup;
        self.breakdown.pe_active += other.breakdown.pe_active;
        self.breakdown.evaluate_control += other.breakdown.evaluate_control;
        self.pu_utilization.merge(other.pu_utilization);
        self.pe_utilization.merge(other.pe_utilization);
        self.dma_cycles += other.dma_cycles;
        self.steps += other.steps;
    }
}

impl From<&EpisodeRunReport> for e3_telemetry::HwCounters {
    /// Flattens the cycle accounting into the plain telemetry
    /// counters (utilization reports become their rates).
    fn from(report: &EpisodeRunReport) -> Self {
        e3_telemetry::HwCounters {
            total_cycles: report.total_cycles,
            setup_cycles: report.breakdown.setup,
            pe_active_cycles: report.breakdown.pe_active,
            evaluate_control_cycles: report.breakdown.evaluate_control,
            dma_cycles: report.dma_cycles,
            pu_utilization: report.pu_utilization.rate(),
            pe_utilization: report.pe_utilization.rate(),
            steps: report.steps,
        }
    }
}

/// A simulated INAX instance: a cluster of PUs behind DMA channels.
///
/// Typical closed-loop use: [`InaxAccelerator::load_batch`] a batch of
/// compiled networks, then call [`InaxAccelerator::step`] once per
/// environment step with the inputs of the still-alive individuals
/// until the batch's episodes all finish; repeat for the next batch
/// and read [`InaxAccelerator::report`].
///
/// # Example
///
/// ```
/// use e3_inax::{InaxAccelerator, InaxConfig};
/// use e3_inax::synthetic::synthetic_population;
///
/// let config = InaxConfig::builder().num_pu(4).num_pe(4).build();
/// let mut acc = InaxAccelerator::new(config);
/// let nets = synthetic_population(4, 8, 4, 10, 0.3, 1);
/// acc.load_batch(nets);
/// let inputs = vec![Some(vec![0.5; 8]); 4];
/// let outputs = acc.step(&inputs);
/// assert_eq!(outputs.len(), 4);
/// assert!(outputs[0].is_some());
/// assert!(acc.report().total_cycles > 0);
/// ```
#[derive(Debug)]
pub struct InaxAccelerator {
    config: InaxConfig,
    dma: DmaModel,
    traffic: DmaTraffic,
    pus: Vec<PuSim>,
    report: EpisodeRunReport,
    util: UtilizationBreakdown,
}

impl InaxAccelerator {
    /// Creates an empty accelerator.
    pub fn new(config: InaxConfig) -> Self {
        let dma = DmaModel::new(config.dma_bytes_per_cycle, config.dma_latency_cycles);
        let util = UtilizationBreakdown::new(config.num_pu.max(1), config.num_pe.max(1));
        InaxAccelerator {
            config,
            dma,
            traffic: DmaTraffic::default(),
            pus: Vec::new(),
            report: EpisodeRunReport::default(),
            util,
        }
    }

    /// The hardware configuration.
    pub fn config(&self) -> &InaxConfig {
        &self.config
    }

    /// Loads a batch of individuals onto the PUs (set-up phase):
    /// weight streams move serially over the shared weight channel,
    /// then all PUs decode in parallel.
    ///
    /// # Panics
    ///
    /// Panics if the batch exceeds `num_pu`.
    pub fn load_batch(&mut self, nets: Vec<IrregularNet>) {
        assert!(
            nets.len() <= self.config.num_pu,
            "batch of {} exceeds {} PUs",
            nets.len(),
            self.config.num_pu
        );
        let mut dma_cycles = 0u64;
        for net in &nets {
            let bytes = net.weight_stream_bytes();
            dma_cycles += self.traffic.transfer(&self.dma, bytes);
            self.util.weight_buffer_hwm_bytes = self.util.weight_buffer_hwm_bytes.max(bytes);
        }
        self.pus = nets
            .into_iter()
            .map(|n| PuSim::new(&self.config, n))
            .collect();
        let decode = self.pus.iter().map(PuSim::setup_cycles).max().unwrap_or(0);
        for pu in &self.pus {
            self.util.value_buffer_hwm_slots = self
                .util
                .value_buffer_hwm_slots
                .max(pu.net().value_buffer_slots() as u64);
        }
        // Per-PU states over the set-up phase: a resident PU computes
        // its own decode, then stalls on the shared weight channel
        // (peer decodes + DMA); empty PUs idle through the whole phase.
        for (index, cycles) in self.util.per_pu.iter_mut().enumerate() {
            if let Some(pu) = self.pus.get(index) {
                let own = pu.setup_cycles();
                cycles.busy += own;
                cycles.stall += (decode - own) + dma_cycles;
            } else {
                cycles.idle += decode + dma_cycles;
            }
        }
        self.util.dma_bytes = self.traffic.bytes;
        self.report.dma_cycles += dma_cycles;
        self.report.breakdown.setup += decode + dma_cycles;
        self.report.total_cycles += decode + dma_cycles;
    }

    /// Number of currently resident individuals.
    pub fn resident(&self) -> usize {
        self.pus.len()
    }

    /// Runs one synchronized inference wave. `inputs[i]` carries the
    /// observation for resident individual `i`, or `None` if its
    /// episode already terminated (its PU idles through the wave).
    /// Returns one output vector per resident individual.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the resident batch size.
    pub fn step(&mut self, inputs: &[Option<Vec<f64>>]) -> Vec<Option<Vec<f64>>> {
        assert_eq!(
            inputs.len(),
            self.pus.len(),
            "one input slot per resident individual"
        );
        // Input DMA: observations for alive individuals move serially
        // over the input channel (8 bytes per f64 value).
        let in_bytes: u64 = inputs.iter().flatten().map(|v| 8 * v.len() as u64).sum();
        let input_dma = self.traffic.transfer(&self.dma, in_bytes);

        let mut outputs = Vec::with_capacity(self.pus.len());
        let mut wave_wall = 0u64;
        let mut pu_active = 0u64;
        let mut out_bytes = 0u64;
        let mut pu_walls: Vec<Option<u64>> = Vec::with_capacity(self.pus.len());
        for (pu, input) in self.pus.iter_mut().zip(inputs) {
            match input {
                Some(obs) => {
                    let (out, profile) = pu.infer(obs);
                    out_bytes += 8 * out.len() as u64;
                    outputs.push(Some(out));
                    wave_wall = wave_wall.max(profile.wall_cycles);
                    pu_active += profile.wall_cycles;
                    self.report.breakdown.pe_active += profile.pe_active_cycles;
                    self.report.breakdown.evaluate_control += profile.control_cycles();
                    self.report.pe_utilization.merge(profile.pe_utilization());
                    pu_walls.push(Some(profile.wall_cycles));
                }
                None => {
                    outputs.push(None);
                    pu_walls.push(None);
                }
            }
        }
        let output_dma = self.traffic.transfer(&self.dma, out_bytes);
        let dma = input_dma + output_dma;

        // Per-PE-lane states while each alive PU infers: lane `j` is
        // busy for its node assignments and idles out the rest of its
        // PU's wall time, so Σ lane busy reconciles with the aggregate
        // `pe_active` counter and Σ lane idle with `evaluate_control`.
        for (pu, wall) in self.pus.iter().zip(&pu_walls) {
            if let Some(wall) = wall {
                for (lane, &busy) in pu.per_pe_active().iter().enumerate() {
                    let cycles = &mut self.util.per_pe[lane];
                    cycles.busy += busy;
                    cycles.idle += wall.saturating_sub(busy);
                }
            }
        }
        // Per-PU states over the wave: an alive PU computes its own
        // inference, idles at the barrier until the slowest resident
        // finishes, and stalls on the serial observation/action DMA;
        // dead and empty PUs idle through the whole wave.
        for (index, cycles) in self.util.per_pu.iter_mut().enumerate() {
            match pu_walls.get(index).copied().flatten() {
                Some(wall) => {
                    cycles.busy += wall;
                    cycles.idle += wave_wall - wall;
                    cycles.stall += dma;
                }
                None => cycles.idle += wave_wall + dma,
            }
        }

        // Idle PU time within the wave (slow-network lag + dead
        // episodes across the whole provisioned cluster) is charged to
        // evaluate-control at PU scope.
        let provisioned = self.config.num_pu as u64 * wave_wall;
        self.report.pu_utilization.merge(UtilizationReport {
            active: pu_active,
            total: provisioned,
        });
        self.util.dma_bytes = self.traffic.bytes;
        self.report.dma_cycles += dma;
        self.report.total_cycles += wave_wall + dma;
        self.report.steps += 1;
        outputs
    }

    /// Clears the resident batch (episodes done); accounting persists.
    pub fn unload_batch(&mut self) {
        self.pus.clear();
    }

    /// Cumulative run report.
    pub fn report(&self) -> EpisodeRunReport {
        self.report
    }

    /// Cumulative cycle-level utilization breakdown. Reconciles with
    /// [`InaxAccelerator::report`]: every PU's `busy + idle + stall`
    /// equals the report's `total_cycles`, and the PE lanes' summed
    /// `busy` equals the report's `pe_active` breakdown.
    pub fn utilization(&self) -> &UtilizationBreakdown {
        &self.util
    }

    /// Resets the cumulative accounting (e.g. between experiments).
    pub fn reset_report(&mut self) {
        self.report = EpisodeRunReport::default();
        self.traffic = DmaTraffic::default();
        self.util = UtilizationBreakdown::new(self.config.num_pu.max(1), self.config.num_pe.max(1));
    }
}

/// Work description of one individual's full episode, used by the
/// analytical PU-parallelism study (Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EpisodeWork {
    /// Wall cycles of one inference for this individual's network.
    pub inference_cycles: u64,
    /// Environment steps the individual survives.
    pub steps: u64,
}

impl EpisodeWork {
    /// Total busy cycles of this individual's episode.
    pub fn total_cycles(&self) -> u64 {
        self.inference_cycles * self.steps
    }
}

/// Analytical model of running `episodes` on a cluster of `num_pu`
/// PUs: individuals are dispatched in batches; each batch occupies the
/// cluster until its slowest episode finishes (lock-step inference
/// waves per env step, PUs with finished episodes idle). Returns
/// `(total_wall_cycles, pu_utilization)`.
///
/// This is the model behind the paper's Fig. 7: `U(PU)` has local
/// peaks at `⌈p/2⌉, ⌈p/3⌉, …` because those divide the population into
/// full batches.
pub fn analyze_pu_parallelism(num_pu: usize, episodes: &[EpisodeWork]) -> (u64, UtilizationReport) {
    assert!(num_pu > 0, "need at least one PU");
    let mut wall = 0u64;
    let mut util = UtilizationReport::default();
    for batch in episodes.chunks(num_pu) {
        let batch_wall = batch
            .iter()
            .map(EpisodeWork::total_cycles)
            .max()
            .unwrap_or(0);
        let active: u64 = batch.iter().map(EpisodeWork::total_cycles).sum();
        wall += batch_wall;
        util.merge(UtilizationReport {
            active,
            total: num_pu as u64 * batch_wall,
        });
    }
    (wall, util)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::synthetic_population;

    fn uniform_episodes(count: usize, cycles: u64, steps: u64) -> Vec<EpisodeWork> {
        vec![
            EpisodeWork {
                inference_cycles: cycles,
                steps
            };
            count
        ]
    }

    #[test]
    fn pu_divisors_of_population_have_full_utilization() {
        let episodes = uniform_episodes(200, 100, 10);
        for num_pu in [200, 100, 50, 25, 10] {
            let (_, util) = analyze_pu_parallelism(num_pu, &episodes);
            assert!(
                (util.rate() - 1.0).abs() < 1e-12,
                "uniform work on divisor {num_pu} must be fully utilized, got {}",
                util.rate()
            );
        }
    }

    #[test]
    fn just_below_divisor_wastes_a_batch() {
        // Paper §V-B: with p=200, 100 PUs needs 2 batches; 99 PUs needs
        // 3 batches with the last batch 98% idle.
        let episodes = uniform_episodes(200, 100, 10);
        let (wall_100, util_100) = analyze_pu_parallelism(100, &episodes);
        let (wall_99, util_99) = analyze_pu_parallelism(99, &episodes);
        assert!(wall_99 > wall_100);
        assert!(util_99.rate() < util_100.rate());
        assert!(
            (wall_99 as f64 / wall_100 as f64 - 1.5).abs() < 1e-9,
            "3 batches vs 2"
        );
    }

    #[test]
    fn more_pus_reduce_wall_time_for_uniform_work() {
        let episodes = uniform_episodes(150, 80, 7);
        let mut prev = u64::MAX;
        for num_pu in 1..=150 {
            let (wall, _) = analyze_pu_parallelism(num_pu, &episodes);
            assert!(wall <= prev, "uniform work is monotone at {num_pu} PUs");
            prev = wall;
        }
    }

    #[test]
    fn heterogeneous_work_is_bounded_by_serial_and_full_parallel() {
        // With variable episode lengths the trend still holds even
        // though batch-boundary shifts make it non-strict: any PU count
        // beats serial execution, and full parallelism is optimal.
        let episodes: Vec<EpisodeWork> = (0..150)
            .map(|i| EpisodeWork {
                inference_cycles: 50 + (i % 7) * 10,
                steps: 5 + (i % 13),
            })
            .collect();
        let (serial, serial_util) = analyze_pu_parallelism(1, &episodes);
        let (full, _) = analyze_pu_parallelism(150, &episodes);
        assert!(
            (serial_util.rate() - 1.0).abs() < 1e-12,
            "one PU never idles"
        );
        for num_pu in 2..150 {
            let (wall, util) = analyze_pu_parallelism(num_pu, &episodes);
            assert!(wall <= serial, "{num_pu} PUs must beat serial");
            assert!(wall >= full, "nothing beats full parallelism");
            assert!(util.rate() <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn closed_loop_step_accounts_cycles_and_outputs() {
        let config = InaxConfig::builder().num_pu(3).num_pe(2).build();
        let mut acc = InaxAccelerator::new(config);
        let nets = synthetic_population(3, 4, 2, 6, 0.4, 9);
        let refs: Vec<_> = nets
            .iter()
            .map(|n| n.evaluate(&[0.1, 0.2, 0.3, 0.4]))
            .collect();
        acc.load_batch(nets);
        let setup = acc.report().breakdown.setup;
        assert!(setup > 0);
        let inputs = vec![Some(vec![0.1, 0.2, 0.3, 0.4]); 3];
        let outs = acc.step(&inputs);
        for (out, reference) in outs.iter().zip(&refs) {
            assert_eq!(
                out.as_ref().unwrap(),
                reference,
                "HW must match SW bit-for-bit"
            );
        }
        let report = acc.report();
        assert_eq!(report.steps, 1);
        assert!(report.total_cycles > setup);
        assert!(report.pu_utilization.rate() <= 1.0);
    }

    #[test]
    fn dead_individuals_idle_their_pus() {
        let config = InaxConfig::builder().num_pu(2).num_pe(1).build();
        let mut acc = InaxAccelerator::new(config.clone());
        let nets = synthetic_population(2, 4, 2, 6, 0.4, 5);
        acc.load_batch(nets.clone());
        let full = vec![Some(vec![0.0; 4]); 2];
        acc.step(&full);
        let util_full = acc.report().pu_utilization.rate();

        let mut acc2 = InaxAccelerator::new(config);
        acc2.load_batch(nets);
        let half = vec![Some(vec![0.0; 4]), None];
        acc2.step(&half);
        let util_half = acc2.report().pu_utilization.rate();
        assert!(
            util_half < util_full,
            "a dead episode must reduce PU utilization"
        );
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_batch_rejected() {
        let mut acc = InaxAccelerator::new(InaxConfig::builder().num_pu(1).build());
        acc.load_batch(synthetic_population(2, 4, 2, 4, 0.4, 1));
    }

    #[test]
    fn utilization_reconciles_with_aggregate_cycle_counts() {
        // Mixed life cycle: load 3 of 4 PUs, one full wave, one wave
        // with a dead episode — every PU's busy+idle+stall must still
        // equal the aggregate wall cycles, and summed PE-lane busy
        // must equal the pe_active breakdown.
        let config = InaxConfig::builder().num_pu(4).num_pe(3).build();
        let mut acc = InaxAccelerator::new(config);
        let nets = synthetic_population(3, 4, 2, 8, 0.4, 21);
        acc.load_batch(nets);
        acc.step(&vec![Some(vec![0.1; 4]); 3]);
        acc.step(&[Some(vec![0.2; 4]), None, Some(vec![0.3; 4])]);
        acc.unload_batch();

        let report = acc.report();
        let util = acc.utilization();
        assert_eq!(util.per_pu.len(), 4);
        assert_eq!(util.per_pe.len(), 3);
        for (pu, cycles) in util.per_pu.iter().enumerate() {
            assert_eq!(
                cycles.total(),
                report.total_cycles,
                "PU {pu} accounting must partition the wall cycles"
            );
        }
        // PU 3 never held an individual; PU 1 additionally idled
        // through wave 2.
        assert_eq!(util.per_pu[3].busy, 0);
        assert!(util.per_pu[1].idle > util.per_pu[0].idle);
        let lane_busy: u64 = util.per_pe.iter().map(|c| c.busy).sum();
        assert_eq!(lane_busy, report.breakdown.pe_active);
        let lane_idle: u64 = util.per_pe.iter().map(|c| c.idle).sum();
        assert_eq!(lane_idle, report.breakdown.evaluate_control);
        assert!(util.dma_bytes > 0);
        assert!(util.weight_buffer_hwm_bytes > 0);
        assert!(util.value_buffer_hwm_slots >= 8, "hidden + io slots");
    }

    #[test]
    fn merged_per_wave_utilization_equals_single_accelerator() {
        let config = InaxConfig::builder().num_pu(2).num_pe(2).build();
        let nets = synthetic_population(4, 4, 2, 6, 0.5, 9);
        let inputs = |n: usize| vec![Some(vec![0.25; 4]); n];

        let mut single = InaxAccelerator::new(config.clone());
        for wave in nets.chunks(2) {
            single.load_batch(wave.to_vec());
            single.step(&inputs(wave.len()));
            single.unload_batch();
        }

        let mut merged = UtilizationBreakdown::default();
        for wave in nets.chunks(2) {
            let mut acc = InaxAccelerator::new(config.clone());
            acc.load_batch(wave.to_vec());
            acc.step(&inputs(wave.len()));
            acc.unload_batch();
            merged.merge(acc.utilization());
        }
        assert_eq!(&merged, single.utilization());
    }

    #[test]
    fn merged_per_wave_reports_equal_single_accelerator_accounting() {
        // Two waves on one accelerator vs one accelerator per wave,
        // merged in wave order: the accounting must be identical.
        let config = InaxConfig::builder().num_pu(2).num_pe(2).build();
        let nets = synthetic_population(4, 4, 2, 6, 0.5, 9);
        let inputs = |n: usize| vec![Some(vec![0.25; 4]); n];

        let mut single = InaxAccelerator::new(config.clone());
        for wave in nets.chunks(2) {
            single.load_batch(wave.to_vec());
            single.step(&inputs(wave.len()));
            single.unload_batch();
        }

        let mut merged = EpisodeRunReport::default();
        for wave in nets.chunks(2) {
            let mut acc = InaxAccelerator::new(config.clone());
            acc.load_batch(wave.to_vec());
            acc.step(&inputs(wave.len()));
            acc.unload_batch();
            merged.merge(&acc.report());
        }
        assert_eq!(merged, single.report());
    }

    #[test]
    fn unload_preserves_accounting() {
        let mut acc = InaxAccelerator::new(InaxConfig::builder().num_pu(2).build());
        acc.load_batch(synthetic_population(2, 4, 2, 4, 0.4, 2));
        let before = acc.report().total_cycles;
        acc.unload_batch();
        assert_eq!(acc.resident(), 0);
        assert_eq!(acc.report().total_cycles, before);
    }
}
