//! Synthetic irregular networks for accelerator microbenchmarks.
//!
//! The paper's parallelism studies (Figs. 6, 7, 9(a)) run on synthetic
//! populations with controlled shape: "num individuals: 200, num
//! inputs: 8, num outputs: 4, num hidden nodes: 30, sparsity rate:
//! 0.2" (footnote 3). These helpers build such networks through the
//! same genome machinery evolution uses, then apply structural
//! mutations so connections span levels like real evolved networks.

use crate::net::IrregularNet;
use e3_neat::{Genome, InnovationTracker, NeatConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds one synthetic irregular network with the requested shape.
///
/// `density` is the paper's sparsity rate: the fraction of candidate
/// feed-forward connections instantiated.
pub fn synthetic_net(
    num_inputs: usize,
    num_outputs: usize,
    hidden_nodes: usize,
    density: f64,
    seed: u64,
) -> IrregularNet {
    synthetic_genome(num_inputs, num_outputs, hidden_nodes, density, seed)
        .decode()
        .map(|n| IrregularNet::from_network(&n))
        .expect("synthetic genomes are feed-forward by construction")
}

/// Builds the genome behind [`synthetic_net`] (useful when the genome
/// itself is needed, e.g. for weight-channel size accounting).
pub fn synthetic_genome(
    num_inputs: usize,
    num_outputs: usize,
    hidden_nodes: usize,
    density: f64,
    seed: u64,
) -> Genome {
    // A few structural mutations create the multi-level, cross-level
    // irregularity of evolved networks (Fig. 4(c)).
    synthetic_genome_with_mutations(
        num_inputs,
        num_outputs,
        hidden_nodes,
        density,
        hidden_nodes / 5,
        seed,
    )
}

/// Like [`synthetic_genome`] but with an explicit number of structural
/// mutation rounds. `0` keeps the exact two-level shape (`hidden_nodes`
/// wide hidden level, `num_outputs` wide output level) — the fixed
/// geometry the paper's PE-alignment study assumes.
pub fn synthetic_genome_with_mutations(
    num_inputs: usize,
    num_outputs: usize,
    hidden_nodes: usize,
    density: f64,
    mutation_rounds: usize,
    seed: u64,
) -> Genome {
    let config = NeatConfig::builder(num_inputs, num_outputs)
        .initial_hidden_nodes(hidden_nodes)
        .initial_connection_density(density)
        .build();
    let mut tracker = InnovationTracker::with_reserved_nodes(num_inputs + num_outputs);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut genome = Genome::initial(&config, &mut tracker, &mut rng);
    for _ in 0..mutation_rounds {
        genome.mutate_add_node(&config, &mut tracker, &mut rng);
        genome.mutate_add_connection(&config, &mut tracker, &mut rng);
    }
    genome
}

/// Population variant of [`synthetic_genome_with_mutations`], compiled
/// for the accelerator.
pub fn synthetic_population_with_mutations(
    count: usize,
    num_inputs: usize,
    num_outputs: usize,
    hidden_nodes: usize,
    density: f64,
    mutation_rounds: usize,
    seed: u64,
) -> Vec<IrregularNet> {
    (0..count)
        .map(|i| {
            let genome = synthetic_genome_with_mutations(
                num_inputs,
                num_outputs,
                hidden_nodes,
                density,
                mutation_rounds,
                seed ^ (i as u64 * 97),
            );
            IrregularNet::from_network(&genome.decode().expect("feed-forward by construction"))
        })
        .collect()
}

/// Builds a population of synthetic networks with per-individual
/// structural variance (different seeds ⇒ different topologies, like a
/// real NEAT generation).
pub fn synthetic_population(
    count: usize,
    num_inputs: usize,
    num_outputs: usize,
    hidden_nodes: usize,
    density: f64,
    seed: u64,
) -> Vec<IrregularNet> {
    (0..count)
        .map(|i| {
            synthetic_net(
                num_inputs,
                num_outputs,
                hidden_nodes,
                density,
                seed ^ (i as u64 * 97),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_request() {
        let net = synthetic_net(8, 4, 30, 0.2, 1);
        assert_eq!(net.num_inputs(), 8);
        assert_eq!(net.num_outputs(), 4);
        assert!(
            net.num_compute_nodes() >= 34,
            "30 hidden + 4 outputs + splits"
        );
    }

    #[test]
    fn density_controls_connection_count() {
        let sparse = synthetic_net(8, 4, 30, 0.1, 2);
        let dense = synthetic_net(8, 4, 30, 0.9, 2);
        assert!(dense.num_connections() > 2 * sparse.num_connections());
    }

    #[test]
    fn population_members_differ() {
        let pop = synthetic_population(5, 8, 4, 30, 0.2, 3);
        assert_eq!(pop.len(), 5);
        let first_conns = pop[0].num_connections();
        assert!(
            pop.iter().any(|n| n.num_connections() != first_conns),
            "individuals should vary structurally"
        );
    }

    #[test]
    fn nets_have_multiple_levels() {
        let net = synthetic_net(8, 4, 30, 0.2, 4);
        assert!(net.levels().len() >= 2, "mutations should deepen the net");
    }
}
