//! Processing Unit: one individual's network on a cluster of PEs.
//!
//! A PU owns the full "evaluate" of one individual (paper §IV-D): its
//! weight buffer holds the network configuration for the whole episode
//! (networks are reused across env steps, so weights are worth keeping
//! local), its value buffer holds **all** intermediate activations
//! (irregular links may read any earlier node), and its PE cluster
//! computes each topological level in waves of `num_pe` nodes.
//!
//! The inference schedule is input-independent — INAX does not gate on
//! activation values — so the cycle profile is computed once per
//! network and reused every step.

use crate::config::{Dataflow, InaxConfig};
use crate::net::IrregularNet;
use crate::pe::node_cycles;
use crate::profile::{CycleBreakdown, UtilizationReport};
use serde::{Deserialize, Serialize};

/// Cycle profile of one inference pass on one PU.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PuInferenceProfile {
    /// Wall cycles the PU is busy for one inference.
    pub wall_cycles: u64,
    /// Useful PE cycles (summed over PEs).
    pub pe_active_cycles: u64,
    /// Provisioned PE cycles: `wall_cycles × num_pe`.
    pub pe_total_cycles: u64,
    /// Number of PE waves launched.
    pub waves: u64,
}

impl PuInferenceProfile {
    /// PE utilization for this inference (paper Eq. 1 at PE scope).
    pub fn pe_utilization(&self) -> UtilizationReport {
        UtilizationReport {
            active: self.pe_active_cycles,
            total: self.pe_total_cycles,
        }
    }

    /// Control (non-useful) cycles: idle PEs + wave/sync overheads.
    pub fn control_cycles(&self) -> u64 {
        self.pe_total_cycles - self.pe_active_cycles
    }

    /// Total cycles accounted to the PU for this inference.
    pub fn total_cycles(&self) -> u64 {
        self.wall_cycles
    }
}

/// A simulated Processing Unit holding one compiled network.
///
/// # Example
///
/// ```
/// use e3_inax::{InaxConfig, IrregularNet, PuSim};
/// use e3_neat::{Genome, InnovationTracker};
///
/// let mut tracker = InnovationTracker::with_reserved_nodes(4);
/// let mut genome = Genome::bare(3, 1);
/// genome.add_connection(0, 3, 1.0, &mut tracker)?;
/// genome.add_connection(1, 3, 1.0, &mut tracker)?;
/// let net = IrregularNet::try_from(&genome)?;
/// let mut pu = PuSim::new(&InaxConfig::builder().num_pe(2).build(), net);
/// let (out, profile) = pu.infer(&[1.0, 2.0, 3.0]);
/// assert_eq!(out.len(), 1);
/// assert_eq!(profile.waves, 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct PuSim {
    config: InaxConfig,
    net: IrregularNet,
    value_buffer: Vec<f64>,
    profile: PuInferenceProfile,
    per_pe_active: Vec<u64>,
    setup_cycles: u64,
}

impl PuSim {
    /// Creates a PU with `net` resident (the set-up phase cost is
    /// recorded in [`PuSim::setup_cycles`]).
    pub fn new(config: &InaxConfig, net: IrregularNet) -> Self {
        let detailed = schedule_inference_detailed(config, &net);
        let setup_cycles = net.num_connections() as u64 * config.setup_cycles_per_connection
            + net.num_compute_nodes() as u64 * config.setup_cycles_per_node;
        PuSim {
            config: config.clone(),
            value_buffer: vec![0.0; net.value_buffer_slots()],
            net,
            profile: detailed.profile,
            per_pe_active: detailed.per_pe_active,
            setup_cycles,
        }
    }

    /// The resident network.
    pub fn net(&self) -> &IrregularNet {
        &self.net
    }

    /// Cycles the set-up phase (weight-channel decode) took.
    pub fn setup_cycles(&self) -> u64 {
        self.setup_cycles
    }

    /// Cycle profile of one inference (input-independent).
    pub fn inference_profile(&self) -> PuInferenceProfile {
        self.profile
    }

    /// Active cycles of each PE lane for one inference; sums to
    /// [`PuInferenceProfile::pe_active_cycles`].
    pub fn per_pe_active(&self) -> &[u64] {
        &self.per_pe_active
    }

    /// Runs one inference: returns the outputs (bit-identical to the
    /// software reference) and the cycle profile.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the network's input count.
    pub fn infer(&mut self, inputs: &[f64]) -> (Vec<f64>, PuInferenceProfile) {
        let outputs = self.net.evaluate_into(inputs, &mut self.value_buffer);
        (outputs, self.profile)
    }

    /// Full-phase breakdown for `steps` inferences including the
    /// one-time set-up (Fig. 9(a) categories).
    pub fn episode_breakdown(&self, steps: u64) -> CycleBreakdown {
        CycleBreakdown {
            setup: self.setup_cycles,
            pe_active: self.profile.pe_active_cycles * steps,
            evaluate_control: self.profile.control_cycles() * steps,
        }
    }

    /// The configuration this PU was built with.
    pub fn config(&self) -> &InaxConfig {
        &self.config
    }
}

/// Computes the inference schedule of `net` on a PE cluster (the heart
/// of the INAX timing model).
///
/// For every topological level with `m` nodes and `n` PEs the level is
/// executed in `⌈m/n⌉` waves (paper §V-A issue 2, "PEs alignment").
/// Within a wave each PE computes one node; the wave's latency is the
/// **maximum** node latency (issue 3, "synchronization"), so degree
/// variance shows up as idle PE cycles. A level barrier and per-wave
/// launch overhead are charged on top.
pub fn schedule_inference(config: &InaxConfig, net: &IrregularNet) -> PuInferenceProfile {
    schedule_inference_detailed(config, net).profile
}

/// [`schedule_inference`] plus the per-PE-lane activity it implies.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DetailedInferenceProfile {
    /// The aggregate profile (what [`schedule_inference`] returns).
    pub profile: PuInferenceProfile,
    /// Active cycles of each PE lane (`num_pe` entries); lane `j`
    /// computes the `j`-th node of every wave. Sums to
    /// `profile.pe_active_cycles`.
    pub per_pe_active: Vec<u64>,
}

/// Computes the inference schedule with per-PE-lane cycle attribution:
/// within each wave, chunk position `j` is executed by PE lane `j`, so
/// lane occupancy skew (degree variance, ragged last waves) is visible
/// per lane instead of only as an aggregate idle total.
pub fn schedule_inference_detailed(
    config: &InaxConfig,
    net: &IrregularNet,
) -> DetailedInferenceProfile {
    let n = config.num_pe.max(1);
    let mut wall = 0u64;
    let mut active = 0u64;
    let mut waves = 0u64;
    let mut per_pe_active = vec![0u64; n];
    match config.dataflow {
        Dataflow::OutputStationary | Dataflow::WeightStationary => {
            // WS differs only in the per-node cost: with zero weight
            // reuse in an MLP, pinned weights must still be refetched
            // every MAC, doubling the MAC occupancy.
            let penalty = if config.dataflow == Dataflow::WeightStationary {
                2
            } else {
                1
            };
            for &(start, end) in net.levels() {
                for wave in net.nodes()[start..end].chunks(n) {
                    let mut wave_max = 0u64;
                    for (lane, node) in wave.iter().enumerate() {
                        let c = node_cycles(config, node) * penalty;
                        active += c;
                        per_pe_active[lane] += c;
                        wave_max = wave_max.max(c);
                    }
                    wall += wave_max + config.wave_overhead_cycles;
                    waves += 1;
                }
                wall += config.level_sync_cycles;
            }
        }
        Dataflow::InputStationary => {
            // A PE pins one value-buffer slot and walks its egress
            // list; a final pass applies the activations. Egress lists
            // are derived from the ingress lists.
            let slots = net.value_buffer_slots();
            let mut egress = vec![0u64; slots];
            for node in net.nodes() {
                for &(slot, _) in &node.ingress {
                    egress[slot] += config.mac_cycles;
                }
            }
            for wave in egress.chunks(n) {
                let wave_max = wave.iter().copied().max().unwrap_or(0);
                if wave_max == 0 {
                    continue;
                }
                for (lane, &c) in wave.iter().enumerate() {
                    active += c;
                    per_pe_active[lane] += c;
                }
                wall += wave_max + config.wave_overhead_cycles;
                waves += 1;
            }
            // Activation pass over compute nodes.
            for wave in net.nodes().chunks(n) {
                for lane_active in per_pe_active.iter_mut().take(wave.len()) {
                    active += config.activation_cycles;
                    *lane_active += config.activation_cycles;
                }
                wall += config.activation_cycles + config.wave_overhead_cycles;
                waves += 1;
            }
            wall += config.level_sync_cycles;
        }
    }
    DetailedInferenceProfile {
        profile: PuInferenceProfile {
            wall_cycles: wall,
            pe_active_cycles: active,
            pe_total_cycles: wall * n as u64,
            waves,
        },
        per_pe_active,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::synthetic_net;
    use e3_neat::{Genome, InnovationTracker};

    fn two_level_net() -> IrregularNet {
        // 2 inputs; hidden level of 3 nodes (via splits); output.
        let mut tracker = InnovationTracker::with_reserved_nodes(3);
        let mut g = Genome::bare(2, 1);
        let i1 = g.add_connection(0, 2, 1.0, &mut tracker).unwrap();
        let h1 = g
            .split_connection(i1, e3_neat::Activation::Relu, &mut tracker)
            .unwrap();
        let i2 = g.add_connection(1, 2, 1.0, &mut tracker).unwrap();
        let h2 = g
            .split_connection(i2, e3_neat::Activation::Relu, &mut tracker)
            .unwrap();
        let i3 = g.connection_between(0, h1).unwrap().innovation;
        let _ = i3;
        g.add_connection(1, h1, 0.5, &mut tracker).unwrap();
        g.add_connection(0, h2, 0.5, &mut tracker).unwrap();
        IrregularNet::try_from(&g).unwrap()
    }

    #[test]
    fn single_pe_has_full_utilization_modulo_overhead() {
        let config = InaxConfig::builder()
            .num_pe(1)
            .wave_overhead_cycles(0)
            .build();
        let mut config = config;
        config.level_sync_cycles = 0;
        let net = two_level_net();
        let p = schedule_inference(&config, &net);
        assert_eq!(p.pe_active_cycles, p.pe_total_cycles, "1 PE never idles");
        assert!((p.pe_utilization().rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hand_computed_schedule_matches() {
        // two_level_net: hidden level = [h1 (deg 2), h2 (deg 2)],
        // output level = [out (deg 2)].
        let net = two_level_net();
        assert_eq!(net.levels().len(), 2);
        let mut config = InaxConfig::builder().num_pe(2).build();
        config.wave_overhead_cycles = 0;
        config.level_sync_cycles = 0;
        let p = schedule_inference(&config, &net);
        // Wave 1: h1,h2 in parallel: max(2*1+2)=4. Wave 2: out: 4.
        assert_eq!(p.waves, 2);
        assert_eq!(p.wall_cycles, 8);
        assert_eq!(p.pe_active_cycles, 12); // 4 + 4 + 4
        assert_eq!(p.pe_total_cycles, 16);
        assert!((p.pe_utilization().rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn more_pes_reduce_wall_cycles_but_not_below_critical_path() {
        let net = synthetic_net(8, 4, 30, 0.2, 5);
        let mut prev_wall = u64::MAX;
        for num_pe in [1, 2, 4, 8, 16] {
            let config = InaxConfig::builder().num_pe(num_pe).build();
            let p = schedule_inference(&config, &net);
            assert!(p.wall_cycles <= prev_wall, "wall time is monotone in PEs");
            prev_wall = p.wall_cycles;
        }
    }

    #[test]
    fn utilization_degrades_with_overprovisioned_pes() {
        let net = synthetic_net(8, 4, 30, 0.2, 5);
        let u1 = schedule_inference(&InaxConfig::builder().num_pe(1).build(), &net)
            .pe_utilization()
            .rate();
        let u64_ = schedule_inference(&InaxConfig::builder().num_pe(64).build(), &net)
            .pe_utilization()
            .rate();
        assert!(
            u1 > u64_,
            "64 PEs must idle more than 1 PE ({u1} vs {u64_})"
        );
    }

    #[test]
    fn weight_stationary_is_slower_than_output_stationary() {
        let net = synthetic_net(8, 4, 30, 0.2, 7);
        let os = schedule_inference(
            &InaxConfig::builder()
                .num_pe(4)
                .dataflow(Dataflow::OutputStationary)
                .build(),
            &net,
        );
        let ws = schedule_inference(
            &InaxConfig::builder()
                .num_pe(4)
                .dataflow(Dataflow::WeightStationary)
                .build(),
            &net,
        );
        assert!(ws.wall_cycles > os.wall_cycles);
    }

    #[test]
    fn input_stationary_schedules_all_macs() {
        let net = two_level_net();
        let config = InaxConfig::builder()
            .num_pe(2)
            .dataflow(Dataflow::InputStationary)
            .build();
        let p = schedule_inference(&config, &net);
        // All 6 MAC cycles + 3 activations appear as active work.
        assert_eq!(p.pe_active_cycles, 6 + 3 * config.activation_cycles);
    }

    #[test]
    fn per_lane_activity_sums_to_aggregate_for_every_dataflow() {
        let net = synthetic_net(8, 4, 30, 0.2, 11);
        for dataflow in [
            Dataflow::OutputStationary,
            Dataflow::WeightStationary,
            Dataflow::InputStationary,
        ] {
            for num_pe in [1, 3, 8] {
                let config = InaxConfig::builder()
                    .num_pe(num_pe)
                    .dataflow(dataflow)
                    .build();
                let detailed = schedule_inference_detailed(&config, &net);
                assert_eq!(detailed.per_pe_active.len(), num_pe);
                assert_eq!(
                    detailed.per_pe_active.iter().sum::<u64>(),
                    detailed.profile.pe_active_cycles,
                    "{dataflow:?} with {num_pe} PEs"
                );
                // Chunks fill from lane 0, so lane 0 works whenever
                // any lane does.
                if detailed.profile.pe_active_cycles > 0 {
                    assert!(detailed.per_pe_active[0] > 0);
                }
                assert_eq!(
                    detailed.profile,
                    schedule_inference(&config, &net),
                    "the aggregate schedule is the detailed one's summary"
                );
            }
        }
    }

    #[test]
    fn pu_inference_is_functional_and_profiled() {
        let net = two_level_net();
        let expected = net.evaluate(&[0.5, -0.5]);
        let mut pu = PuSim::new(&InaxConfig::builder().num_pe(2).build(), net);
        let (out, profile) = pu.infer(&[0.5, -0.5]);
        assert_eq!(out, expected);
        assert!(profile.wall_cycles > 0);
        assert!(pu.setup_cycles() > 0);
    }

    #[test]
    fn episode_breakdown_scales_compute_not_setup() {
        let net = two_level_net();
        let pu = PuSim::new(&InaxConfig::default(), net);
        let b1 = pu.episode_breakdown(1);
        let b10 = pu.episode_breakdown(10);
        assert_eq!(b1.setup, b10.setup, "set-up happens once per episode");
        assert_eq!(b10.pe_active, 10 * b1.pe_active);
    }
}
