//! Cycle accounting: the paper's runtime breakdown (Fig. 9(a)) and
//! utilization metric `U(r) = T_active(r) / T_total(r)` (Eq. 1).

use serde::{Deserialize, Serialize};
use std::ops::AddAssign;

/// Breakdown of accelerator cycles into the phases of Fig. 9(a):
/// set-up (weight-channel decode), PE-active (useful MAC/activation
/// work), and evaluate-control (PE under-utilization plus pipeline,
/// sync and value-buffer overheads).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CycleBreakdown {
    /// Set-up phase cycles (decoding NN configurations into the weight
    /// buffer).
    pub setup: u64,
    /// Cycles in which PEs performed useful work, summed over PEs.
    pub pe_active: u64,
    /// Everything else charged to compute-phase resources: idle PE
    /// cycles from `⌈m/n⌉` rounding and degree variance, wave launch,
    /// barriers.
    pub evaluate_control: u64,
}

impl CycleBreakdown {
    /// Total accounted cycles.
    pub fn total_cycles(&self) -> u64 {
        self.setup + self.pe_active + self.evaluate_control
    }

    /// Fraction of total cycles in each phase, `(setup, active,
    /// control)`. Returns zeros for an empty breakdown.
    pub fn fractions(&self) -> (f64, f64, f64) {
        let total = self.total_cycles();
        if total == 0 {
            return (0.0, 0.0, 0.0);
        }
        let t = total as f64;
        (
            self.setup as f64 / t,
            self.pe_active as f64 / t,
            self.evaluate_control as f64 / t,
        )
    }
}

impl AddAssign for CycleBreakdown {
    fn add_assign(&mut self, rhs: Self) {
        self.setup += rhs.setup;
        self.pe_active += rhs.pe_active;
        self.evaluate_control += rhs.evaluate_control;
    }
}

/// Utilization of a resource pool: `U(r) = T_active(r) / T_total(r)`
/// where `T_total` is resource-count × occupied time and `T_active`
/// the busy portion (paper Eq. 1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct UtilizationReport {
    /// Busy resource-cycles.
    pub active: u64,
    /// Provisioned resource-cycles (count × wall cycles).
    pub total: u64,
}

impl UtilizationReport {
    /// The utilization rate in `[0, 1]` (1.0 when nothing was
    /// provisioned).
    pub fn rate(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.active as f64 / self.total as f64
        }
    }

    /// Merges another report into this one.
    pub fn merge(&mut self, other: UtilizationReport) {
        self.active += other.active;
        self.total += other.total;
    }
}

/// Where one PU's cycles went over a run.
///
/// The three states partition every accelerator wall cycle:
/// **busy** (computing its own decode or inference waves), **idle**
/// (no resident individual, a dead episode, or waiting at a wave
/// barrier for slower PUs), and **stall** (blocked on shared
/// resources: the weight channel while other PUs decode, and DMA
/// transfers). `busy + idle + stall` equals the accelerator's total
/// wall cycles for every PU.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PuCycles {
    /// Cycles spent computing (own decode + own inference waves).
    pub busy: u64,
    /// Cycles with nothing to do (empty, dead, or barrier lag).
    pub idle: u64,
    /// Cycles blocked on shared resources (peer decode, DMA).
    pub stall: u64,
}

impl PuCycles {
    /// Total accounted cycles.
    pub fn total(&self) -> u64 {
        self.busy + self.idle + self.stall
    }
}

/// Where one PE lane's cycles went while its PU was busy inferring.
///
/// Lane accounting is PU-scoped: a lane is **busy** for the cycles its
/// node assignments take and **idle** for the rest of its PU's
/// inference wall time (short waves, degree variance, level syncs).
/// Cycles where the whole PU idles or stalls are charged to the PU,
/// not its lanes, so `Σ busy` over lanes equals the aggregate
/// `pe_active` breakdown counter exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeLaneCycles {
    /// Cycles spent on MACs and activations.
    pub busy: u64,
    /// Cycles idled within the PU's inference wall time.
    pub idle: u64,
}

/// Cycle-level utilization accounting for a whole accelerator run:
/// per-PU busy/idle/stall, per-PE-lane busy/idle (aggregated over
/// PUs), buffer high-water marks, and DMA traffic.
///
/// Mergeable in wave order exactly like
/// [`crate::EpisodeRunReport::merge`]: cycle vectors add elementwise,
/// high-water marks take the max, DMA bytes add — so per-wave
/// breakdowns from independent accelerator instances reduce to the
/// accounting a single accelerator would produce.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct UtilizationBreakdown {
    /// Per-PU cycle states, indexed by PU.
    pub per_pu: Vec<PuCycles>,
    /// Per-PE-lane cycle states, aggregated across PUs.
    pub per_pe: Vec<PeLaneCycles>,
    /// Largest weight-stream footprint loaded onto any PU, in bytes.
    pub weight_buffer_hwm_bytes: u64,
    /// Largest value-buffer occupancy on any PU, in slots.
    pub value_buffer_hwm_slots: u64,
    /// Total bytes moved over the DMA channels.
    pub dma_bytes: u64,
}

impl UtilizationBreakdown {
    /// An all-zero breakdown for a cluster of `num_pu` PUs with
    /// `num_pe` PE lanes each.
    pub fn new(num_pu: usize, num_pe: usize) -> Self {
        UtilizationBreakdown {
            per_pu: vec![PuCycles::default(); num_pu],
            per_pe: vec![PeLaneCycles::default(); num_pe],
            ..UtilizationBreakdown::default()
        }
    }

    /// Accumulates another breakdown (see the type docs for the merge
    /// semantics). Shorter cycle vectors are widened, so merging into
    /// a default-constructed breakdown is the identity.
    pub fn merge(&mut self, other: &UtilizationBreakdown) {
        if self.per_pu.len() < other.per_pu.len() {
            self.per_pu.resize(other.per_pu.len(), PuCycles::default());
        }
        for (mine, theirs) in self.per_pu.iter_mut().zip(&other.per_pu) {
            mine.busy += theirs.busy;
            mine.idle += theirs.idle;
            mine.stall += theirs.stall;
        }
        if self.per_pe.len() < other.per_pe.len() {
            self.per_pe
                .resize(other.per_pe.len(), PeLaneCycles::default());
        }
        for (mine, theirs) in self.per_pe.iter_mut().zip(&other.per_pe) {
            mine.busy += theirs.busy;
            mine.idle += theirs.idle;
        }
        self.weight_buffer_hwm_bytes = self
            .weight_buffer_hwm_bytes
            .max(other.weight_buffer_hwm_bytes);
        self.value_buffer_hwm_slots = self
            .value_buffer_hwm_slots
            .max(other.value_buffer_hwm_slots);
        self.dma_bytes += other.dma_bytes;
    }

    /// Flattens into the plain telemetry record, stamping the backend
    /// and environment names and the aggregate cycle total the per-PU
    /// rows reconcile against.
    pub fn to_telemetry(
        &self,
        backend: &str,
        env: &str,
        total_cycles: u64,
    ) -> e3_telemetry::UtilizationReport {
        e3_telemetry::UtilizationReport {
            backend: backend.to_string(),
            env: env.to_string(),
            num_pu: self.per_pu.len(),
            num_pe: self.per_pe.len(),
            per_pu: self
                .per_pu
                .iter()
                .enumerate()
                .map(|(pu, c)| e3_telemetry::PuCycleRow {
                    pu,
                    busy_cycles: c.busy,
                    idle_cycles: c.idle,
                    stall_cycles: c.stall,
                })
                .collect(),
            per_pe: self
                .per_pe
                .iter()
                .enumerate()
                .map(|(pe, c)| e3_telemetry::PeCycleRow {
                    pe,
                    busy_cycles: c.busy,
                    idle_cycles: c.idle,
                })
                .collect(),
            weight_buffer_hwm_bytes: self.weight_buffer_hwm_bytes,
            value_buffer_hwm_slots: self.value_buffer_hwm_slots,
            dma_bytes: self.dma_bytes,
            total_cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_sum_to_one() {
        let b = CycleBreakdown {
            setup: 10,
            pe_active: 70,
            evaluate_control: 20,
        };
        let (s, a, c) = b.fractions();
        assert!((s + a + c - 1.0).abs() < 1e-12);
        assert!((a - 0.7).abs() < 1e-12);
    }

    #[test]
    fn empty_breakdown_has_zero_fractions() {
        assert_eq!(CycleBreakdown::default().fractions(), (0.0, 0.0, 0.0));
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = CycleBreakdown {
            setup: 1,
            pe_active: 2,
            evaluate_control: 3,
        };
        a += CycleBreakdown {
            setup: 10,
            pe_active: 20,
            evaluate_control: 30,
        };
        assert_eq!(a.total_cycles(), 66);
    }

    #[test]
    fn utilization_rate_bounds() {
        let u = UtilizationReport {
            active: 30,
            total: 40,
        };
        assert!((u.rate() - 0.75).abs() < 1e-12);
        assert_eq!(UtilizationReport::default().rate(), 1.0);
    }

    #[test]
    fn breakdown_merge_is_elementwise_with_max_hwm() {
        let mut a = UtilizationBreakdown::new(2, 2);
        a.per_pu[0].busy = 10;
        a.per_pu[1].idle = 5;
        a.per_pe[0].busy = 7;
        a.weight_buffer_hwm_bytes = 100;
        a.dma_bytes = 40;
        let mut b = UtilizationBreakdown::new(2, 2);
        b.per_pu[0].stall = 3;
        b.per_pe[1].idle = 2;
        b.weight_buffer_hwm_bytes = 60;
        b.dma_bytes = 10;
        a.merge(&b);
        assert_eq!(a.per_pu[0].busy, 10);
        assert_eq!(a.per_pu[0].stall, 3);
        assert_eq!(a.per_pe[1].idle, 2);
        assert_eq!(a.weight_buffer_hwm_bytes, 100, "HWMs take the max");
        assert_eq!(a.dma_bytes, 50, "bytes add");

        let mut empty = UtilizationBreakdown::default();
        empty.merge(&a);
        assert_eq!(empty, a, "merging into default is the identity");
    }

    #[test]
    fn breakdown_flattens_to_telemetry_rows() {
        let mut b = UtilizationBreakdown::new(1, 2);
        b.per_pu[0] = PuCycles {
            busy: 8,
            idle: 1,
            stall: 1,
        };
        b.per_pe[0].busy = 5;
        b.per_pe[1].busy = 3;
        let report = b.to_telemetry("E3-INAX", "cartpole", 10);
        assert_eq!(report.num_pu, 1);
        assert_eq!(report.num_pe, 2);
        assert_eq!(report.per_pu[0].total_cycles(), report.total_cycles);
        assert_eq!(report.per_pe[1].busy_cycles, 3);
        assert_eq!(report.env, "cartpole");
    }

    #[test]
    fn merge_accumulates_both_fields() {
        let mut u = UtilizationReport {
            active: 1,
            total: 2,
        };
        u.merge(UtilizationReport {
            active: 3,
            total: 6,
        });
        assert_eq!(
            u,
            UtilizationReport {
                active: 4,
                total: 8
            }
        );
    }
}
