//! Cycle accounting: the paper's runtime breakdown (Fig. 9(a)) and
//! utilization metric `U(r) = T_active(r) / T_total(r)` (Eq. 1).

use serde::{Deserialize, Serialize};
use std::ops::AddAssign;

/// Breakdown of accelerator cycles into the phases of Fig. 9(a):
/// set-up (weight-channel decode), PE-active (useful MAC/activation
/// work), and evaluate-control (PE under-utilization plus pipeline,
/// sync and value-buffer overheads).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CycleBreakdown {
    /// Set-up phase cycles (decoding NN configurations into the weight
    /// buffer).
    pub setup: u64,
    /// Cycles in which PEs performed useful work, summed over PEs.
    pub pe_active: u64,
    /// Everything else charged to compute-phase resources: idle PE
    /// cycles from `⌈m/n⌉` rounding and degree variance, wave launch,
    /// barriers.
    pub evaluate_control: u64,
}

impl CycleBreakdown {
    /// Total accounted cycles.
    pub fn total_cycles(&self) -> u64 {
        self.setup + self.pe_active + self.evaluate_control
    }

    /// Fraction of total cycles in each phase, `(setup, active,
    /// control)`. Returns zeros for an empty breakdown.
    pub fn fractions(&self) -> (f64, f64, f64) {
        let total = self.total_cycles();
        if total == 0 {
            return (0.0, 0.0, 0.0);
        }
        let t = total as f64;
        (
            self.setup as f64 / t,
            self.pe_active as f64 / t,
            self.evaluate_control as f64 / t,
        )
    }
}

impl AddAssign for CycleBreakdown {
    fn add_assign(&mut self, rhs: Self) {
        self.setup += rhs.setup;
        self.pe_active += rhs.pe_active;
        self.evaluate_control += rhs.evaluate_control;
    }
}

/// Utilization of a resource pool: `U(r) = T_active(r) / T_total(r)`
/// where `T_total` is resource-count × occupied time and `T_active`
/// the busy portion (paper Eq. 1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct UtilizationReport {
    /// Busy resource-cycles.
    pub active: u64,
    /// Provisioned resource-cycles (count × wall cycles).
    pub total: u64,
}

impl UtilizationReport {
    /// The utilization rate in `[0, 1]` (1.0 when nothing was
    /// provisioned).
    pub fn rate(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.active as f64 / self.total as f64
        }
    }

    /// Merges another report into this one.
    pub fn merge(&mut self, other: UtilizationReport) {
        self.active += other.active;
        self.total += other.total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_sum_to_one() {
        let b = CycleBreakdown {
            setup: 10,
            pe_active: 70,
            evaluate_control: 20,
        };
        let (s, a, c) = b.fractions();
        assert!((s + a + c - 1.0).abs() < 1e-12);
        assert!((a - 0.7).abs() < 1e-12);
    }

    #[test]
    fn empty_breakdown_has_zero_fractions() {
        assert_eq!(CycleBreakdown::default().fractions(), (0.0, 0.0, 0.0));
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = CycleBreakdown {
            setup: 1,
            pe_active: 2,
            evaluate_control: 3,
        };
        a += CycleBreakdown {
            setup: 10,
            pe_active: 20,
            evaluate_control: 30,
        };
        assert_eq!(a.total_cycles(), 66);
    }

    #[test]
    fn utilization_rate_bounds() {
        let u = UtilizationReport {
            active: 30,
            total: 40,
        };
        assert!((u.rate() - 0.75).abs() < 1e-12);
        assert_eq!(UtilizationReport::default().rate(), 1.0);
    }

    #[test]
    fn merge_accumulates_both_fields() {
        let mut u = UtilizationReport {
            active: 1,
            total: 2,
        };
        u.merge(UtilizationReport {
            active: 3,
            total: 6,
        });
        assert_eq!(
            u,
            UtilizationReport {
                active: 4,
                total: 8
            }
        );
    }
}
