//! # e3-inax — cycle-level simulator of the INAX accelerator
//!
//! INAX (Irregular Network Accelerator) is the E3 paper's hardware
//! contribution: an FPGA accelerator for the irregular feed-forward
//! networks that NEAT evolves. This crate is a deterministic
//! **cycle-level simulator** of INAX (the reproduction's substitute for
//! the Xilinx ZCU104 prototype — see DESIGN.md):
//!
//! * a [`pe`] (Processing Element) computes one node end-to-end with an
//!   **output-stationary** dataflow: it accumulates the node's MACs
//!   locally, adds the bias, applies the activation, and writes the
//!   result into the PU's value buffer;
//! * a [`PuSim`] (Processing Unit) owns one individual's network and a
//!   cluster of PEs: each topological *level* of the network is split
//!   into `⌈m/n⌉` waves across `n` PEs, with a synchronization barrier
//!   per wave (variable node in-degree ⇒ variable PE time ⇒ idle PEs,
//!   paper §V-A);
//! * an [`InaxAccelerator`] owns a cluster of PUs: the population is
//!   dispatched in batches of `num_pu` individuals, exploiting
//!   population-level parallelism (paper §V-B), with utilization
//!   accounting `U(r) = T_active(r) / T_total(r)` for both resource
//!   levels.
//!
//! The simulator is *functional* as well as timed: it computes exactly
//! the same outputs as the software reference
//! ([`e3_neat::Network::activate`]), which the property tests verify.
//!
//! ## Example
//!
//! ```
//! use e3_inax::{InaxConfig, PuSim, IrregularNet};
//! use e3_neat::{Genome, InnovationTracker};
//!
//! let mut tracker = InnovationTracker::with_reserved_nodes(3);
//! let mut genome = Genome::bare(2, 1);
//! genome.add_connection(0, 2, 0.5, &mut tracker)?;
//! let net = IrregularNet::try_from(&genome)?;
//! let config = InaxConfig::builder().num_pe(4).build();
//! let mut pu = PuSim::new(&config, net);
//! let (outputs, profile) = pu.infer(&[1.0, 0.0]);
//! assert_eq!(outputs.len(), 1);
//! assert!(profile.total_cycles() > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cluster;
pub mod config;
pub mod dma;
pub mod fpga_cost;
pub mod net;
pub mod pe;
pub mod pipeline;
pub mod profile;
pub mod pu;
pub mod quant;
pub mod sparsity;
pub mod synthetic;
pub mod trace;

pub use cluster::{EpisodeRunReport, InaxAccelerator};
pub use config::{Dataflow, InaxConfig, InaxConfigBuilder};
pub use dma::{DmaModel, DmaTraffic};
pub use net::IrregularNet;
pub use pipeline::{analyze_double_buffering, BatchWork, PipelineReport};
pub use profile::{
    CycleBreakdown, PeLaneCycles, PuCycles, UtilizationBreakdown, UtilizationReport,
};
pub use pu::{
    schedule_inference, schedule_inference_detailed, DetailedInferenceProfile, PuInferenceProfile,
    PuSim,
};
pub use quant::FixedPointFormat;
pub use sparsity::SparsityReport;
pub use trace::{trace_inference, InferenceTrace};
