//! Shared FPGA area-cost constants used by simulator extensions.
//!
//! The platform crate's resource model owns the full per-block
//! breakdown; the constants here are the ones simulator-side features
//! need to report their own area cost.

/// Extra 36Kb BRAM banks one PU's second (double-buffer) weight buffer
/// costs.
pub const DOUBLE_BUFFER_BRAM_PER_PU: u64 = 2;
