//! INAX hardware configuration: PU/PE counts, per-operation cycle
//! costs, and the clock used to convert cycles to time.

use serde::{Deserialize, Serialize};

/// The dataflow a PE cluster uses (paper §IV-E discusses why INAX
/// chooses output-stationary; the alternatives are modelled for the
/// ablation benches).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Dataflow {
    /// Output stationary: a PE owns one output node end-to-end,
    /// accumulating partial sums locally. INAX's choice — resource
    /// provisioning is independent of fan-out.
    #[default]
    OutputStationary,
    /// Input stationary: a PE holds one input value and scatters
    /// partial sums to per-egress accumulators. Requires worst-case
    /// egress provisioning for irregular nets (paper: HW-unfriendly).
    InputStationary,
    /// Weight stationary: weights pinned in PEs. MLPs have no weight
    /// reuse within an inference, so this wastes the pinning (paper:
    /// not effective).
    WeightStationary,
}

/// Hardware configuration of one INAX instance.
///
/// Cycle costs are normalized to a MAC = 1 cycle, matching the
/// PE-pipeline description of the paper (DSP MAC + activation unit,
/// pipelined). Defaults follow the paper's microbenchmark setup
/// (footnote 3: `num PU: 1, num PE: 1`).
///
/// # Example
///
/// ```
/// use e3_inax::InaxConfig;
///
/// let config = InaxConfig::builder().num_pu(50).num_pe(4).build();
/// assert_eq!(config.num_pu, 50);
/// assert_eq!(config.num_pe, 4);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InaxConfig {
    /// Number of Processing Units (population-level parallelism).
    pub num_pu: usize,
    /// Number of Processing Elements per PU (node-level parallelism).
    pub num_pe: usize,
    /// Accelerator clock in Hz (ZCU104-class designs run a few hundred
    /// MHz; we use 200 MHz).
    pub clock_hz: f64,
    /// Cycles per multiply-accumulate (one ingress connection).
    pub mac_cycles: u64,
    /// Pipeline cycles to apply bias + activation and commit the node's
    /// value to the value buffer.
    pub activation_cycles: u64,
    /// Control cycles to launch one wave of PEs (operand fetch from the
    /// value buffer, PE dispatch).
    pub wave_overhead_cycles: u64,
    /// Control cycles for the per-level synchronization barrier.
    pub level_sync_cycles: u64,
    /// Set-up phase: cycles to decode and store one connection
    /// (weight-buffer write).
    pub setup_cycles_per_connection: u64,
    /// Set-up phase: cycles to decode and store one node descriptor
    /// (bias, activation selector, topology entry).
    pub setup_cycles_per_node: u64,
    /// Dataflow variant (ablation knob; INAX = output stationary).
    pub dataflow: Dataflow,
    /// DMA model parameters.
    pub dma_bytes_per_cycle: u64,
    /// Fixed DMA transaction latency in cycles (per transfer).
    pub dma_latency_cycles: u64,
}

impl InaxConfig {
    /// Starts a builder with the paper's default microbenchmark
    /// configuration.
    pub fn builder() -> InaxConfigBuilder {
        InaxConfigBuilder {
            config: InaxConfig {
                num_pu: 1,
                num_pe: 1,
                clock_hz: 200.0e6,
                mac_cycles: 1,
                activation_cycles: 2,
                wave_overhead_cycles: 1,
                level_sync_cycles: 1,
                setup_cycles_per_connection: 2,
                setup_cycles_per_node: 2,
                dataflow: Dataflow::OutputStationary,
                dma_bytes_per_cycle: 8,
                dma_latency_cycles: 32,
            },
        }
    }

    /// Seconds corresponding to `cycles` at the configured clock.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / self.clock_hz
    }
}

impl Default for InaxConfig {
    fn default() -> Self {
        Self::builder().build()
    }
}

/// Builder for [`InaxConfig`]; see [`InaxConfig::builder`].
#[derive(Debug, Clone)]
pub struct InaxConfigBuilder {
    config: InaxConfig,
}

impl InaxConfigBuilder {
    /// Sets the number of PUs.
    pub fn num_pu(mut self, n: usize) -> Self {
        self.config.num_pu = n;
        self
    }

    /// Sets the number of PEs per PU.
    pub fn num_pe(mut self, n: usize) -> Self {
        self.config.num_pe = n;
        self
    }

    /// Sets the accelerator clock in Hz.
    pub fn clock_hz(mut self, hz: f64) -> Self {
        self.config.clock_hz = hz;
        self
    }

    /// Sets the dataflow variant.
    pub fn dataflow(mut self, dataflow: Dataflow) -> Self {
        self.config.dataflow = dataflow;
        self
    }

    /// Sets the per-wave control overhead in cycles.
    pub fn wave_overhead_cycles(mut self, cycles: u64) -> Self {
        self.config.wave_overhead_cycles = cycles;
        self
    }

    /// Finalizes the configuration.
    ///
    /// # Panics
    ///
    /// Panics if PU/PE counts are zero or the clock is not positive.
    pub fn build(self) -> InaxConfig {
        let c = self.config;
        assert!(c.num_pu > 0, "INAX needs at least one PU");
        assert!(c.num_pe > 0, "each PU needs at least one PE");
        assert!(c.clock_hz > 0.0, "clock must be positive");
        assert!(c.mac_cycles > 0, "a MAC takes at least one cycle");
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_footnote_3() {
        let c = InaxConfig::default();
        assert_eq!(c.num_pu, 1);
        assert_eq!(c.num_pe, 1);
        assert_eq!(c.dataflow, Dataflow::OutputStationary);
    }

    #[test]
    fn cycles_convert_to_seconds() {
        let c = InaxConfig::builder().clock_hz(100.0e6).build();
        assert!((c.cycles_to_seconds(100_000_000) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one PU")]
    fn zero_pu_rejected() {
        let _ = InaxConfig::builder().num_pu(0).build();
    }

    #[test]
    #[should_panic(expected = "at least one PE")]
    fn zero_pe_rejected() {
        let _ = InaxConfig::builder().num_pe(0).build();
    }
}
