//! Processing Element cost model.
//!
//! A PE is a DSP MAC plus an activation unit running as a pipeline
//! (paper §IV-E). With the output-stationary dataflow it owns one node
//! end-to-end: it streams the node's ingress values from the value
//! buffer, accumulates locally, adds the bias, applies the activation,
//! and commits the result. Its busy time is therefore proportional to
//! the node's **in-degree** — the source of PE-time variance that
//! forces synchronization idling in irregular networks (paper §V-A
//! issue 3).

use crate::config::InaxConfig;
use crate::net::HwNode;

/// Cycles a single PE needs to compute `node` under the configured
/// dataflow.
///
/// Output stationary: `in_degree × mac + activation` (the bias add is
/// folded into the activation pipeline stage). A node with no ingress
/// still pays the activation/commit cost.
pub fn node_cycles(config: &InaxConfig, node: &HwNode) -> u64 {
    node.ingress.len() as u64 * config.mac_cycles + config.activation_cycles
}

/// Cycles to compute `node` if the PE had to pad to a fixed in-degree
/// `padded_degree` (used by the systolic-array comparison where dummy
/// nodes force worst-case alignment).
pub fn padded_node_cycles(config: &InaxConfig, padded_degree: usize) -> u64 {
    padded_degree as u64 * config.mac_cycles + config.activation_cycles
}

#[cfg(test)]
mod tests {
    use super::*;
    use e3_neat::Activation;

    fn node(in_degree: usize) -> HwNode {
        HwNode {
            ingress: (0..in_degree).map(|i| (i, 1.0)).collect(),
            bias: 0.0,
            activation: Activation::Relu,
        }
    }

    #[test]
    fn cycles_scale_with_in_degree() {
        let c = InaxConfig::default();
        let base = node_cycles(&c, &node(0));
        assert_eq!(base, c.activation_cycles);
        assert_eq!(
            node_cycles(&c, &node(5)),
            5 * c.mac_cycles + c.activation_cycles
        );
        assert!(node_cycles(&c, &node(10)) > node_cycles(&c, &node(3)));
    }

    #[test]
    fn padding_costs_the_padded_degree() {
        let c = InaxConfig::default();
        assert_eq!(padded_node_cycles(&c, 8), node_cycles(&c, &node(8)));
    }
}
