//! Wave-level execution traces.
//!
//! [`trace_inference`] replays the INAX schedule of one inference and
//! records every wave: which PE computed which node for how many
//! cycles, and how long each PE idled at the wave barrier. The trace
//! is exact — its totals reconcile with
//! [`crate::schedule_inference`]'s profile, which the tests enforce —
//! and [`InferenceTrace::render_timeline`] draws an ASCII Gantt chart
//! of the kind hardware designers eyeball for utilization holes.

use crate::config::{Dataflow, InaxConfig};
use crate::net::IrregularNet;
use crate::pe::node_cycles;
use crate::pu::PuInferenceProfile;
use serde::{Deserialize, Serialize};

/// One PE's assignment within a wave.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeAssignment {
    /// PE index within the cluster.
    pub pe: usize,
    /// Compute-node index (into [`IrregularNet::nodes`]).
    pub node: usize,
    /// Busy cycles (in-degree × MAC + activation).
    pub busy_cycles: u64,
    /// Idle cycles waiting for the wave's slowest PE.
    pub idle_cycles: u64,
}

/// One synchronized wave of PE execution.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Wave {
    /// Topological level this wave belongs to (0-based compute level).
    pub level: usize,
    /// Wave latency: the slowest assignment plus launch overhead.
    pub latency_cycles: u64,
    /// Per-PE assignments (PEs beyond the wave's node count idle the
    /// whole wave and are not listed; their idleness is still counted
    /// in the profile).
    pub assignments: Vec<PeAssignment>,
}

/// A full inference trace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InferenceTrace {
    /// PE-cluster width the trace was generated for.
    pub num_pe: usize,
    /// The waves in execution order.
    pub waves: Vec<Wave>,
    /// The profile the schedule reconciles to.
    pub profile: PuInferenceProfile,
}

impl InferenceTrace {
    /// Renders an ASCII Gantt chart: one row per PE, one column block
    /// per wave, `#` busy and `.` idle, `|` at wave barriers. Long
    /// waves are compressed by `cycles_per_char`.
    pub fn render_timeline(&self, cycles_per_char: u64) -> String {
        let cpc = cycles_per_char.max(1);
        let mut rows = vec![String::new(); self.num_pe];
        for wave in &self.waves {
            let width = (wave.latency_cycles.div_ceil(cpc)) as usize;
            for (pe, row) in rows.iter_mut().enumerate() {
                let assignment = wave.assignments.iter().find(|a| a.pe == pe);
                let busy = assignment.map_or(0, |a| (a.busy_cycles.div_ceil(cpc)) as usize);
                let busy = busy.min(width);
                row.push_str(&"#".repeat(busy));
                row.push_str(&".".repeat(width - busy));
                row.push('|');
            }
        }
        let mut out = String::new();
        for (pe, row) in rows.iter().enumerate() {
            out.push_str(&format!("PE{pe:<2} {row}\n"));
        }
        out
    }

    /// Total busy cycles across all assignments.
    pub fn total_busy_cycles(&self) -> u64 {
        self.waves
            .iter()
            .flat_map(|w| &w.assignments)
            .map(|a| a.busy_cycles)
            .sum()
    }
}

/// Replays the output-stationary schedule of `net` and records every
/// wave.
///
/// # Panics
///
/// Panics if the configuration selects a non-output-stationary
/// dataflow (traces model INAX's deployed dataflow only).
pub fn trace_inference(config: &InaxConfig, net: &IrregularNet) -> InferenceTrace {
    assert_eq!(
        config.dataflow,
        Dataflow::OutputStationary,
        "traces model the deployed output-stationary dataflow"
    );
    let n = config.num_pe.max(1);
    let mut waves = Vec::new();
    let mut wall = 0u64;
    let mut active = 0u64;
    for (level_idx, &(start, end)) in net.levels().iter().enumerate() {
        let nodes: Vec<usize> = (start..end).collect();
        for chunk in nodes.chunks(n) {
            let costs: Vec<u64> = chunk
                .iter()
                .map(|&node| node_cycles(config, &net.nodes()[node]))
                .collect();
            let wave_max = costs.iter().copied().max().unwrap_or(0);
            let assignments = chunk
                .iter()
                .zip(&costs)
                .enumerate()
                .map(|(pe, (&node, &busy))| PeAssignment {
                    pe,
                    node,
                    busy_cycles: busy,
                    idle_cycles: wave_max - busy,
                })
                .collect();
            active += costs.iter().sum::<u64>();
            wall += wave_max + config.wave_overhead_cycles;
            waves.push(Wave {
                level: level_idx,
                latency_cycles: wave_max + config.wave_overhead_cycles,
                assignments,
            });
        }
        wall += config.level_sync_cycles;
    }
    let profile = PuInferenceProfile {
        wall_cycles: wall,
        pe_active_cycles: active,
        pe_total_cycles: wall * n as u64,
        waves: waves.len() as u64,
    };
    InferenceTrace {
        num_pe: n,
        waves,
        profile,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pu::schedule_inference;
    use crate::synthetic::synthetic_net;

    #[test]
    fn trace_reconciles_with_schedule_profile() {
        for seed in 0..6 {
            let net = synthetic_net(8, 4, 20, 0.3, seed);
            for num_pe in [1, 3, 4, 7] {
                let config = InaxConfig::builder().num_pe(num_pe).build();
                let trace = trace_inference(&config, &net);
                let profile = schedule_inference(&config, &net);
                assert_eq!(trace.profile, profile, "seed {seed}, {num_pe} PEs");
                assert_eq!(trace.total_busy_cycles(), profile.pe_active_cycles);
            }
        }
    }

    #[test]
    fn every_node_is_computed_exactly_once() {
        let net = synthetic_net(8, 4, 15, 0.4, 2);
        let config = InaxConfig::builder().num_pe(3).build();
        let trace = trace_inference(&config, &net);
        let mut computed: Vec<usize> = trace
            .waves
            .iter()
            .flat_map(|w| &w.assignments)
            .map(|a| a.node)
            .collect();
        computed.sort_unstable();
        let expected: Vec<usize> = (0..net.num_compute_nodes()).collect();
        assert_eq!(computed, expected);
    }

    #[test]
    fn waves_respect_level_boundaries() {
        let net = synthetic_net(8, 4, 15, 0.4, 3);
        let config = InaxConfig::builder().num_pe(4).build();
        let trace = trace_inference(&config, &net);
        let mut prev_level = 0;
        for wave in &trace.waves {
            assert!(wave.level >= prev_level, "levels execute in order");
            prev_level = wave.level;
            for a in &wave.assignments {
                let (start, end) = net.levels()[wave.level];
                assert!((start..end).contains(&a.node), "node belongs to its level");
                assert_eq!(
                    a.busy_cycles + a.idle_cycles + config.wave_overhead_cycles,
                    wave.latency_cycles,
                    "idle accounting closes the wave"
                );
            }
        }
    }

    #[test]
    fn timeline_renders_one_row_per_pe() {
        let net = synthetic_net(4, 2, 6, 0.5, 4);
        let config = InaxConfig::builder().num_pe(3).build();
        let trace = trace_inference(&config, &net);
        let timeline = trace.render_timeline(1);
        assert_eq!(timeline.lines().count(), 3);
        assert!(timeline.contains('#'), "busy cycles are drawn");
        assert!(timeline.contains('|'), "barriers are drawn");
    }

    #[test]
    #[should_panic(expected = "output-stationary")]
    fn non_os_dataflow_is_rejected() {
        let net = synthetic_net(4, 2, 6, 0.5, 4);
        let config = InaxConfig::builder()
            .dataflow(crate::Dataflow::WeightStationary)
            .build();
        let _ = trace_inference(&config, &net);
    }
}
