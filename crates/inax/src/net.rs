//! Hardware-facing network description.
//!
//! [`IrregularNet`] is the form in which an evolved network is shipped
//! to the accelerator over the weight channel: non-input nodes in
//! level-major topological order, each with its resolved ingress list
//! into the shared *value buffer*. Value-buffer slot `i` holds input
//! `i` for `i < num_inputs` and the output of compute node
//! `i - num_inputs` otherwise — the [`e3_neat::NetPlan`] slot
//! convention, so conversion from a compiled plan is a direct copy
//! (no second genome decode).

use e3_neat::{Activation, DecodeError, Genome, NetPlan, Network};
use serde::{Deserialize, Serialize};

/// One compute node as seen by the hardware.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HwNode {
    /// Ingress edges: `(value_buffer_slot, weight)`.
    pub ingress: Vec<(usize, f64)>,
    /// Bias added after accumulation.
    pub bias: f64,
    /// Activation applied by the PE's activation unit.
    pub activation: Activation,
}

/// An irregular feed-forward network compiled for INAX.
///
/// # Example
///
/// ```
/// use e3_inax::IrregularNet;
/// use e3_neat::{Genome, InnovationTracker};
///
/// let mut tracker = InnovationTracker::with_reserved_nodes(3);
/// let mut genome = Genome::bare(2, 1);
/// genome.add_connection(0, 2, 1.0, &mut tracker)?;
/// let net = IrregularNet::try_from(&genome)?;
/// assert_eq!(net.num_compute_nodes(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IrregularNet {
    num_inputs: usize,
    num_outputs: usize,
    /// Compute nodes (hidden + output) in level-major topological
    /// order; node `i` writes value-buffer slot `num_inputs + i`.
    nodes: Vec<HwNode>,
    /// Per compute level: `(start, end)` index range into `nodes`.
    levels: Vec<(usize, usize)>,
    /// Indices (into `nodes`) of the output nodes, in genome id order.
    output_nodes: Vec<usize>,
}

impl IrregularNet {
    /// Lowers a compiled [`NetPlan`] into the hardware layout.
    ///
    /// The plan already uses the value-buffer slot convention and
    /// level-major compute-node order, so this is a per-node copy of
    /// the CSR arena into the weight-channel shape — no re-decoding,
    /// no re-sorting.
    pub fn from_plan(plan: &NetPlan) -> Self {
        let nodes = (0..plan.num_compute_nodes())
            .map(|i| HwNode {
                ingress: plan
                    .node_edges(i)
                    .iter()
                    .map(|&(slot, weight)| (slot as usize, weight))
                    .collect(),
                bias: plan.bias(i),
                activation: plan.activation(i),
            })
            .collect();
        IrregularNet {
            num_inputs: plan.num_inputs(),
            num_outputs: plan.num_outputs(),
            nodes,
            levels: plan
                .levels()
                .iter()
                .map(|&(start, end)| (start as usize, end as usize))
                .collect(),
            output_nodes: plan.outputs().iter().map(|&i| i as usize).collect(),
        }
    }

    /// Compiles a decoded software network into the hardware layout
    /// (both views share the network's [`NetPlan`]).
    pub fn from_network(network: &Network) -> Self {
        Self::from_plan(network.plan())
    }

    /// Number of input slots.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of output values.
    pub fn num_outputs(&self) -> usize {
        self.num_outputs
    }

    /// Number of compute nodes (hidden + output).
    pub fn num_compute_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Compute nodes in execution order.
    pub fn nodes(&self) -> &[HwNode] {
        &self.nodes
    }

    /// Compute levels as index ranges into [`IrregularNet::nodes`].
    pub fn levels(&self) -> &[(usize, usize)] {
        &self.levels
    }

    /// Total ingress connections (MACs per inference).
    pub fn num_connections(&self) -> usize {
        self.nodes.iter().map(|n| n.ingress.len()).sum()
    }

    /// Size of the value buffer (inputs + compute nodes).
    pub fn value_buffer_slots(&self) -> usize {
        self.num_inputs + self.nodes.len()
    }

    /// Bytes shipped over the weight channel during set-up: one 32-bit
    /// word per connection (packed slot+weight), plus a descriptor word
    /// per node.
    pub fn weight_stream_bytes(&self) -> u64 {
        4 * (self.num_connections() as u64 + self.nodes.len() as u64)
    }

    /// Indices (into [`IrregularNet::nodes`]) of the output nodes, in
    /// genome output order.
    pub fn output_node_indices(&self) -> &[usize] {
        &self.output_nodes
    }

    /// Functional evaluation with a caller-provided value buffer
    /// (reused across steps like the hardware's). Returns the outputs
    /// in genome id order — bit-identical to
    /// [`e3_neat::Network::activate`].
    ///
    /// # Panics
    ///
    /// Panics if `inputs` or `value_buffer` have the wrong length.
    pub fn evaluate_into(&self, inputs: &[f64], value_buffer: &mut [f64]) -> Vec<f64> {
        assert_eq!(inputs.len(), self.num_inputs, "input size mismatch");
        assert_eq!(
            value_buffer.len(),
            self.value_buffer_slots(),
            "value buffer size mismatch"
        );
        value_buffer[..self.num_inputs].copy_from_slice(inputs);
        for (i, node) in self.nodes.iter().enumerate() {
            let mut acc = node.bias;
            for &(slot, weight) in &node.ingress {
                debug_assert!(slot < self.num_inputs + i, "forward-only dependency");
                acc += value_buffer[slot] * weight;
            }
            value_buffer[self.num_inputs + i] = node.activation.apply(acc);
        }
        self.output_nodes
            .iter()
            .map(|&i| value_buffer[self.num_inputs + i])
            .collect()
    }

    /// Functional evaluation with a temporary value buffer.
    pub fn evaluate(&self, inputs: &[f64]) -> Vec<f64> {
        let mut buffer = vec![0.0; self.value_buffer_slots()];
        self.evaluate_into(inputs, &mut buffer)
    }
}

impl TryFrom<&Genome> for IrregularNet {
    type Error = DecodeError;

    /// Compiles the genome to a [`NetPlan`] once and lowers it —
    /// genome decoding happens exactly once on this path.
    fn try_from(genome: &Genome) -> Result<Self, DecodeError> {
        Ok(Self::from_plan(&NetPlan::compile(genome)?))
    }
}

impl From<&Network> for IrregularNet {
    fn from(network: &Network) -> Self {
        Self::from_network(network)
    }
}

impl From<&NetPlan> for IrregularNet {
    fn from(plan: &NetPlan) -> Self {
        Self::from_plan(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use e3_neat::{InnovationTracker, NeatConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn skip_genome() -> Genome {
        // 2 inputs, 1 output, one hidden splitting input 0's edge, plus
        // a direct skip from input 1.
        let mut tracker = InnovationTracker::with_reserved_nodes(3);
        let mut g = Genome::bare(2, 1);
        let innovation = g.add_connection(0, 2, 0.5, &mut tracker).unwrap();
        g.add_connection(1, 2, 0.25, &mut tracker).unwrap();
        g.split_connection(innovation, Activation::Relu, &mut tracker)
            .unwrap();
        g
    }

    #[test]
    fn compile_preserves_structure() {
        let g = skip_genome();
        let net = IrregularNet::try_from(&g).unwrap();
        assert_eq!(net.num_inputs(), 2);
        assert_eq!(net.num_compute_nodes(), 2); // hidden + output
        assert_eq!(net.levels().len(), 2);
        assert_eq!(net.num_connections(), 3);
        assert_eq!(net.value_buffer_slots(), 4);
    }

    #[test]
    fn functional_eval_matches_software_reference() {
        let g = skip_genome();
        let mut sw = g.decode().unwrap();
        let hw = IrregularNet::try_from(&g).unwrap();
        for input in [[0.0, 0.0], [1.0, -1.0], [0.3, 0.7], [-2.0, 5.0]] {
            assert_eq!(sw.activate(&input), hw.evaluate(&input));
        }
    }

    #[test]
    fn random_genomes_match_reference_bit_for_bit() {
        let config = NeatConfig::builder(8, 4)
            .initial_hidden_nodes(30)
            .initial_connection_density(0.2)
            .build();
        let mut tracker = InnovationTracker::with_reserved_nodes(12);
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..10 {
            let mut g = Genome::initial(&config, &mut tracker, &mut rng);
            for _ in 0..15 {
                g.mutate(&config, &mut tracker, &mut rng);
            }
            let mut sw = g.decode().unwrap();
            let hw = IrregularNet::try_from(&g).unwrap();
            let input: Vec<f64> = (0..8).map(|i| (i as f64 * 0.37).sin()).collect();
            assert_eq!(sw.activate(&input), hw.evaluate(&input));
        }
    }

    #[test]
    fn evaluate_into_reuses_buffer() {
        let g = skip_genome();
        let hw = IrregularNet::try_from(&g).unwrap();
        let mut buffer = vec![0.0; hw.value_buffer_slots()];
        let a = hw.evaluate_into(&[1.0, 2.0], &mut buffer);
        let b = hw.evaluate_into(&[1.0, 2.0], &mut buffer);
        assert_eq!(a, b, "buffer reuse must not corrupt results");
    }

    #[test]
    fn weight_stream_counts_connections_and_nodes() {
        let g = skip_genome();
        let hw = IrregularNet::try_from(&g).unwrap();
        assert_eq!(hw.weight_stream_bytes(), 4 * (3 + 2));
    }

    #[test]
    #[should_panic(expected = "input size mismatch")]
    fn wrong_input_size_panics() {
        let g = skip_genome();
        let hw = IrregularNet::try_from(&g).unwrap();
        let _ = hw.evaluate(&[1.0]);
    }
}
