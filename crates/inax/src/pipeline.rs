//! Double-buffered batch loading (set-up/compute overlap).
//!
//! E3 processes the population in batches of `num_pu` individuals;
//! each batch pays a set-up phase (weight-channel DMA + decode) before
//! its compute phase. With a second weight buffer per PU, the *next*
//! batch's set-up can stream while the current batch computes — a
//! classic two-stage pipeline that hides whichever phase is shorter.
//! The cost is area: the FPGA model charges a second BRAM bank per PU.
//!
//! This is an extension beyond the paper's prototype (its Fig. 9(a)
//! shows set-up is a visible slice of small-network runtime, which is
//! exactly what double buffering removes).

use crate::fpga_cost::DOUBLE_BUFFER_BRAM_PER_PU;
use serde::{Deserialize, Serialize};

/// Per-batch work description.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchWork {
    /// Set-up phase cycles (weight DMA + decode).
    pub setup_cycles: u64,
    /// Compute phase cycles (all inference waves of the batch's
    /// episodes).
    pub compute_cycles: u64,
}

/// Result of the pipeline analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelineReport {
    /// Total cycles with serial set-up → compute per batch (the
    /// paper's prototype).
    pub serial_cycles: u64,
    /// Total cycles with double-buffered set-up prefetch.
    pub pipelined_cycles: u64,
}

impl PipelineReport {
    /// Speedup of double buffering.
    pub fn speedup(&self) -> f64 {
        self.serial_cycles as f64 / self.pipelined_cycles.max(1) as f64
    }

    /// Cycles the compute pipeline still stalls on set-up even with
    /// double buffering: the pipelined total minus `compute_sum`
    /// (batch 0's unhidden set-up plus any DMA-bound stages). This is
    /// the stall term the utilization counters attribute to the weight
    /// channel.
    pub fn exposed_setup_cycles(&self, compute_sum: u64) -> u64 {
        self.pipelined_cycles.saturating_sub(compute_sum)
    }

    /// Extra BRAM banks the second weight buffer costs for `num_pu`
    /// PUs (feeds the FPGA resource model).
    pub fn extra_bram(num_pu: usize) -> u64 {
        DOUBLE_BUFFER_BRAM_PER_PU * num_pu as u64
    }
}

/// Computes serial vs. double-buffered totals for a sequence of
/// batches.
///
/// Pipeline model: batch 0's set-up cannot be hidden; afterwards batch
/// `i+1`'s set-up overlaps batch `i`'s compute, so each subsequent
/// stage costs `max(compute_i, setup_{i+1})`, and the final batch's
/// compute runs unhidden.
pub fn analyze_double_buffering(batches: &[BatchWork]) -> PipelineReport {
    let serial_cycles = batches
        .iter()
        .map(|b| b.setup_cycles + b.compute_cycles)
        .sum();
    let pipelined_cycles = match batches {
        [] => 0,
        [only] => only.setup_cycles + only.compute_cycles,
        _ => {
            let mut total = batches[0].setup_cycles;
            for pair in batches.windows(2) {
                total += pair[0].compute_cycles.max(pair[1].setup_cycles);
            }
            total += batches.last().expect("non-empty").compute_cycles;
            total
        }
    };
    PipelineReport {
        serial_cycles,
        pipelined_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(setup: u64, compute: u64) -> BatchWork {
        BatchWork {
            setup_cycles: setup,
            compute_cycles: compute,
        }
    }

    #[test]
    fn empty_and_single_batch_gain_nothing() {
        assert_eq!(analyze_double_buffering(&[]).speedup(), 0.0);
        let one = analyze_double_buffering(&[batch(10, 100)]);
        assert_eq!(one.serial_cycles, one.pipelined_cycles);
    }

    #[test]
    fn compute_bound_batches_hide_all_but_first_setup() {
        // setup 10 ≪ compute 100: pipelined total = 10 + (n-1+1)×100.
        let batches = vec![batch(10, 100); 4];
        let report = analyze_double_buffering(&batches);
        assert_eq!(report.serial_cycles, 440);
        assert_eq!(report.pipelined_cycles, 10 + 4 * 100);
        assert!(report.speedup() > 1.0);
    }

    #[test]
    fn setup_bound_batches_are_limited_by_the_dma() {
        // setup 100 ≫ compute 10: the weight channel is the bottleneck.
        let batches = vec![batch(100, 10); 4];
        let report = analyze_double_buffering(&batches);
        assert_eq!(report.serial_cycles, 440);
        assert_eq!(report.pipelined_cycles, 100 + 3 * 100 + 10);
        assert!(report.pipelined_cycles >= 400, "DMA cannot be hidden");
    }

    #[test]
    fn pipelining_never_slows_down_and_respects_lower_bound() {
        let patterns: Vec<Vec<BatchWork>> = vec![
            (0..10)
                .map(|i| batch(5 + i * 3, 50 + (i % 4) * 20))
                .collect(),
            (0..7).map(|i| batch(40 + i, 8)).collect(),
            vec![batch(1, 1), batch(1000, 1), batch(1, 1000)],
        ];
        for batches in patterns {
            let report = analyze_double_buffering(&batches);
            assert!(report.pipelined_cycles <= report.serial_cycles);
            // Lower bound: no schedule beats the bigger of total-setup
            // and total-compute.
            let setup_sum: u64 = batches.iter().map(|b| b.setup_cycles).sum();
            let compute_sum: u64 = batches.iter().map(|b| b.compute_cycles).sum();
            assert!(report.pipelined_cycles >= setup_sum.max(compute_sum));
            // Exposed set-up shrinks (or holds) under pipelining, and
            // never exceeds the total set-up.
            let exposed = report.exposed_setup_cycles(compute_sum);
            assert!(exposed <= setup_sum);
            assert!(exposed <= report.serial_cycles - compute_sum);
        }
    }

    #[test]
    fn extra_bram_scales_with_pus() {
        assert_eq!(
            PipelineReport::extra_bram(50),
            50 * DOUBLE_BUFFER_BRAM_PER_PU
        );
    }
}
