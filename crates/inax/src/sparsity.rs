//! Activation-sparsity analysis (the paper's stated future work,
//! §VII: "Irregular NNs also have activation sparsity, which we did
//! not investigate in this study and is ripe for future work").
//!
//! With ReLU-heavy populations many node outputs are exactly zero, so
//! every downstream MAC reading that value is wasted work. A gating
//! PE could skip zero operands. This module measures the opportunity:
//! it evaluates a network, marks zero activations, and reschedules with
//! zero-operand MACs elided — yielding the cycle savings an
//! activity-gated INAX would realize on that input.

use crate::config::InaxConfig;
use crate::net::IrregularNet;
use crate::pu::PuInferenceProfile;
use serde::{Deserialize, Serialize};

/// Result of a sparsity-aware scheduling analysis for one input.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SparsityReport {
    /// Fraction of compute-node outputs that were exactly zero.
    pub zero_activation_fraction: f64,
    /// Fraction of MACs whose operand was zero (skippable).
    pub skippable_mac_fraction: f64,
    /// Baseline schedule (dense, input-independent).
    pub dense: PuInferenceProfile,
    /// Gated schedule with zero-operand MACs elided.
    pub gated: PuInferenceProfile,
}

impl SparsityReport {
    /// Wall-cycle speedup of gating on this input.
    pub fn speedup(&self) -> f64 {
        self.dense.wall_cycles as f64 / self.gated.wall_cycles.max(1) as f64
    }
}

/// Evaluates `net` on `inputs` and analyses the activity-gated
/// schedule on `config`'s PE cluster.
///
/// The gated model elides MACs whose source value is exactly zero
/// (ReLU outputs and dead inputs); node launch and activation costs
/// remain — gating shortens a PE's accumulation, it does not remove
/// the node.
///
/// # Panics
///
/// Panics if `inputs.len()` differs from the network's input count.
pub fn analyze_activation_sparsity(
    config: &InaxConfig,
    net: &IrregularNet,
    inputs: &[f64],
) -> SparsityReport {
    let mut values = vec![0.0; net.value_buffer_slots()];
    net.evaluate_into(inputs, &mut values);
    let base = net.num_inputs();
    let zero_nodes = values[base..].iter().filter(|&&v| v == 0.0).count();

    // Per-node effective in-degree with zero operands skipped.
    let mut total_macs = 0usize;
    let mut skippable = 0usize;
    let mut effective_degrees = Vec::with_capacity(net.num_compute_nodes());
    for node in net.nodes() {
        let mut live = 0usize;
        for &(slot, _) in &node.ingress {
            total_macs += 1;
            if values[slot] == 0.0 {
                skippable += 1;
            } else {
                live += 1;
            }
        }
        effective_degrees.push(live);
    }

    let dense = crate::pu::schedule_inference(config, net);
    let gated = schedule_with_degrees(config, net, &effective_degrees);

    SparsityReport {
        zero_activation_fraction: if net.num_compute_nodes() == 0 {
            0.0
        } else {
            zero_nodes as f64 / net.num_compute_nodes() as f64
        },
        skippable_mac_fraction: if total_macs == 0 {
            0.0
        } else {
            skippable as f64 / total_macs as f64
        },
        dense,
        gated,
    }
}

/// Schedules the network's levels with caller-provided per-node MAC
/// counts (the gated effective degrees).
fn schedule_with_degrees(
    config: &InaxConfig,
    net: &IrregularNet,
    degrees: &[usize],
) -> PuInferenceProfile {
    let n = config.num_pe.max(1);
    let mut wall = 0u64;
    let mut active = 0u64;
    let mut waves = 0u64;
    for &(start, end) in net.levels() {
        let level_degrees = &degrees[start..end];
        for wave in level_degrees.chunks(n) {
            let mut wave_max = 0u64;
            for &deg in wave {
                let cycles = deg as u64 * config.mac_cycles + config.activation_cycles;
                active += cycles;
                wave_max = wave_max.max(cycles);
            }
            wall += wave_max + config.wave_overhead_cycles;
            waves += 1;
        }
        wall += config.level_sync_cycles;
    }
    PuInferenceProfile {
        wall_cycles: wall,
        pe_active_cycles: active,
        pe_total_cycles: wall * n as u64,
        waves,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::synthetic_genome_with_mutations;
    use crate::IrregularNet;
    use e3_neat::{Activation, Genome, InnovationTracker};

    fn relu_heavy_net() -> IrregularNet {
        // Hidden ReLU nodes with negative bias: many outputs are zero.
        let mut tracker = InnovationTracker::with_reserved_nodes(4);
        let mut g = Genome::bare(2, 2);
        for (i, o) in [(0usize, 2usize), (1, 3)] {
            let innovation = g.add_connection(i, o, 1.0, &mut tracker).unwrap();
            let h = g
                .split_connection(innovation, Activation::Relu, &mut tracker)
                .unwrap();
            g.set_bias(h, -10.0).unwrap(); // forces ReLU output to 0
        }
        IrregularNet::try_from(&g).unwrap()
    }

    #[test]
    fn dead_relu_nodes_are_detected_and_gated() {
        let net = relu_heavy_net();
        let config = InaxConfig::builder().num_pe(1).build();
        let report = analyze_activation_sparsity(&config, &net, &[0.5, 0.5]);
        assert!(
            report.zero_activation_fraction >= 0.5,
            "hidden ReLUs are dead"
        );
        assert!(report.skippable_mac_fraction > 0.0);
        assert!(report.gated.wall_cycles < report.dense.wall_cycles);
        assert!(report.speedup() > 1.0);
    }

    #[test]
    fn gating_never_slows_down() {
        for seed in 0..10 {
            let genome = synthetic_genome_with_mutations(6, 3, 12, 0.4, 2, seed);
            let net = IrregularNet::try_from(&genome).unwrap();
            let config = InaxConfig::builder().num_pe(3).build();
            let inputs: Vec<f64> = (0..6).map(|i| ((seed + i) as f64 * 0.4).sin()).collect();
            let report = analyze_activation_sparsity(&config, &net, &inputs);
            assert!(report.gated.wall_cycles <= report.dense.wall_cycles);
            assert!(report.gated.pe_active_cycles <= report.dense.pe_active_cycles);
            assert!((0.0..=1.0).contains(&report.skippable_mac_fraction));
        }
    }

    #[test]
    fn fully_live_network_gains_nothing() {
        // Identity activations on nonzero inputs: nothing is zero.
        let mut tracker = InnovationTracker::with_reserved_nodes(3);
        let mut g = Genome::bare(2, 1);
        g.add_connection(0, 2, 1.0, &mut tracker).unwrap();
        g.add_connection(1, 2, 1.0, &mut tracker).unwrap();
        let net = IrregularNet::try_from(&g).unwrap();
        let config = InaxConfig::default();
        let report = analyze_activation_sparsity(&config, &net, &[1.0, 2.0]);
        assert_eq!(report.skippable_mac_fraction, 0.0);
        assert_eq!(report.dense, report.gated);
    }
}
