//! DMA channel model.
//!
//! E3 moves data between CPU DRAM and INAX over DMA channels (input,
//! weight, output) plus a lightweight `sig` channel for start/done
//! handshakes (paper Fig. 5). The model is a fixed per-transaction
//! latency plus a bandwidth term.

use serde::{Deserialize, Serialize};

/// Bandwidth + latency model of one DMA channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DmaModel {
    /// Payload bytes moved per accelerator cycle once streaming.
    pub bytes_per_cycle: u64,
    /// Fixed transaction setup latency in cycles.
    pub latency_cycles: u64,
}

impl DmaModel {
    /// Creates a model from the accelerator configuration's DMA fields.
    pub fn new(bytes_per_cycle: u64, latency_cycles: u64) -> Self {
        assert!(bytes_per_cycle > 0, "DMA bandwidth must be positive");
        DmaModel {
            bytes_per_cycle,
            latency_cycles,
        }
    }

    /// Cycles to move `bytes` in one transaction (0 bytes costs
    /// nothing — no transaction is issued).
    pub fn transfer_cycles(&self, bytes: u64) -> u64 {
        if bytes == 0 {
            return 0;
        }
        self.latency_cycles + bytes.div_ceil(self.bytes_per_cycle)
    }
}

impl Default for DmaModel {
    fn default() -> Self {
        DmaModel::new(8, 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_bytes_is_free() {
        assert_eq!(DmaModel::default().transfer_cycles(0), 0);
    }

    #[test]
    fn transfer_includes_latency_and_bandwidth() {
        let dma = DmaModel::new(8, 32);
        assert_eq!(dma.transfer_cycles(1), 32 + 1);
        assert_eq!(dma.transfer_cycles(8), 32 + 1);
        assert_eq!(dma.transfer_cycles(9), 32 + 2);
        assert_eq!(dma.transfer_cycles(800), 32 + 100);
    }

    #[test]
    fn larger_transfers_amortize_latency() {
        let dma = DmaModel::new(8, 32);
        let one_big = dma.transfer_cycles(1024);
        let many_small: u64 = (0..16).map(|_| dma.transfer_cycles(64)).sum();
        assert!(one_big < many_small);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = DmaModel::new(0, 1);
    }
}
