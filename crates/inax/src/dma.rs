//! DMA channel model.
//!
//! E3 moves data between CPU DRAM and INAX over DMA channels (input,
//! weight, output) plus a lightweight `sig` channel for start/done
//! handshakes (paper Fig. 5). The model is a fixed per-transaction
//! latency plus a bandwidth term.

use serde::{Deserialize, Serialize};

/// Bandwidth + latency model of one DMA channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DmaModel {
    /// Payload bytes moved per accelerator cycle once streaming.
    pub bytes_per_cycle: u64,
    /// Fixed transaction setup latency in cycles.
    pub latency_cycles: u64,
}

impl DmaModel {
    /// Creates a model from the accelerator configuration's DMA fields.
    pub fn new(bytes_per_cycle: u64, latency_cycles: u64) -> Self {
        assert!(bytes_per_cycle > 0, "DMA bandwidth must be positive");
        DmaModel {
            bytes_per_cycle,
            latency_cycles,
        }
    }

    /// Cycles to move `bytes` in one transaction (0 bytes costs
    /// nothing — no transaction is issued).
    pub fn transfer_cycles(&self, bytes: u64) -> u64 {
        if bytes == 0 {
            return 0;
        }
        self.latency_cycles + bytes.div_ceil(self.bytes_per_cycle)
    }
}

impl Default for DmaModel {
    fn default() -> Self {
        DmaModel::new(8, 32)
    }
}

/// Running byte/cycle totals for a set of DMA channels — the source of
/// the `dma_bytes` utilization counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DmaTraffic {
    /// Payload bytes moved so far.
    pub bytes: u64,
    /// Cycles spent on transfers so far.
    pub cycles: u64,
}

impl DmaTraffic {
    /// Accounts one transfer of `bytes` under `model` and returns its
    /// cycle cost (0-byte transfers cost and count nothing).
    pub fn transfer(&mut self, model: &DmaModel, bytes: u64) -> u64 {
        let cycles = model.transfer_cycles(bytes);
        self.bytes += bytes;
        self.cycles += cycles;
        cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_bytes_is_free() {
        assert_eq!(DmaModel::default().transfer_cycles(0), 0);
    }

    #[test]
    fn transfer_includes_latency_and_bandwidth() {
        let dma = DmaModel::new(8, 32);
        assert_eq!(dma.transfer_cycles(1), 32 + 1);
        assert_eq!(dma.transfer_cycles(8), 32 + 1);
        assert_eq!(dma.transfer_cycles(9), 32 + 2);
        assert_eq!(dma.transfer_cycles(800), 32 + 100);
    }

    #[test]
    fn larger_transfers_amortize_latency() {
        let dma = DmaModel::new(8, 32);
        let one_big = dma.transfer_cycles(1024);
        let many_small: u64 = (0..16).map(|_| dma.transfer_cycles(64)).sum();
        assert!(one_big < many_small);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = DmaModel::new(0, 1);
    }

    #[test]
    fn traffic_accumulates_bytes_and_cycles() {
        let dma = DmaModel::new(8, 32);
        let mut traffic = DmaTraffic::default();
        assert_eq!(traffic.transfer(&dma, 0), 0);
        let c = traffic.transfer(&dma, 64);
        assert_eq!(c, dma.transfer_cycles(64));
        traffic.transfer(&dma, 16);
        assert_eq!(traffic.bytes, 80);
        assert_eq!(
            traffic.cycles,
            dma.transfer_cycles(64) + dma.transfer_cycles(16)
        );
    }
}
