//! Fixed-point arithmetic for the PE datapath.
//!
//! An FPGA PE's DSP slice computes in fixed point, not `f64`. This
//! module models a configurable signed Qm.n format: weights, biases and
//! activations are quantized on the weight channel, MACs accumulate in
//! a wide register, and the activation unit applies a piecewise
//! approximation. The [`crate::IrregularNet`] can be evaluated under a
//! [`FixedPointFormat`] to measure the accuracy cost of narrower
//! datapaths (the `quantization` ablation experiment).

use crate::net::IrregularNet;
use e3_neat::Activation;
use serde::{Deserialize, Serialize};

/// A signed fixed-point format with `integer_bits` + `frac_bits` + 1
/// sign bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FixedPointFormat {
    /// Bits left of the binary point (excluding sign).
    pub integer_bits: u32,
    /// Bits right of the binary point.
    pub frac_bits: u32,
}

impl FixedPointFormat {
    /// Common FPGA datapath: Q8.8 in a 17-bit signed word.
    pub const Q8_8: FixedPointFormat = FixedPointFormat {
        integer_bits: 8,
        frac_bits: 8,
    };
    /// Narrow datapath: Q4.4.
    pub const Q4_4: FixedPointFormat = FixedPointFormat {
        integer_bits: 4,
        frac_bits: 4,
    };
    /// Wide datapath: Q8.16.
    pub const Q8_16: FixedPointFormat = FixedPointFormat {
        integer_bits: 8,
        frac_bits: 16,
    };

    /// Total bits including sign.
    pub fn total_bits(&self) -> u32 {
        self.integer_bits + self.frac_bits + 1
    }

    /// Smallest representable increment.
    pub fn resolution(&self) -> f64 {
        2.0f64.powi(-(self.frac_bits as i32))
    }

    /// Largest representable magnitude.
    pub fn max_value(&self) -> f64 {
        2.0f64.powi(self.integer_bits as i32) - self.resolution()
    }

    /// Quantizes a value: round-to-nearest then saturate.
    pub fn quantize(&self, x: f64) -> f64 {
        let scale = 2.0f64.powi(self.frac_bits as i32);
        let q = (x * scale).round() / scale;
        q.clamp(-self.max_value(), self.max_value())
    }

    /// Quantization error for a value.
    pub fn error(&self, x: f64) -> f64 {
        (x - self.quantize(x)).abs()
    }
}

/// Evaluates an [`IrregularNet`] under fixed-point arithmetic:
/// weights/biases quantized once (weight-buffer contents), every
/// intermediate activation quantized on write to the value buffer
/// (MAC accumulation stays wide, like a DSP accumulator).
///
/// # Example
///
/// ```
/// use e3_inax::quant::{evaluate_fixed_point, FixedPointFormat};
/// use e3_inax::synthetic::synthetic_net;
///
/// let net = synthetic_net(4, 2, 8, 0.5, 1);
/// let exact = net.evaluate(&[0.1, 0.2, 0.3, 0.4]);
/// let q = evaluate_fixed_point(&net, &[0.1, 0.2, 0.3, 0.4], FixedPointFormat::Q8_16);
/// assert_eq!(exact.len(), q.len());
/// for (a, b) in exact.iter().zip(&q) {
///     assert!((a - b).abs() < 0.01, "Q8.16 is near-exact here");
/// }
/// ```
pub fn evaluate_fixed_point(
    net: &IrregularNet,
    inputs: &[f64],
    format: FixedPointFormat,
) -> Vec<f64> {
    assert_eq!(inputs.len(), net.num_inputs(), "input size mismatch");
    let mut values = vec![0.0; net.value_buffer_slots()];
    for (slot, &x) in inputs.iter().enumerate() {
        values[slot] = format.quantize(x);
    }
    let base = net.num_inputs();
    for (i, node) in net.nodes().iter().enumerate() {
        // Wide accumulator: sum in f64 over quantized operands.
        let mut acc = format.quantize(node.bias);
        for &(slot, weight) in &node.ingress {
            acc += values[slot] * format.quantize(weight);
        }
        values[base + i] = format.quantize(apply_activation_hw(node.activation, acc));
    }
    let mut out = Vec::with_capacity(net.num_outputs());
    for &idx in net.output_node_indices() {
        out.push(values[base + idx]);
    }
    out
}

/// Hardware activation: identical math to software — the quantization
/// happens on the value-buffer write, which `evaluate_fixed_point`
/// applies. (A LUT-based approximation could slot in here.)
fn apply_activation_hw(activation: Activation, x: f64) -> f64 {
    activation.apply(x)
}

/// Mean absolute output error of fixed-point evaluation against the
/// `f64` reference, over a set of probe inputs.
pub fn output_error(net: &IrregularNet, probes: &[Vec<f64>], format: FixedPointFormat) -> f64 {
    let mut total = 0.0;
    let mut count = 0usize;
    for probe in probes {
        let exact = net.evaluate(probe);
        let quantized = evaluate_fixed_point(net, probe, format);
        for (a, b) in exact.iter().zip(&quantized) {
            total += (a - b).abs();
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::synthetic_net;

    #[test]
    fn format_properties() {
        let q = FixedPointFormat::Q8_8;
        assert_eq!(q.total_bits(), 17);
        assert_eq!(q.resolution(), 1.0 / 256.0);
        assert!(q.max_value() < 256.0);
        assert_eq!(q.quantize(0.0), 0.0);
        assert!(q.error(0.001) > 0.0);
        assert_eq!(q.error(0.25), 0.0, "exactly representable");
    }

    #[test]
    fn quantize_saturates() {
        let q = FixedPointFormat::Q4_4;
        assert_eq!(q.quantize(1e9), q.max_value());
        assert_eq!(q.quantize(-1e9), -q.max_value());
    }

    #[test]
    fn wider_formats_are_more_accurate() {
        let net = synthetic_net(6, 3, 15, 0.4, 3);
        let probes: Vec<Vec<f64>> = (0..10)
            .map(|i| (0..6).map(|j| ((i * 7 + j) as f64 * 0.23).sin()).collect())
            .collect();
        let e4 = output_error(&net, &probes, FixedPointFormat::Q4_4);
        let e8 = output_error(&net, &probes, FixedPointFormat::Q8_8);
        let e16 = output_error(&net, &probes, FixedPointFormat::Q8_16);
        assert!(e4 >= e8, "Q4.4 ({e4}) no better than Q8.8 ({e8})");
        assert!(e8 >= e16, "Q8.8 ({e8}) no better than Q8.16 ({e16})");
        assert!(e16 < 1e-3, "Q8.16 is near-exact ({e16})");
    }

    #[test]
    fn q8_16_controller_preserves_decisions() {
        // The argmax action decision survives quantization at Q8.16 on
        // most probes — the deployment-relevant property.
        let net = synthetic_net(4, 3, 10, 0.5, 9);
        let mut agree = 0;
        let total = 20;
        for i in 0..total {
            let probe: Vec<f64> = (0..4).map(|j| ((i * 3 + j) as f64 * 0.37).cos()).collect();
            let exact = net.evaluate(&probe);
            let quant = evaluate_fixed_point(&net, &probe, FixedPointFormat::Q8_16);
            let argmax = |v: &[f64]| {
                v.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i)
            };
            if argmax(&exact) == argmax(&quant) {
                agree += 1;
            }
        }
        assert!(
            agree >= total - 1,
            "only {agree}/{total} decisions preserved"
        );
    }
}
