//! Property tests: the INAX simulator is functionally identical to the
//! software reference, and its cycle accounting is self-consistent.

use e3_inax::synthetic::synthetic_genome_with_mutations;
use e3_inax::{schedule_inference, InaxAccelerator, InaxConfig, IrregularNet, PuSim};
use e3_neat::NetPlan;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// HW functional evaluation equals the SW reference bit-for-bit on
    /// arbitrary evolved topologies and inputs.
    #[test]
    fn inax_matches_software_reference(
        seed in any::<u64>(),
        hidden in 0usize..25,
        mutations in 0usize..8,
        density in 0.1f64..0.9,
        x0 in -5.0f64..5.0,
        x1 in -5.0f64..5.0,
    ) {
        let genome = synthetic_genome_with_mutations(4, 3, hidden, density, mutations, seed);
        let mut sw = genome.decode().expect("feed-forward");
        let hw = IrregularNet::try_from(&genome).expect("compiles");
        let inputs = [x0, x1, x0 * 0.5, x1 - x0];
        prop_assert_eq!(sw.activate(&inputs), hw.evaluate(&inputs));
    }

    /// Lowering through the shared [`NetPlan`] IR is lossless: the
    /// plan's own executor, an `IrregularNet` built from the plan, and
    /// the genome-level `TryFrom` conversion all agree bit-for-bit.
    #[test]
    fn plan_lowering_is_lossless(
        seed in any::<u64>(),
        hidden in 0usize..25,
        mutations in 0usize..8,
        density in 0.1f64..0.9,
        x0 in -5.0f64..5.0,
        x1 in -5.0f64..5.0,
    ) {
        let genome = synthetic_genome_with_mutations(4, 3, hidden, density, mutations, seed);
        let plan = NetPlan::compile(&genome).expect("feed-forward");
        let via_plan = IrregularNet::from_plan(&plan);
        let via_genome = IrregularNet::try_from(&genome).expect("compiles");
        prop_assert_eq!(&via_plan, &via_genome, "both lowering routes build the same net");
        let inputs = [x0, x1, x0 * 0.5, x1 - x0];
        prop_assert_eq!(plan.execute(&inputs), via_plan.evaluate(&inputs));
    }

    /// Cycle accounting: active ≤ total, utilization in (0, 1], and the
    /// schedule is deterministic.
    #[test]
    fn schedule_accounting_is_consistent(
        seed in any::<u64>(),
        hidden in 0usize..30,
        num_pe in 1usize..20,
        density in 0.1f64..0.9,
    ) {
        let genome = synthetic_genome_with_mutations(6, 4, hidden, density, 2, seed);
        let net = IrregularNet::try_from(&genome).expect("compiles");
        let config = InaxConfig::builder().num_pe(num_pe).build();
        let a = schedule_inference(&config, &net);
        let b = schedule_inference(&config, &net);
        prop_assert_eq!(a, b, "deterministic schedule");
        prop_assert!(a.pe_active_cycles <= a.pe_total_cycles);
        prop_assert_eq!(a.pe_total_cycles, a.wall_cycles * num_pe as u64);
        let util = a.pe_utilization().rate();
        prop_assert!(util > 0.0 && util <= 1.0, "U(PE) = {util}");
        prop_assert!(a.wall_cycles > 0);
    }

    /// PE scaling obeys the sandwich bound: every PE count is at least
    /// as fast as fully serial (1 PE) and no faster than unbounded
    /// parallelism (one wave per level). Pointwise monotonicity does
    /// NOT hold — greedy in-order wave chunking can regroup two heavy
    /// nodes unfavourably — which is itself a finding about the
    /// hardware's dispatch order (paper §V-A issue 3).
    #[test]
    fn pe_scaling_obeys_sandwich_bounds(
        seed in any::<u64>(),
        hidden in 1usize..25,
    ) {
        let genome = synthetic_genome_with_mutations(6, 4, hidden, 0.3, 2, seed);
        let net = IrregularNet::try_from(&genome).expect("compiles");
        let serial =
            schedule_inference(&InaxConfig::builder().num_pe(1).build(), &net).wall_cycles;
        let widest = net.levels().iter().map(|&(s, e)| e - s).max().unwrap_or(1);
        let unbounded =
            schedule_inference(&InaxConfig::builder().num_pe(widest).build(), &net).wall_cycles;
        for num_pe in 1..=16 {
            let config = InaxConfig::builder().num_pe(num_pe).build();
            let wall = schedule_inference(&config, &net).wall_cycles;
            prop_assert!(wall <= serial, "PE {num_pe}: {wall} > serial {serial}");
            prop_assert!(wall >= unbounded, "PE {num_pe}: {wall} < unbounded {unbounded}");
        }
    }

    /// The closed-loop accelerator produces the same outputs as the
    /// standalone PU and preserves accounting across steps.
    #[test]
    fn cluster_step_matches_pu(
        seed in any::<u64>(),
        batch in 1usize..5,
        steps in 1usize..6,
    ) {
        let config = InaxConfig::builder().num_pu(batch).num_pe(2).build();
        let nets: Vec<IrregularNet> = (0..batch)
            .map(|i| {
                let genome =
                    synthetic_genome_with_mutations(3, 2, 5, 0.5, 1, seed ^ (i as u64 * 31));
                IrregularNet::try_from(&genome).expect("compiles")
            })
            .collect();
        let mut acc = InaxAccelerator::new(config.clone());
        acc.load_batch(nets.clone());
        let mut pus: Vec<PuSim> = nets.iter().map(|n| PuSim::new(&config, n.clone())).collect();
        for step in 0..steps {
            let input = vec![step as f64 * 0.1, -1.0, 0.5];
            let inputs = vec![Some(input.clone()); batch];
            let outs = acc.step(&inputs);
            for (out, pu) in outs.iter().zip(&mut pus) {
                let (want, _) = pu.infer(&input);
                prop_assert_eq!(out.as_ref().expect("alive"), &want);
            }
        }
        let report = acc.report();
        prop_assert_eq!(report.steps, steps as u64);
        prop_assert!(report.pu_utilization.rate() <= 1.0);
        prop_assert!(report.pe_utilization.rate() <= 1.0);
        // Wall-cycle accounting: the total covers at least the set-up
        // phase plus the per-step DMA beyond the weight stream, and is
        // strictly positive per step.
        prop_assert!(report.total_cycles >= report.breakdown.setup);
        prop_assert!(report.dma_cycles > 0, "input/weight channels moved data");
        prop_assert!(report.total_cycles > report.dma_cycles, "compute takes cycles too");
    }
}
