#!/usr/bin/env bash
# Tier-1 gate plus lint/format checks. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: release build =="
cargo build --release --offline

echo "== tier-1: test suite =="
cargo test -q --offline

echo "== clippy (warnings are errors) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== rustfmt =="
cargo fmt --check

echo "ci: all checks passed"
