#!/usr/bin/env bash
# Tier-1 gate plus lint/format checks. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: release build =="
cargo build --release --offline

echo "== tier-1: test suite =="
cargo test -q --offline

echo "== examples build =="
cargo build --release --offline --examples

echo "== exec determinism: parity at 1 and 4 worker threads =="
# The parity property test covers 2/4/8 threads internally; the repro
# binary re-checks end-to-end that --threads does not change results.
cargo test -q --offline -p e3-platform --test exec_parity
out1=$(cargo run --release --offline -q -p e3-bench --bin repro -- run --env cartpole --backend cpu --threads 1 --json)
out4=$(cargo run --release --offline -q -p e3-bench --bin repro -- run --env cartpole --backend cpu --threads 4 --json)
if [ "$out1" != "$out4" ]; then
    echo "error: repro run differs between --threads 1 and --threads 4" >&2
    exit 1
fi

echo "== plan executor: parity vs legacy reference, threads 1 and 4 =="
# `repro plan` times the CSR NetPlan executor against the preserved
# per-node reference (bit-identical outputs required), then re-runs the
# seeded CartPole/LunarLander repro end to end at 1 and 4 worker
# threads; the binary exits nonzero if any output or fitness bit
# differs. Results land in BENCH_plan.json.
cargo run --release --offline -q -p e3-bench --bin repro -- plan >/dev/null

echo "== batched eval: bitwise parity vs scalar serial, threads 1/4/8 =="
# `repro batch` times the population-major batched kernel against the
# scalar per-individual path across thread counts and exits nonzero if
# any fitness or episode-length bit differs. Results land in
# BENCH_batch.json.
cargo run --release --offline -q -p e3-bench --bin repro -- batch >/dev/null

echo "== jit: tiered native execution, interpreter-oracle parity gate =="
# `repro jit` microbenchmarks the e3-jit x86-64 tier against the
# NetPlan interpreter on evolved genomes (bit-identical outputs
# required, >=1.3x ns/activate on hot plans), then re-runs the seeded
# repro end to end with the tier off and on at 1 and 4 worker threads;
# outcomes must match bit for bit. On non-x86-64 hosts this is NOT a
# skip: the binary asserts the fallback engaged (compile attempts
# counted, zero plans compiled, zero native activations) and that
# parity still holds, and the speedup gate is waived. Results land in
# BENCH_jit.json.
cargo run --release --offline -q -p e3-bench --bin repro -- jit >/dev/null

echo "== islands: archipelago sweep, parity/determinism gates, daemon smoke =="
# `repro islands` sweeps island count x migration interval, gates
# single-island parity against a plain platform run, determinism across
# driver counts and pickup orders, and the run-manager daemon lifecycle
# (start, submit, stream one generation's records, graceful shutdown);
# the binary exits nonzero on any gate failure. Results land in
# BENCH_islands.json.
cargo run --release --offline -q -p e3-bench --bin repro -- islands >/dev/null

echo "== fast-math: off by default, approximate kernel still in bounds =="
# The fast-math feature forfeits batched/scalar bit-exactness, so it
# must never be a default feature; the gated test suites then verify
# the approximate kernel stays within its documented error envelope.
if grep -Eq '^default *=.*fast-math' crates/neat/Cargo.toml crates/platform/Cargo.toml; then
    echo "error: fast-math must not be a default cargo feature" >&2
    exit 1
fi
cargo test -q --offline -p e3-neat --features fast-math

echo "== observability: traced run exports valid artifacts =="
# A short traced run must produce Perfetto-loadable trace JSON
# (well-formed, non-empty, monotonic span end times) and a parseable
# Prometheus metrics dump; trace_check exits nonzero otherwise.
trace_tmp=$(mktemp -d)
trap 'rm -rf "$trace_tmp"' EXIT
cargo run --release --offline -q -p e3-bench --bin repro -- \
    run --env cartpole --trace "$trace_tmp/trace.json" \
    --metrics "$trace_tmp/metrics.prom" >/dev/null
cargo run --release --offline -q -p e3-bench --bin trace_check -- \
    "$trace_tmp/trace.json" "$trace_tmp/metrics.prom"
# A jit-enabled run must export the full e3_jit_* series set (counters,
# resident gauge, compile-time histogram) and well-formed Jit telemetry
# records; trace_check rejects a partial series set or malformed
# records. MountainCar never solves at quick scale, so promotions are
# guaranteed at threshold 1.
cargo run --release --offline -q -p e3-bench --bin repro -- \
    run --env mountain_car --backend cpu --jit --jit-threshold 1 \
    --telemetry "$trace_tmp/jit.ndjson" \
    --metrics "$trace_tmp/jit_metrics.prom" >/dev/null
cargo run --release --offline -q -p e3-bench --bin trace_check -- \
    --metrics "$trace_tmp/jit_metrics.prom"
cargo run --release --offline -q -p e3-bench --bin trace_check -- \
    --ndjson "$trace_tmp/jit.ndjson"
if [ "$(uname -m)" = "x86_64" ] && ! grep -q '^e3_jit_plans_compiled_total' "$trace_tmp/jit_metrics.prom"; then
    echo "error: jit-enabled run exported no e3_jit_* metrics" >&2
    exit 1
fi

echo "== serve: HTTP observability plane is inert, live scrape validates =="
# `repro serve` mounts the HTTP server on a live run manager, hits
# /healthz, /runs, /runs/{id}, and the NDJSON event stream, scrapes
# /metrics mid-flight, and exits nonzero unless the served run's final
# populations and telemetry are bit-identical to a server-less run.
# The saved final scrape must then parse as Prometheus text exposition.
cargo run --release --offline -q -p e3-bench --bin repro -- \
    serve --scrape-out "$trace_tmp/scrape.prom" >/dev/null
cargo run --release --offline -q -p e3-bench --bin trace_check -- \
    --metrics "$trace_tmp/scrape.prom"

echo "== generalize: scenario distributions, held-out gap, determinism gate =="
# `repro generalize` evolves on a sampled scenario distribution at
# K ∈ {1,4,8} scenarios per evaluation, scores each champion on a
# held-out shifted distribution, and exits nonzero unless every
# configuration reproduces bit-identically across worker-thread counts
# and emits one Generalization record per generation. Results land in
# BENCH_generalize.json; the NDJSON telemetry (including the new
# Generalization records) must then validate against the pinned wire
# format.
cargo run --release --offline -q -p e3-bench --bin repro -- \
    generalize --telemetry "$trace_tmp/generalize.ndjson" >/dev/null
cargo run --release --offline -q -p e3-bench --bin trace_check -- \
    --ndjson "$trace_tmp/generalize.ndjson"
if ! grep -q '"Generalization"' "$trace_tmp/generalize.ndjson"; then
    echo "error: generalize telemetry carries no Generalization records" >&2
    exit 1
fi

echo "== crash-safe store: kill-and-resume reproduces the uninterrupted run =="
# A seeded CartPole run is checkpointed every generation and killed
# after two; resuming from the newest intact snapshot must produce the
# exact RunOutcome JSON of the uninterrupted reference run
# (bit-identical resume contract, see crates/store).
store_dir="$trace_tmp/store"
ref=$(cargo run --release --offline -q -p e3-bench --bin repro -- \
    run --env cartpole --backend inax --seed 7 --json)
cargo run --release --offline -q -p e3-bench --bin repro -- \
    run --env cartpole --backend inax --seed 7 \
    --checkpoint-dir "$store_dir" --crash-after 2 >/dev/null
resumed=$(cargo run --release --offline -q -p e3-bench --bin repro -- \
    run --env cartpole --backend inax --seed 7 \
    --checkpoint-dir "$store_dir" --resume --json)
if [ "$ref" != "$resumed" ]; then
    echo "error: resumed run diverged from the uninterrupted reference" >&2
    exit 1
fi

echo "== clippy (warnings are errors) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== rustfmt =="
cargo fmt --check

echo "ci: all checks passed"
