//! # E3 — a HW/SW co-design neuroevolution platform (reproduction)
//!
//! This facade crate re-exports the whole E3 workspace, a from-scratch
//! Rust reproduction of *"E3: A HW/SW Co-design Neuroevolution Platform
//! for Autonomous Learning in Edge Device"* (Kao & Krishna, ISPASS
//! 2021):
//!
//! * [`neat`] — the NEAT neuroevolution algorithm (genomes, speciation,
//!   evolution, irregular-network decoding);
//! * [`envs`] — pure-Rust OpenAI-gym-style control environments
//!   (CartPole, Acrobot, MountainCar, Pendulum, LunarLander,
//!   BipedalWalker);
//! * [`inax`] — a cycle-level simulator of the INAX irregular-network
//!   accelerator (PE/PU clusters, output-stationary dataflow);
//! * [`systolic`] — the GeneSys-style 1-D systolic-array baseline;
//! * [`rl`] — A2C / PPO reinforcement-learning baselines with a tiny
//!   backprop MLP framework;
//! * [`platform`] — the E3 platform tying evolve (SW) and evaluate (HW)
//!   together: backends, DMA, timing, energy, and every experiment
//!   driver of the paper's evaluation section;
//! * [`exec`] — the deterministic parallel evaluation engine: a
//!   work-stealing thread pool that shards populations across worker
//!   threads ("virtual PUs") with results bit-identical to serial;
//! * [`telemetry`] — typed instrumentation of the evolve/evaluate loop
//!   (per-eval, per-exec, per-generation, per-run records; in-memory
//!   or NDJSON sinks);
//! * [`islands`] — asynchronous island evolution: N platforms over one
//!   shared worker pool with generation-indexed migration, per-island
//!   checkpoints, and a run-manager service boundary with streaming
//!   telemetry.
//!
//! ## Quickstart
//!
//! ```
//! use e3::platform::{E3Config, E3Platform, BackendKind};
//! use e3::envs::EnvId;
//!
//! let config = E3Config::builder(EnvId::CartPole)
//!     .population_size(30)
//!     .max_generations(3)
//!     .build();
//! let platform = E3Platform::new(config, BackendKind::Inax, 42);
//! let outcome = platform.run().expect("feed-forward population");
//! assert!(outcome.generations_run >= 1);
//! ```
//!
//! To capture what happened along the way, pass a telemetry collector:
//!
//! ```
//! use e3::platform::{E3Config, E3Platform, BackendKind};
//! use e3::telemetry::MemoryCollector;
//! use e3::envs::EnvId;
//!
//! let config = E3Config::builder(EnvId::CartPole)
//!     .population_size(20)
//!     .max_generations(2)
//!     .build();
//! let mut collector = MemoryCollector::new();
//! let platform = E3Platform::new(config, BackendKind::Cpu, 42);
//! platform.run_with(&mut collector).unwrap();
//! assert!(collector.generations().count() >= 1);
//! assert_eq!(collector.summaries().count(), 1);
//! ```

pub use e3_envs as envs;
pub use e3_exec as exec;
pub use e3_inax as inax;
pub use e3_islands as islands;
pub use e3_jit as jit;
pub use e3_neat as neat;
pub use e3_platform as platform;
pub use e3_rl as rl;
pub use e3_serve as serve;
pub use e3_systolic as systolic;
pub use e3_telemetry as telemetry;
