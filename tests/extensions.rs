//! Integration tests for the reproduction's extension features
//! (DESIGN.md §7): recurrent networks, checkpointing, environment
//! wrappers, fixed-point quantization, activation-sparsity gating,
//! double buffering, and the wave tracer — exercised together through
//! the facade crate.

use e3::envs::wrappers::{ActionRepeat, ObservationNoise, TimeLimit};
use e3::envs::{run_episode, CartPole, EnvId, Environment};
use e3::inax::pipeline::{analyze_double_buffering, BatchWork};
use e3::inax::quant::{evaluate_fixed_point, FixedPointFormat};
use e3::inax::sparsity::analyze_activation_sparsity;
use e3::inax::{trace_inference, InaxConfig, IrregularNet};
use e3::neat::{NeatConfig, Population, PopulationSnapshot, RecurrentNetwork};

#[test]
fn checkpointed_run_can_be_deployed_after_restore() {
    // Evolve, snapshot, restore, and verify the restored champion
    // still plays the environment identically.
    let config = NeatConfig::builder(4, 2).population_size(40).build();
    let mut pop = Population::new(config, 3);
    let mut env = CartPole::new();
    for g in 0..10 {
        pop.evaluate(|genome| {
            let mut net = genome.decode().expect("feed-forward");
            let mut policy = |obs: &[f64]| net.activate(obs);
            run_episode(&mut env, &mut policy, g).total_reward
        });
        pop.evolve();
    }
    pop.evaluate(|genome| {
        let mut net = genome.decode().expect("feed-forward");
        let mut policy = |obs: &[f64]| net.activate(obs);
        run_episode(&mut env, &mut policy, 99).total_reward
    });
    let before = pop.best().expect("evaluated").clone();

    let json = serde_json::to_string(&PopulationSnapshot::capture(&pop)).expect("serializes");
    let restored = serde_json::from_str::<PopulationSnapshot>(&json)
        .expect("parses")
        .restore(7);
    let champion = restored.best().expect("snapshot keeps the champion");
    assert_eq!(champion.fitness, before.fitness);

    let mut net = champion.genome.decode().expect("feed-forward");
    let mut policy = |obs: &[f64]| net.activate(obs);
    let replay = run_episode(&mut CartPole::new(), &mut policy, 99);
    assert_eq!(
        replay.total_reward, before.fitness,
        "deployment is reproducible"
    );
}

#[test]
fn recurrent_decode_accepts_what_feed_forward_rejects() {
    let mut tracker = e3::neat::InnovationTracker::with_reserved_nodes(3);
    let mut genome = e3::neat::Genome::bare(2, 1);
    genome.add_connection(0, 2, 1.0, &mut tracker).unwrap();
    genome
        .add_connection_unchecked(2, 2, 0.5, &mut tracker)
        .unwrap(); // self-loop
    assert!(
        genome.decode().is_err(),
        "feed-forward decode rejects the loop"
    );
    let mut recurrent = RecurrentNetwork::from_genome(&genome);
    let a = recurrent.activate(&[1.0, 0.0])[0];
    let b = recurrent.activate(&[1.0, 0.0])[0];
    assert_ne!(a, b, "the loop carries state");
}

#[test]
fn wrapped_envs_compose_and_stay_deterministic() {
    let build = || {
        TimeLimit::new(
            ActionRepeat::new(ObservationNoise::new(CartPole::new(), 0.05), 2),
            50,
        )
    };
    let mut a = build();
    let mut b = build();
    assert_eq!(a.reset(5), b.reset(5));
    assert_eq!(a.max_episode_steps(), 50);
    let mut policy = |obs: &[f64]| vec![-(obs[2] + obs[3]), obs[2] + obs[3]];
    let ra = run_episode(&mut a, &mut policy, 5);
    let rb = run_episode(&mut b, &mut policy, 5);
    assert_eq!(ra, rb);
    assert!(ra.steps <= 50);
}

#[test]
fn quantized_deployment_of_an_evolved_champion_is_accurate() {
    let config = NeatConfig::builder(
        EnvId::CartPole.observation_size(),
        EnvId::CartPole.policy_outputs(),
    )
    .population_size(60)
    .build();
    let mut pop = Population::new(config, 11);
    let mut env = EnvId::CartPole.make();
    for g in 0..8 {
        pop.evaluate(|genome| {
            let mut net = genome.decode().expect("feed-forward");
            let mut policy = |obs: &[f64]| net.activate(obs);
            run_episode(env.as_mut(), &mut policy, g).total_reward
        });
        pop.evolve();
    }
    pop.evaluate(|_| 0.0);
    let champion = &pop.best().expect("evaluated").genome;
    let hw = IrregularNet::try_from(champion).expect("compiles");
    let probe = vec![0.01, -0.03, 0.02, 0.0];
    let exact = hw.evaluate(&probe);
    let quant = evaluate_fixed_point(&hw, &probe, FixedPointFormat::Q8_16);
    for (a, b) in exact.iter().zip(&quant) {
        assert!((a - b).abs() < 1e-3, "Q8.16 deployment error {a} vs {b}");
    }
}

#[test]
fn sparsity_and_trace_agree_on_the_dense_schedule() {
    let net = e3::inax::synthetic::synthetic_net(8, 4, 20, 0.3, 7);
    let config = InaxConfig::builder().num_pe(4).build();
    let trace = trace_inference(&config, &net);
    let sparsity = analyze_activation_sparsity(&config, &net, &[0.1; 8]);
    assert_eq!(trace.profile, sparsity.dense, "one schedule, two views");
    assert!(sparsity.gated.wall_cycles <= sparsity.dense.wall_cycles);
}

#[test]
fn double_buffering_analysis_composes_with_real_pu_numbers() {
    let nets = e3::inax::synthetic::synthetic_population(8, 8, 4, 30, 0.2, 3);
    let config = InaxConfig::builder().num_pe(4).build();
    let batches: Vec<BatchWork> = nets
        .chunks(4)
        .map(|chunk| {
            let pus: Vec<_> = chunk
                .iter()
                .map(|n| e3::inax::PuSim::new(&config, n.clone()))
                .collect();
            BatchWork {
                setup_cycles: pus.iter().map(|p| p.setup_cycles()).max().unwrap(),
                compute_cycles: pus
                    .iter()
                    .map(|p| p.inference_profile().wall_cycles * 50)
                    .max()
                    .unwrap(),
            }
        })
        .collect();
    let report = analyze_double_buffering(&batches);
    assert!(report.pipelined_cycles <= report.serial_cycles);
    assert!(report.speedup() >= 1.0);
}
