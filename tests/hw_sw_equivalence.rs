//! Cross-crate functional-equivalence tests: software NEAT inference,
//! the INAX simulator, and the systolic-array lowering must all
//! compute the same function for networks evolved in real runs.

use e3::envs::EnvId;
use e3::inax::{InaxConfig, IrregularNet, PuSim};
use e3::neat::{NeatConfig, Population};
use e3::systolic::DensePaddedNet;

/// Evolve a real population for a few generations and return its
/// genomes (structural diversity guaranteed by the run itself).
fn evolved_population(env: EnvId, generations: usize, seed: u64) -> Population {
    let config = NeatConfig::builder(env.observation_size(), env.policy_outputs())
        .population_size(30)
        .build();
    let mut pop = Population::new(config, seed);
    let mut environment = env.make();
    for _ in 0..generations {
        pop.evaluate(|genome| {
            let mut net = genome.decode().expect("feed-forward");
            let mut policy = |obs: &[f64]| net.activate(obs);
            e3::envs::run_episode(environment.as_mut(), &mut policy, seed).total_reward
        });
        pop.evolve();
    }
    pop.evaluate(|_| 0.0);
    pop
}

#[test]
fn evolved_nets_agree_across_all_three_execution_paths() {
    for env in [EnvId::CartPole, EnvId::LunarLander] {
        let pop = evolved_population(env, 5, 23);
        let probe: Vec<f64> = (0..env.observation_size())
            .map(|i| ((i + 1) as f64 * 0.31).sin())
            .collect();
        for genome in pop.genomes().iter().take(15) {
            let mut sw = genome.decode().expect("feed-forward");
            let want = sw.activate(&probe);

            let hw = IrregularNet::try_from(genome).expect("compiles");
            assert_eq!(hw.evaluate(&probe), want, "{env}: INAX diverged");

            let mut pu = PuSim::new(&InaxConfig::builder().num_pe(3).build(), hw.clone());
            assert_eq!(pu.infer(&probe).0, want, "{env}: PU diverged");

            let padded = DensePaddedNet::from_irregular(&hw);
            let sa = padded.evaluate(&probe);
            assert_eq!(sa.len(), want.len());
            for (a, b) in sa.iter().zip(&want) {
                assert!((a - b).abs() < 1e-9, "{env}: SA diverged ({a} vs {b})");
            }
        }
    }
}

#[test]
fn evolved_nets_show_the_irregularity_inax_targets() {
    let pop = evolved_population(EnvId::LunarLander, 8, 31);
    let mut any_skip = false;
    let mut degrees = Vec::new();
    for genome in pop.genomes() {
        let net = genome.decode().expect("feed-forward");
        degrees.extend(net.in_degrees());
        let hw = IrregularNet::try_from(genome).expect("compiles");
        let padded = DensePaddedNet::from_irregular(&hw);
        if padded.dummy_nodes() > 0 {
            any_skip = true;
        }
    }
    degrees.sort_unstable();
    degrees.dedup();
    assert!(degrees.len() > 1, "in-degree variance (Fig. 4(e))");
    assert!(
        any_skip,
        "evolution produces level-skipping links (Fig. 4(c))"
    );
}
