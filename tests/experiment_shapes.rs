//! Integration tests asserting the *shape* of every reproduced
//! experiment: who wins, where the peaks fall, which phases dominate —
//! the qualitative claims of the paper's evaluation section, checked
//! programmatically at quick scale.

use e3::envs::EnvId;
use e3::platform::experiments::{
    fig10, fig11, fig1b, fig3, fig4, fig6, fig7, fig9, table4, table5, Scale,
};
use e3::platform::PowerModel;

#[test]
fn fig1b_evaluate_dominates_software_neat() {
    let result = fig1b::run_on(&[EnvId::CartPole, EnvId::MountainCar], Scale::Quick, 1);
    assert!(result.mean_evaluate_fraction() > 0.85, "paper: ~97%");
    assert!(result.mean_evolve_fraction() < 0.1, "paper: ~3%");
}

#[test]
fn fig3_training_dominates_rl() {
    let result = fig3::run(Scale::Quick, 2);
    assert!(result.mean_training_fraction() > 0.4, "paper: ~60%");
}

#[test]
fn fig4_networks_are_irregular() {
    let result = fig4::run_on(&[EnvId::CartPole], Scale::Quick, 3);
    assert!(
        result.degree_histogram.buckets().count() > 1,
        "variable in-degree"
    );
    assert!(result.layer_histogram.buckets().count() >= 1);
    assert!(!result.density.is_empty());
}

#[test]
fn fig6_pe_utilization_peaks_at_output_width() {
    let result = fig6::run();
    for panel in &result.panels {
        let k = panel.num_outputs;
        assert!(
            panel.has_local_peak_at(k) || panel.has_local_peak_at(k.div_ceil(2)),
            "panel k={k} must peak at k or ⌈k/2⌉"
        );
    }
}

#[test]
fn fig7_pu_utilization_peaks_at_population_divisors() {
    let result = fig7::run();
    for panel in &result.panels {
        let p = panel.num_individuals;
        let at_div = panel.utilization_at(p / 2).unwrap();
        let below = panel.utilization_at(p / 2 - 1).unwrap();
        assert!(
            at_div > below,
            "divisor peak at p/2 (paper's 100-vs-99 example)"
        );
        assert!(at_div > 0.95, "divisors are near-fully utilized");
    }
}

#[test]
fn fig9a_bigger_networks_hide_control_overhead() {
    let result = fig9::run_fig9a();
    let first = result.points.first().unwrap();
    let last = result.points.last().unwrap();
    assert!(last.pe_active_fraction > first.pe_active_fraction);
}

#[test]
fn fig9b_suite_speedups_have_the_paper_shape() {
    let result = fig9::run_fig9b_on(&[EnvId::CartPole, EnvId::Pendulum], Scale::Quick, 7);
    for row in &result.rows {
        assert!(row.inax_speedup() > 2.0, "{}: INAX wins", row.env);
        assert!(row.gpu_slowdown() > 1.0, "{}: GPU loses", row.env);
    }
    assert!(
        result.mean_inax_speedup() > 3.0,
        "paper headline: ~30x at full scale"
    );
}

#[test]
fn fig10_energy_and_resources() {
    let fig9b = fig9::run_fig9b_on(&[EnvId::CartPole], Scale::Quick, 7);
    let energy = fig10::run_fig10a(&fig9b, &PowerModel::default());
    assert!(
        energy.mean_inax_reduction() > 0.8,
        "paper: 97% energy reduction"
    );
    assert!(energy.rows[0].gpu_ratio() > 10.0, "paper: 71x GPU energy");
    let resources = fig10::run_fig10b();
    assert!(
        resources.rows.iter().all(|r| r.utilization.0 < 1.0),
        "both configs fit"
    );
}

#[test]
fn fig11_inax_beats_systolic_array_everywhere() {
    let result = fig11::run();
    for point in &result.points {
        assert!(point.speedup() > 1.0, "{} PEs", point.num_pe);
    }
    let max = result
        .points
        .iter()
        .map(|p| p.speedup())
        .fold(0.0f64, f64::max);
    assert!(max >= 3.0, "paper range: 3x–12.6x, got max {max}");
}

#[test]
fn table4_overheads_are_ordered() {
    let result = table4::run_on(&[EnvId::CartPole], Scale::Quick, 9);
    assert!(result.rl.ops_backward > 0);
    assert_eq!(result.neat.ops_backward, 0);
    assert!(result.rl.local_memory_bytes > 100 * result.neat.local_memory_bytes);
}

#[test]
fn table5_neat_networks_are_tiny() {
    let result = table5::run_on(&[EnvId::CartPole], Scale::Quick, 9);
    let row = &result.rows[0];
    assert!(row.neat_avg_connections < row.small.connections as f64 / 20.0);
    assert!(row.large.connections > 100 * row.small.connections / 10);
}
