//! Integration: the Env7 (Pong) task is learnable by NEAT, and the
//! design-space sweep agrees with the paper's sizing heuristics on a
//! realistic workload.

use e3::envs::{run_episode, EnvId};
use e3::inax::synthetic::synthetic_population;
use e3::neat::{NeatConfig, Population};
use e3::platform::{sweep_design_space, FpgaBudget};

#[test]
fn neat_improves_on_pong() {
    let config = NeatConfig::builder(EnvId::Pong.observation_size(), EnvId::Pong.policy_outputs())
        .population_size(60)
        .build();
    let mut pop = Population::new(config, 17);
    let mut env = EnvId::Pong.make();
    let mut evaluate = |pop: &mut Population, seed: u64| {
        pop.evaluate(|genome| {
            let mut net = genome.decode().expect("feed-forward");
            let mut policy = |obs: &[f64]| net.activate(obs);
            run_episode(env.as_mut(), &mut policy, seed).total_reward
        });
        pop.best().map_or(f64::NEG_INFINITY, |b| b.fitness)
    };
    let first = evaluate(&mut pop, 1);
    let mut best = first;
    for g in 0..12 {
        pop.evolve();
        best = best.max(evaluate(&mut pop, 1 + g));
    }
    // An idle paddle scores -5; evolution must find ball tracking,
    // which scores far better (often positive).
    assert!(best > first, "no improvement: {first} -> {best}");
    assert!(best > -4.0, "evolved Pong policy still hopeless: {best}");
}

#[test]
fn sweep_confirms_the_paper_heuristics_are_near_pareto() {
    let nets = synthetic_population(200, 8, 4, 30, 0.2, 5);
    let sweep = sweep_design_space(
        &nets,
        100,
        &[10, 25, 40, 50, 100, 200],
        &[1, 2, 3, 4, 5, 6, 8],
        &FpgaBudget::zcu104(),
    );
    let heuristic = sweep
        .points
        .iter()
        .find(|p| p.num_pu == 50 && p.num_pe == 4)
        .expect("heuristic point swept");
    assert!(heuristic.fits, "the deployed config fits the ZCU104");
    // No feasible point with at most the heuristic's LUTs is more than
    // 25% faster — the heuristic is near the frontier in its area class.
    for p in sweep.feasible() {
        if p.resources.lut <= heuristic.resources.lut {
            assert!(
                (p.total_cycles as f64) > 0.75 * heuristic.total_cycles as f64,
                "({}, {}) dominates the heuristic: {} vs {}",
                p.num_pu,
                p.num_pe,
                p.total_cycles,
                heuristic.total_cycles
            );
        }
    }
    // And PU divisor structure shows up: 50 PUs beats 40 PUs at PE=4.
    let at = |pu: usize, pe: usize| {
        sweep
            .points
            .iter()
            .find(|p| p.num_pu == pu && p.num_pe == pe)
            .unwrap()
    };
    assert!(at(50, 4).pu_utilization > at(40, 4).pu_utilization * 0.95);
}
