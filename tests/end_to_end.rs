//! End-to-end integration: the full E3 loop across all crates.

use e3::envs::EnvId;
use e3::inax::InaxConfig;
use e3::platform::{BackendKind, E3Config, E3Platform, EvalBackend, PowerModel};
use e3::telemetry::MemoryCollector;

fn quick_config(env: EnvId) -> E3Config {
    E3Config::builder(env)
        .population_size(40)
        .max_generations(6)
        .build()
}

#[test]
fn all_backends_follow_identical_evolution() {
    for env in [EnvId::CartPole, EnvId::Pendulum] {
        let runs: Vec<_> = BackendKind::ALL
            .into_iter()
            .map(|kind| {
                E3Platform::new(quick_config(env), kind, 17)
                    .run()
                    .expect("suite populations are feed-forward")
            })
            .collect();
        let reference: Vec<f64> = runs[0].trace.iter().map(|t| t.1).collect();
        for run in &runs[1..] {
            let trace: Vec<f64> = run.trace.iter().map(|t| t.1).collect();
            assert_eq!(reference, trace, "{env}: backends diverged");
        }
        assert_eq!(runs[0].best_fitness, runs[2].best_fitness);
    }
}

#[test]
fn inax_beats_cpu_beats_gpu_in_modeled_runtime() {
    let cpu = E3Platform::new(quick_config(EnvId::CartPole), BackendKind::Cpu, 3)
        .run()
        .unwrap();
    let gpu = E3Platform::new(quick_config(EnvId::CartPole), BackendKind::Gpu, 3)
        .run()
        .unwrap();
    let inax = E3Platform::new(quick_config(EnvId::CartPole), BackendKind::Inax, 3)
        .run()
        .unwrap();
    assert!(
        inax.modeled_seconds < cpu.modeled_seconds,
        "INAX accelerates"
    );
    assert!(
        gpu.modeled_seconds > cpu.modeled_seconds,
        "GPU loses (paper Fig. 9(b))"
    );
    let speedup = cpu.modeled_seconds / inax.modeled_seconds;
    assert!(
        speedup > 2.0,
        "speedup {speedup} too small for even a quick run"
    );
}

#[test]
fn neat_solves_cartpole_end_to_end_on_inax() {
    let config = E3Config::builder(EnvId::CartPole)
        .population_size(100)
        .max_generations(30)
        .build();
    let outcome = E3Platform::new(config, BackendKind::Inax, 42)
        .run()
        .unwrap();
    assert!(
        outcome.solved,
        "cartpole should be solved, best {}",
        outcome.best_fitness
    );
    assert!(outcome.best_fitness >= EnvId::CartPole.required_fitness());
    let report = outcome.hw_report.expect("INAX reports accounting");
    assert!(report.total_cycles > 0);
    assert!(report.pe_utilization.rate() > 0.0 && report.pe_utilization.rate() <= 1.0);
}

#[test]
fn energy_model_reproduces_fig10a_ordering() {
    let power = PowerModel::default();
    let cpu = E3Platform::new(quick_config(EnvId::MountainCar), BackendKind::Cpu, 5)
        .run()
        .unwrap();
    let gpu = E3Platform::new(quick_config(EnvId::MountainCar), BackendKind::Gpu, 5)
        .run()
        .unwrap();
    let inax = E3Platform::new(quick_config(EnvId::MountainCar), BackendKind::Inax, 5)
        .run()
        .unwrap();
    let cpu_energy = power.energy(BackendKind::Cpu, &cpu.profile).total();
    let gpu_energy = power.energy(BackendKind::Gpu, &gpu.profile).total();
    let inax_energy = power.energy(BackendKind::Inax, &inax.profile).total();
    assert!(
        gpu_energy > 10.0 * cpu_energy,
        "GPU energy blow-up (paper: 71x)"
    );
    assert!(
        inax_energy < 0.2 * cpu_energy,
        "INAX energy saving (paper: 97%)"
    );
}

#[test]
fn pu_pe_heuristics_are_the_platform_defaults() {
    let config = E3Config::builder(EnvId::LunarLander).build();
    assert_eq!(config.inax.num_pu, 50, "paper §VI-C picks PU = 50");
    assert_eq!(
        config.inax.num_pe,
        EnvId::LunarLander.policy_outputs(),
        "paper §V-A sizes PEs to the output layer"
    );
}

#[test]
fn custom_inax_configs_flow_through() {
    let config = E3Config::builder(EnvId::CartPole)
        .population_size(30)
        .max_generations(2)
        .inax(InaxConfig::builder().num_pu(10).num_pe(8).build())
        .build();
    let outcome = E3Platform::new(config, BackendKind::Inax, 1).run().unwrap();
    assert!(outcome.hw_report.is_some());
}

#[test]
fn backend_builder_matches_platform_backends() {
    // A builder-constructed backend evaluates the same population to
    // the same fitnesses the full platform computes on its first
    // generation.
    let config = quick_config(EnvId::CartPole);
    let mut backend = BackendKind::Inax
        .builder()
        .sw(config.sw)
        .gpu(config.gpu)
        .inax(config.inax.clone())
        .build();
    let mut platform = E3Platform::new(config, BackendKind::Inax, 9);
    let genomes = platform.population().genomes().to_vec();
    // The platform derives its first episode seed as `seed + 1000`.
    let outcome = backend
        .try_evaluate_population(&genomes, EnvId::CartPole, 9 + 1000)
        .expect("fresh populations are feed-forward");
    let best_direct = outcome.fitnesses.iter().cloned().fold(f64::MIN, f64::max);
    let best_platform = platform.step_generation().unwrap();
    assert_eq!(
        best_direct, best_platform,
        "builder backend diverged from platform"
    );
}

#[test]
fn run_with_telemetry_matches_plain_run() {
    let mut collector = MemoryCollector::new();
    let telemetered = E3Platform::new(quick_config(EnvId::Pendulum), BackendKind::Inax, 11)
        .run_with(&mut collector)
        .unwrap();
    let plain = E3Platform::new(quick_config(EnvId::Pendulum), BackendKind::Inax, 11)
        .run()
        .unwrap();
    assert_eq!(telemetered, plain, "telemetry must not perturb the run");
    let summary = collector.summaries().last().expect("run emits a summary");
    assert_eq!(summary.generations, plain.generations_run);
    assert_eq!(summary.best_fitness, plain.best_fitness);
    assert_eq!(collector.generations().count(), plain.generations_run);
}
